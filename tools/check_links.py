"""Check that relative links in the repo's markdown docs resolve.

Scans every ``*.md`` at the repository root and under ``docs/`` for
inline markdown links/images ``[text](target)`` and verifies that each
relative target exists on disk (anchors are stripped; external
``http(s)``/``mailto`` targets and bare in-page anchors are ignored).
CI runs this as the docs link-check step; run it locally with::

    python tools/check_links.py

Exit code 0 when every link resolves, 1 otherwise (broken links are
listed).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown link or image: [text](target) / ![alt](target)
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files():
    files = sorted(REPO_ROOT.glob("*.md"))
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def check_file(path: Path):
    """Yield (link, reason) for every broken relative link in ``path``."""
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            try:
                shown = resolved.relative_to(REPO_ROOT)
            except ValueError:  # link escapes the repository root
                shown = resolved
            yield target, f"missing file {shown}"


def main() -> int:
    broken = []
    files = markdown_files()
    for path in files:
        for target, reason in check_file(path):
            broken.append((path.relative_to(REPO_ROOT), target, reason))
    if broken:
        for origin, target, reason in broken:
            print(f"{origin}: broken link '{target}' ({reason})",
                  file=sys.stderr)
        print(f"{len(broken)} broken link(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"all relative links resolve across {len(files)} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
