"""Render the benchmark-history trend as a standalone SVG.

``benchmarks/bench_history.py`` accumulates one JSON line per CI run
(every workload's timing keys plus the peak-RSS numbers stamped by
``_common.emit_json``); ``diff_bench.py`` gates each run pairwise, but
only a trend plot shows a slow drift. This script reads the JSONL
history and writes a two-panel SVG — wall-clock timings on top,
peak RSS below, one polyline per ``bench.key`` series, log-scaled so
minute-long paper-scale runs and sub-second smoke timings share an
axis. Pure standard library: CI runners have no plotting stack, and
none is needed for polylines.

Usage::

    python tools/plot_history.py [--history BENCH_history.jsonl]
        [--out benchmarks/out/history.svg] [--last 50]

Exit codes: 0 = SVG written (or empty history, nothing to plot),
2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

WIDTH = 960
PANEL_HEIGHT = 300
MARGIN_LEFT = 64
MARGIN_RIGHT = 260  # legend column
MARGIN_TOP = 36
MARGIN_BOTTOM = 40

#: distinguishable line colors, cycled per series
PALETTE = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
    "#393b79", "#ad494a", "#637939", "#7b4173", "#3182bd",
)


def is_timing_key(key: str) -> bool:
    """Wall-clock keys (mirrors ``diff_bench.is_timing_key``; the
    derived ``speedup`` ratio is excluded — it is not seconds)."""
    return key == "seconds" or key.endswith("_seconds")


def is_memory_key(key: str) -> bool:
    return key.startswith("peak_rss") and key.endswith("_bytes")


def load_rows(path: Path):
    rows = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def collect_series(rows, key_filter):
    """{'bench.key': [(run_index, value), ...]} for keys passing the
    filter — runs may add or drop benches, so series are sparse."""
    series = {}
    for index, row in enumerate(rows):
        for bench, payload in sorted(row.get("benches", {}).items()):
            for key, value in sorted(payload.items()):
                if not key_filter(key):
                    continue
                if not isinstance(value, (int, float)) or value <= 0:
                    continue
                series.setdefault(f"{bench}.{key}", []).append(
                    (index, float(value))
                )
    return series


def log_ticks(lo: float, hi: float):
    """Decade tick values covering [lo, hi]."""
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(first, last + 1)]


def format_value(value: float, unit: str) -> str:
    if unit == "bytes":
        for threshold, suffix in ((1024**3, "GiB"), (1024**2, "MiB"),
                                  (1024, "KiB")):
            if value >= threshold:
                return f"{value / threshold:g} {suffix}"
        return f"{value:g} B"
    if value >= 60:
        return f"{value / 60:g} min"
    if value < 0.1:
        return f"{value * 1000:g} ms"
    return f"{value:g} s"


def render_panel(series, labels, title, unit, y_offset):
    """SVG fragment for one log-scaled panel; returns a list of SVG
    element strings."""
    plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_h = PANEL_HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    top = y_offset + MARGIN_TOP
    values = [v for points in series.values() for _, v in points]
    lo, hi = min(values), max(values)
    if lo == hi:  # a flat axis still needs a span to project onto
        lo, hi = lo / 2, hi * 2
    log_lo, log_hi = math.log10(lo), math.log10(hi)

    def x_at(index):
        if len(labels) == 1:
            return MARGIN_LEFT + plot_w / 2
        return MARGIN_LEFT + plot_w * index / (len(labels) - 1)

    def y_at(value):
        frac = (math.log10(value) - log_lo) / (log_hi - log_lo)
        return top + plot_h * (1.0 - frac)

    parts = [
        f'<text x="{MARGIN_LEFT}" y="{y_offset + 20}" '
        f'font-size="14" font-weight="bold">{title}</text>',
        f'<rect x="{MARGIN_LEFT}" y="{top}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#cccccc"/>',
    ]
    for tick in log_ticks(lo, hi):
        if not lo <= tick <= hi:
            continue
        y = y_at(tick)
        parts.append(
            f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{MARGIN_LEFT + plot_w}" y2="{y:.1f}" '
            f'stroke="#eeeeee"/>'
        )
        parts.append(
            f'<text x="{MARGIN_LEFT - 6}" y="{y + 4:.1f}" font-size="10" '
            f'text-anchor="end">{format_value(tick, unit)}</text>'
        )
    for index, label in enumerate(labels):
        x = x_at(index)
        parts.append(
            f'<text x="{x:.1f}" y="{top + plot_h + 16}" font-size="10" '
            f'text-anchor="middle">{label}</text>'
        )
    legend_y = top
    for color_index, (name, points) in enumerate(sorted(series.items())):
        color = PALETTE[color_index % len(PALETTE)]
        coords = [(x_at(i), y_at(v)) for i, v in points]
        if len(coords) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(
                f'<polyline points="{path}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        for x, y in coords:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" '
                f'fill="{color}"/>'
            )
        if legend_y < top + plot_h:
            parts.append(
                f'<line x1="{MARGIN_LEFT + plot_w + 10}" '
                f'y1="{legend_y + 4:.1f}" '
                f'x2="{MARGIN_LEFT + plot_w + 26}" '
                f'y2="{legend_y + 4:.1f}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{MARGIN_LEFT + plot_w + 30}" '
                f'y="{legend_y + 8:.1f}" font-size="10">{name}</text>'
            )
            legend_y += 14
    return parts


def render_svg(rows) -> str:
    labels = [str(row.get("label", index))
              for index, row in enumerate(rows)]
    panels = [
        ("wall-clock timings", "seconds",
         collect_series(rows, is_timing_key)),
        ("peak RSS", "bytes", collect_series(rows, is_memory_key)),
    ]
    height = 0
    body = []
    for title, unit, series in panels:
        if not series:
            continue
        body.extend(render_panel(series, labels, title, unit, height))
        height += PANEL_HEIGHT
    if not body:
        return ""
    return "\n".join([
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" font-family="sans-serif">',
        f'<rect width="{WIDTH}" height="{height}" fill="white"/>',
        *body,
        "</svg>",
    ]) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", type=Path,
                        default=REPO_ROOT / "BENCH_history.jsonl",
                        help="JSONL history written by bench_history.py")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "benchmarks" / "out"
                        / "history.svg",
                        help="SVG file to write")
    parser.add_argument("--last", type=int, default=50,
                        help="plot at most the last K runs (default 50)")
    args = parser.parse_args(argv)
    if args.last < 1:
        print("--last must be >= 1", file=sys.stderr)
        return 2
    if not args.history.exists():
        print(f"history file {args.history} missing", file=sys.stderr)
        return 2
    rows = load_rows(args.history)[-args.last:]
    svg = render_svg(rows)
    if not svg:
        print(f"no plottable series in {args.history}; nothing to render")
        return 0
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(svg)
    print(f"rendered {len(rows)} run(s) to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
