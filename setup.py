"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this file enables the legacy ``pip install -e .
--no-use-pep517`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
