"""Experiment M1 — kernel-hosted membership at million-node scale.

Runs the Figure 4 workload — size estimation with epoch restarts under
trace-driven diurnal churn (±10 % size wave, 0.1 % background
turnover per cycle) — at N = 1 000 000 twice: once with the idealized
uniform **oracle** partner draw and once with the **newscast**
provider, where every aggregation partner comes from gossip-maintained
20-entry partial views and no global oracle is consulted anywhere
(§1.2's deployment shape). The benchmark reports the estimation error
of both runs and the newscast-over-oracle wall-clock overhead ratio —
the price of maintaining the views with batched exchanges through the
execution backends.

The benchmark also replays a scaled-down newscast configuration on all
three backends and asserts that estimate trajectories, size traces AND
final view matrices agree bitwise — the backend equivalence contract
extends to membership state because every view exchange is an
engine-planned, backend-executed batch.

Acceptance target: the newscast N = 1 000 000 run keeps mean relative
estimation error < 5 % (same bound as the oracle churn benchmark).
Results land in ``benchmarks/out/BENCH_membership.json`` (paper-scale
runs also refresh the git-tracked copy at the repo root). A smoke
configuration (``--n 20000``) runs in seconds for CI.

Run directly (``python benchmarks/bench_membership.py [--n N]``) or
through pytest (``pytest benchmarks/bench_membership.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import Table
from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.kernel import ChurnTrace, NewscastSpec

from _common import emit, emit_json

N = 1_000_000
CYCLES = 60
EPOCH = 30
VIEW_SIZE = 20
SEED = 2004
EQUIVALENCE_N = 600  # all-backend replay size
EQUIVALENCE_BACKENDS = ("reference", "vectorized", "sharded:2")


def figure4_experiment(n, *, cycles=CYCLES, epoch=EPOCH, membership=None,
                       backend="auto", seed=SEED):
    """Figure 4 under a trace-driven diurnal wave: size follows
    ``n + (n/10)·sin``, with n/1000 paired join+leave events per cycle
    of background turnover."""
    config = SizeEstimationConfig(
        cycles=cycles,
        cycles_per_epoch=epoch,
        initial_size=n,
        expected_leaders=1.0,
        seed=seed,
    )
    trace = ChurnTrace.diurnal(
        n, cycles, period=max(cycles // 2, 2), amplitude=n // 10,
        fluctuation=max(n // 1000, 1),
    )
    return SizeEstimationExperiment(
        config, churn=trace, backend=backend, membership=membership,
    )


def equivalence_check(n=EQUIVALENCE_N, cycles=60):
    """Replay one scaled-down newscast run per backend; bitwise-compare
    estimates, size traces and the final view matrices."""
    estimates, traces, views = [], [], []
    for backend in EQUIVALENCE_BACKENDS:
        experiment = figure4_experiment(
            n, cycles=cycles, backend=backend,
            membership=NewscastSpec(view_size=VIEW_SIZE), seed=SEED,
        )
        experiment.run()
        estimates.append([r.estimate_mean for r in experiment.reports])
        traces.append(experiment.size_trace)
        # provider state survives engine close (it never aliases
        # backend-owned storage)
        views.append(experiment._engine.membership_views)
    return bool(
        all(e == estimates[0] for e in estimates)
        and all(t == traces[0] for t in traces)
        and all(np.array_equal(v, views[0]) for v in views)
    )


def timed_run(n, cycles, membership):
    experiment = figure4_experiment(n, cycles=cycles, membership=membership)
    start = time.perf_counter()
    reports = experiment.run()
    elapsed = time.perf_counter() - start
    errors = [report.relative_error for report in reports]
    return {
        "backend": experiment.backend_name,
        "seconds": elapsed,
        "epochs_reported": len(reports),
        "mean_relative_error": float(np.mean(errors)) if errors else None,
        "max_relative_error": float(np.max(errors)) if errors else None,
    }


def compute_membership(n=N, cycles=CYCLES):
    oracle = timed_run(n, cycles, None)
    newscast = timed_run(n, cycles, NewscastSpec(view_size=VIEW_SIZE))
    return {
        "n": n,
        "cycles": cycles,
        "cycles_per_epoch": EPOCH,
        "view_size": VIEW_SIZE,
        "backend": newscast["backend"],
        "oracle_seconds": oracle["seconds"],
        "newscast_seconds": newscast["seconds"],
        "overhead_ratio": newscast["seconds"] / oracle["seconds"],
        "epochs_reported": newscast["epochs_reported"],
        "oracle_mean_relative_error": oracle["mean_relative_error"],
        "mean_relative_error": newscast["mean_relative_error"],
        "max_relative_error": newscast["max_relative_error"],
        "bitwise_equal_backends": equivalence_check(),
    }


def render(series):
    table = Table(
        headers=["metric", "value"],
        title=(
            f"M1: kernel-hosted membership — Figure 4 at N={series['n']}, "
            f"{series['cycles']} cycles, {series['view_size']}-entry views "
            f"({series['backend']} backend)"
        ),
    )
    table.add_row("oracle seconds", series["oracle_seconds"])
    table.add_row("newscast seconds", series["newscast_seconds"])
    table.add_row("overhead ratio", series["overhead_ratio"])
    table.add_row("epochs reported", series["epochs_reported"])
    table.add_row("oracle mean rel. error", series["oracle_mean_relative_error"])
    table.add_row("newscast mean rel. error", series["mean_relative_error"])
    table.add_row("newscast max rel. error", series["max_relative_error"])
    table.add_row("bitwise-equal backends", series["bitwise_equal_backends"])
    return table.render()


def check(series):
    assert series["bitwise_equal_backends"], (
        "backends diverged on the newscast value/view trajectories"
    )
    expected_epochs = series["cycles"] // series["cycles_per_epoch"]
    assert expected_epochs > 0, (
        f"--cycles {series['cycles']} completes no "
        f"{series['cycles_per_epoch']}-cycle epoch; nothing to measure"
    )
    assert series["epochs_reported"] == expected_epochs
    assert series["mean_relative_error"] < 0.05, (
        f"newscast mean relative error {series['mean_relative_error']:.3f} "
        f"exceeds the 5% acceptance bound"
    )
    assert series["oracle_mean_relative_error"] < 0.05, (
        f"oracle mean relative error "
        f"{series['oracle_mean_relative_error']:.3f} exceeds the 5% bound"
    )


def test_membership(benchmark, capsys):
    series = benchmark.pedantic(compute_membership, rounds=1, iterations=1)
    emit("membership", render(series), capsys)
    emit_json("membership", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    args = parser.parse_args(argv)
    series = compute_membership(args.n, args.cycles)
    emit("membership", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive;
    # smoke sizes stay in benchmarks/out/
    emit_json("membership", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
