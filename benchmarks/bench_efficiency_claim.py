"""Experiment T2 — the §5 efficiency claim.

"Even in the worst case we examined, with GETPAIR_RAND, the variance
over the network will decrease 99.9% in ln 1000 ≈ 7 cycles of AVG."

This bench measures, for each selector, the number of cycles until
σ²ᵢ/σ²₀ ≤ 10⁻³ and compares with ceil(log(10³)/log(1/rate)).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table, replicate
from repro.avg import (
    GetPairPerfectMatching,
    GetPairRand,
    GetPairSeq,
    ValueVector,
    convergence_rate,
    cycles_to_reduce,
    cycles_until_threshold,
    run_avg,
)
from repro.topology import CompleteTopology

from _common import emit, scale

TARGET = 1e-3
SELECTORS = (
    ("pm", GetPairPerfectMatching),
    ("seq", GetPairSeq),
    ("rand", GetPairRand),
)


def measure_cycles_to_999():
    cfg = scale()
    topology = CompleteTopology(cfg.rates_n)
    rows = []
    for name, factory in SELECTORS:
        def one_run(rng, factory=factory):
            vector = ValueVector.gaussian(topology.n, seed=rng)
            result = run_avg(vector, factory(topology), 14, seed=rng)
            return cycles_until_threshold(result.variances, TARGET)

        measured = replicate(
            one_run, runs=cfg.rates_runs, seed=len(name)
        ).outputs
        predicted = cycles_to_reduce(TARGET, convergence_rate(name))
        rows.append((name, float(np.mean(measured)), predicted))
    return rows


def render(rows):
    table = Table(
        headers=["getPair", "measured cycles to 99.9%", "predicted"],
        title=(
            "T2 (Section 5): cycles until variance reduced 99.9% "
            "(paper: ln 1000 ~= 7 for rand)"
        ),
    )
    for row in rows:
        table.add_row(*row)
    return table.render()


def test_efficiency_claim(benchmark, capsys):
    rows = benchmark.pedantic(measure_cycles_to_999, rounds=1, iterations=1)
    emit("efficiency_claim", render(rows), capsys)
    by_name = {name: measured for name, measured, _ in rows}
    # the headline: RAND needs about 7 cycles
    assert 6 <= by_name["rand"] <= 8
    # predictions hold within one cycle for every selector
    for name, measured, predicted in rows:
        assert abs(measured - predicted) <= 1.0, name
    # and RAND is the worst case, PM the best
    assert by_name["pm"] <= by_name["seq"] <= by_name["rand"]
