"""Experiment F3A — Figure 3(a).

Average variance reduction σ²₁/σ²₀ after ONE execution of AVG on a
vector of uncorrelated values, as a function of network size, for
GETPAIR_RAND and GETPAIR_SEQ on the complete and 20-regular random
topologies. Theory lines: 1/e ≈ 0.368 (RAND) and 1/(2√e) ≈ 0.303 (SEQ).

Paper shape: all four series are flat in N (size independence); RAND
sits at ≈ 0.37, SEQ at ≈ 0.30; the 20-regular series are very slightly
above their complete-graph counterparts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table, replicate
from repro.avg import GetPairRand, GetPairSeq, RATE_RAND, RATE_SEQ, ValueVector, run_avg
from repro.topology import CompleteTopology, RandomRegularTopology

from _common import emit, scale


def reduction_after_one_cycle(selector_factory, topology, runs, seed):
    """Mean σ²₁/σ²₀ over independent runs (fresh values each run)."""

    def one_run(rng):
        vector = ValueVector.gaussian(topology.n, seed=rng)
        result = run_avg(vector, selector_factory(topology), 1, seed=rng)
        return result.cycles[0].reduction

    return float(np.mean(replicate(one_run, runs=runs, seed=seed).outputs))


def compute_figure3a():
    cfg = scale()
    rows = []
    for n in cfg.figure3a_sizes:
        complete = CompleteTopology(n)
        regular = RandomRegularTopology(n, 20, seed=n) if n > 20 else None
        row = {
            "n": n,
            "rand_complete": reduction_after_one_cycle(
                GetPairRand, complete, cfg.figure3a_runs, seed=n + 1
            ),
            "seq_complete": reduction_after_one_cycle(
                GetPairSeq, complete, cfg.figure3a_runs, seed=n + 2
            ),
        }
        if regular is not None:
            row["rand_regular"] = reduction_after_one_cycle(
                GetPairRand, regular, cfg.figure3a_runs, seed=n + 3
            )
            row["seq_regular"] = reduction_after_one_cycle(
                GetPairSeq, regular, cfg.figure3a_runs, seed=n + 4
            )
        rows.append(row)
    return rows


def render(rows):
    table = Table(
        headers=[
            "network size",
            "rand/complete",
            "rand/20-reg",
            "seq/complete",
            "seq/20-reg",
        ],
        title=(
            "Figure 3(a): variance reduction after one AVG execution "
            f"(theory: rand 1/e={RATE_RAND:.3f}, seq 1/(2*sqrt(e))={RATE_SEQ:.3f})"
        ),
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["rand_complete"],
            row.get("rand_regular", float("nan")),
            row["seq_complete"],
            row.get("seq_regular", float("nan")),
        )
    return table.render()


def test_figure3a(benchmark, capsys):
    rows = benchmark.pedantic(compute_figure3a, rounds=1, iterations=1)
    emit("figure3a", render(rows), capsys)
    # shape assertions: near theory at every size, and flat in N
    for row in rows:
        assert abs(row["rand_complete"] - RATE_RAND) / RATE_RAND < 0.12
        assert abs(row["seq_complete"] - RATE_SEQ) / RATE_SEQ < 0.12
    rand_series = [row["rand_complete"] for row in rows]
    seq_series = [row["seq_complete"] for row in rows]
    assert max(rand_series) - min(rand_series) < 0.08  # size independence
    assert max(seq_series) - min(seq_series) < 0.08
