"""Experiment C1 — kernel-hosted churn at paper scale.

Times the Figure 4 workload — size estimation with epoch restarts over
the oscillating-churn model (size swings ±10 %, 0.1 % of nodes joining
AND leaving every cycle) — at N = 100 000 on the vectorized backend.
Before the kernel hosted churn, this experiment rebuilt Python node
objects every epoch and could not reach paper scale; now churn is
alive-mask mutation with row recycling and the whole 300-cycle run
finishes in seconds.

The benchmark also replays a scaled-down configuration on *both*
backends and asserts the trajectories agree bitwise — the backend
equivalence contract extends to joins, crashes and epoch restarts
because all churn randomness is drawn by the engine, never by a
backend.

Acceptance target: the N = 100 000 vectorized run completes in < 30 s
with mean relative estimation error < 5 %. Results land in
``benchmarks/out/BENCH_churn.json`` (paper-scale runs also refresh the
git-tracked copy at the repo root). A smoke configuration
(``--n 10000``) runs in about a second for CI.

Run directly (``python benchmarks/bench_churn.py [--n N]``) or through
pytest (``pytest benchmarks/bench_churn.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import Table
from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.failures import OscillatingChurn

from _common import emit, emit_json

N = 100_000
CYCLES = 300
EPOCH = 30
SEED = 2004
SECONDS_CEILING = 30.0  # acceptance target at N = 100 000
EQUIVALENCE_N = 600  # both-backend replay size


def figure4_experiment(n, *, cycles=CYCLES, epoch=EPOCH, backend="vectorized",
                       seed=SEED):
    """The Figure 4 workload: oscillation ±10 % with 0.1 % fluctuation."""
    config = SizeEstimationConfig(
        cycles=cycles,
        cycles_per_epoch=epoch,
        initial_size=n,
        expected_leaders=1.0,
        seed=seed,
    )
    churn = OscillatingChurn(
        n, n // 10, period=max(cycles // 2, 2),
        fluctuation=max(n // 1000, 1),
    )
    return SizeEstimationExperiment(config, churn=churn, backend=backend)


def equivalence_check(n=EQUIVALENCE_N, cycles=90):
    """Replay one scaled-down churn run per backend; bitwise compare."""
    runs = {}
    for backend in ("reference", "vectorized"):
        experiment = figure4_experiment(
            n, cycles=cycles, backend=backend, seed=SEED
        )
        experiment.run()
        runs[backend] = experiment
    ref, vec = runs["reference"], runs["vectorized"]
    estimates_equal = [
        r.estimate_mean for r in ref.reports
    ] == [r.estimate_mean for r in vec.reports]
    return bool(estimates_equal and ref.size_trace == vec.size_trace)


def compute_churn(n=N, cycles=CYCLES):
    experiment = figure4_experiment(n, cycles=cycles)
    start = time.perf_counter()
    reports = experiment.run()
    elapsed = time.perf_counter() - start
    errors = [report.relative_error for report in reports]
    return {
        "n": n,
        "cycles": cycles,
        "cycles_per_epoch": EPOCH,
        "backend": experiment.backend_name,
        "seconds": elapsed,
        "epochs_reported": len(reports),
        "mean_relative_error": float(np.mean(errors)) if errors else None,
        "max_relative_error": float(np.max(errors)) if errors else None,
        "final_size": experiment.current_size,
        "bitwise_equal_backends": equivalence_check(),
    }


def render(series):
    table = Table(
        headers=["metric", "value"],
        title=(
            f"C1: kernel-hosted churn — Figure 4 at N={series['n']}, "
            f"{series['cycles']} cycles ({series['backend']} backend)"
        ),
    )
    table.add_row("wall-clock seconds", series["seconds"])
    table.add_row("epochs reported", series["epochs_reported"])
    table.add_row("mean relative error", series["mean_relative_error"])
    table.add_row("max relative error", series["max_relative_error"])
    table.add_row("bitwise-equal backends", series["bitwise_equal_backends"])
    return table.render()


def check(series):
    assert series["bitwise_equal_backends"], (
        "reference and vectorized backends diverged under churn"
    )
    expected_epochs = series["cycles"] // series["cycles_per_epoch"]
    assert expected_epochs > 0, (
        f"--cycles {series['cycles']} completes no "
        f"{series['cycles_per_epoch']}-cycle epoch; nothing to measure"
    )
    assert series["epochs_reported"] == expected_epochs
    assert series["mean_relative_error"] < 0.05, (
        f"mean relative error {series['mean_relative_error']:.3f} "
        f"exceeds the 5% acceptance bound"
    )
    # the wall-clock ceiling is a paper-scale claim; smoke sizes only
    # check correctness
    if series["n"] >= 100_000:
        assert series["seconds"] < SECONDS_CEILING, (
            f"N={series['n']} churn run took {series['seconds']:.1f}s, "
            f"ceiling is {SECONDS_CEILING}s"
        )


def test_churn(benchmark, capsys):
    series = benchmark.pedantic(compute_churn, rounds=1, iterations=1)
    emit("churn", render(series), capsys)
    emit_json("churn", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    args = parser.parse_args(argv)
    series = compute_churn(args.n, args.cycles)
    emit("churn", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive;
    # smoke sizes stay in benchmarks/out/
    emit_json("churn", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
