"""Experiment A5 — clock-drift sensitivity (relaxing the §2 assumption).

The analysis assumes "a hardware clock without drift and a common point
of reference". This bench measures the event-driven protocol's
convergence rate as per-node clock skew grows from 0 (the paper's
model) to ±30 %.

Expected shape: the rate is flat across realistic skews (1e-4 … 1e-2)
and degrades only gently at extreme skew — drift perturbs *who*
initiates *when*, but Theorem 1 only cares about the φ distribution,
which stays near 1 + Poisson(1).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.avg import RATE_SEQ
from repro.core import GossipNetwork
from repro.rng import spawn_streams
from repro.simulator import DriftingClock
from repro.topology import CompleteTopology

from _common import emit, paper_scale

N = 1500 if paper_scale() else 600
RUNS = 6 if paper_scale() else 3
CYCLES = 10
SKEWS = (0.0, 1e-4, 1e-2, 0.1, 0.3)


def measured_rate(skew, seed):
    rates = []
    for rng in spawn_streams(seed, RUNS):
        values = rng.normal(0.0, 1.0, N)
        clocks = [
            DriftingClock(
                rate=1.0 + float(rng.uniform(-skew, skew)),
                offset=float(rng.uniform(0.0, 1.0)),
            )
            for _ in range(N)
        ]
        net = GossipNetwork(
            CompleteTopology(N), values, clocks=clocks, seed=rng
        )
        ratios = []
        previous = net.variance()
        for _ in range(CYCLES):
            net.run_cycles(1)
            current = net.variance()
            ratios.append(current / previous)
            previous = current
        rates.append(float(np.exp(np.mean(np.log(ratios)))))
    return float(np.mean(rates))


def compute_ablation():
    return [
        (skew, measured_rate(skew, seed=800 + index))
        for index, skew in enumerate(SKEWS)
    ]


def render(rows):
    table = Table(
        headers=["clock skew (+/-)", "per-cycle rate"],
        title=(
            f"A5: clock drift vs convergence, event-driven, N={N} "
            f"(theory at zero skew: {RATE_SEQ:.3f})"
        ),
    )
    for row in rows:
        table.add_row(*row)
    return table.render()


def test_ablation_clocks(benchmark, capsys):
    rows = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    emit("ablation_clocks", render(rows), capsys)
    rates = dict(rows)
    # realistic skews: indistinguishable from the drift-free model
    assert abs(rates[0.0] - RATE_SEQ) / RATE_SEQ < 0.12
    for skew in (1e-4, 1e-2):
        assert abs(rates[skew] - rates[0.0]) < 0.03
    # even extreme skew keeps exponential convergence well below RAND's 1/e
    assert rates[0.3] < 0.37
