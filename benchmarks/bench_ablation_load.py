"""Experiment A4 — the §5 "no performance peaks" claim.

"Since φ is independent of location, there are no performance peaks,
the costs are distributed very smoothly over the network."

This bench measures the per-node communication count distribution over
many cycles for SEQ and RAND on the overlays the paper assumes, plus
the star topology as the designed counterexample (the hub participates
in every exchange).

Expected shape: on complete / k-regular overlays max/mean stays near 1
(tight φ concentration, shrinking relatively as cycles accumulate); on
the star the hub's load is ~N/2 times the leaf average.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.avg import GetPairRand, GetPairSeq
from repro.rng import make_rng
from repro.topology import CompleteTopology, RandomRegularTopology, StarTopology

from _common import emit, paper_scale

N = 2000 if paper_scale() else 1000
CYCLES = 30


def load_distribution(selector, seed):
    """Total per-node communication counts over CYCLES cycles."""
    rng = make_rng(seed)
    totals = np.zeros(selector.n, dtype=np.int64)
    for _ in range(CYCLES):
        pairs = selector.cycle_pairs(rng)
        totals += selector.phi_counts(pairs)
    return totals


def compute_load():
    cases = [
        ("seq / complete", GetPairSeq(CompleteTopology(N))),
        ("rand / complete", GetPairRand(CompleteTopology(N))),
        ("seq / 20-regular", GetPairSeq(RandomRegularTopology(N, 20, seed=2))),
        ("rand / 20-regular", GetPairRand(RandomRegularTopology(N, 20, seed=3))),
        ("seq / star", GetPairSeq(StarTopology(N))),
    ]
    rows = []
    for index, (name, selector) in enumerate(cases):
        totals = load_distribution(selector, seed=700 + index)
        mean = float(totals.mean())
        rows.append(
            (
                name,
                mean,
                float(totals.max()),
                float(totals.max()) / mean,
                float(totals.std() / mean),
            )
        )
    return rows


def render(rows):
    table = Table(
        headers=[
            "selector / topology",
            "mean msgs/node",
            "max msgs/node",
            "max/mean",
            "cv",
        ],
        title=(
            f"A4: per-node communication load over {CYCLES} cycles, N={N} "
            "(Section 5: 'no performance peaks')"
        ),
    )
    for row in rows:
        table.add_row(*row)
    return table.render()


def test_ablation_load(benchmark, capsys):
    rows = benchmark.pedantic(compute_load, rounds=1, iterations=1)
    emit("ablation_load", render(rows), capsys)
    by_name = {name: row for name, *row in rows}
    # the paper's overlays: load is flat — no node carries even 2x the mean
    for name in ("seq / complete", "rand / complete",
                 "seq / 20-regular", "rand / 20-regular"):
        mean, peak, ratio, cv = by_name[name]
        assert mean == 2 * CYCLES  # every exchange touches two nodes
        assert ratio < 2.0, name
        assert cv < 0.2, name
    # the star: the hub IS a performance peak
    _, _, star_ratio, _ = by_name["seq / star"]
    assert star_ratio > N / 10
