"""Experiment S3 — the sharded backend at million-node scale.

The paper's scalability claim is asymptotic — "the performance of the
protocol does not depend on network size" — so the reproduction should
not stop where one process's numpy throughput does. This benchmark
times the multi-process :class:`~repro.kernel.ShardedBackend` against
the single-process vectorized backend on the same AggregationService
workload (five concurrent aggregation instances, identical RNG draws)
at N = 1 000 000, sweeping the worker count (1/2/4/8 by default), and
asserts three things:

* **Correctness at every scale.** The sharded matrix is bitwise-equal
  to the vectorized one at N (all worker counts, pipelined *and*
  barrier execution), and bitwise-equal to the *sequential reference*
  execution at the paper's N = 100 000 across the full scenario
  surface: plain exchange cycles, pair mode (GETPAIR_PM), churn, and
  the 20-regular CSR overlay.
* **Speedup on multi-core hosts.** Where the host has ≥ 4 cores and the
  run is at million-node scale, the best sharded configuration must be
  ≥ 2× faster than single-process vectorized (2× is the theoretical
  ceiling of a 2-core host, so the gate needs core headroom over its
  floor). On smaller hosts the sweep is recorded but not gated — the
  workers would time-share cores; ``cpu_count`` lands in the archive
  so readers can tell which regime produced the numbers.
* **No degenerate-host overhead.** ``sharded:auto`` (the CLI default)
  must stay within :data:`OVERHEAD_CEILING_PCT` of vectorized when it
  resolves to inline execution (single schedulable core, where a pool
  can only add IPC on top of the same serial work). Both sides are
  best-of-:data:`REPS` so the gate measures code, not scheduler noise.

Each worker count also records the **pipelined-vs-barrier ablation**
(``sharded_w{w}_barrier_seconds`` re-runs the identical workload with
the per-segment W+1 barrier instead of the two-bank handoff) and the
parent-side **phase breakdown**: ``plan`` (partner staging + greedy
segmentation CPU), ``apply`` (parent-side segment application: inline
mode, or barrier-mode sequential tails), and ``sync`` (time blocked on
worker acknowledgements — the worker-apply latency the pipeline failed
to hide).

``--tenm`` runs the scale-up experiment instead: Figure 3(a)'s
one-execution variance reduction and a Figure 4-style one-epoch size
estimation at N = 10 000 000, gated by an explicit peak-RSS budget
(:data:`TENM_RSS_BUDGET_BYTES`); results land in
``BENCH_shard10m.json`` and accumulate in ``BENCH_history.jsonl``.

Results land in ``benchmarks/out/BENCH_shard.json`` (paper-scale runs
also refresh the git-tracked ``BENCH_shard.json`` at the repo root).
Run directly (``python benchmarks/bench_shard.py [--n N] [--workers
1 2 4 8] [--tenm]``) or through pytest.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.analysis import Table
from repro.avg import GetPairRand, RATE_RAND, ValueVector, run_avg
from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.failures import OscillatingChurn
from repro.kernel import GossipEngine, PairProtocolSpec, Scenario
from repro.rng import make_rng
from repro.topology import CompleteTopology, RandomRegularTopology

from _common import emit, emit_json, peak_rss_bytes
from bench_scale import service_scenario

N = 1_000_000
CYCLES = 5
SEED = 23
WORKER_SWEEP = (1, 2, 4, 8)
EQUIV_N = 100_000  # reference-oracle equivalence scale
SPEEDUP_FLOOR = 2.0  # acceptance target at N = 1M on multi-core hosts
REPS = 3  # best-of reps for the gated vectorized/auto timings
OVERHEAD_CEILING_PCT = 2.0  # sharded:auto (inline) vs vectorized

TENM_N = 10_000_000
TENM_EPOCH = 30  # one Figure 4 epoch at 10M
#: peak-RSS ceiling for the N = 10M scale-up run. Measured ~0.73 GiB
#: on the archive box (values vector + value matrix + pair bookkeeping
#: + planner scratch, each O(N), ~80 MB per float64 array at 10M); the
#: 1.5 GiB budget leaves allocator headroom while still catching a
#: reintroduced O(N)-sized copy regression on the growth/adopt path.
TENM_RSS_BUDGET_BYTES = int(1.5 * 1024**3)


@contextlib.contextmanager
def pipeline_mode(enabled: bool):
    """Force pipelined or barrier execution for backends built inside
    the block (the backend reads ``REPRO_SHARD_PIPELINE`` once, at
    construction)."""
    previous = os.environ.get("REPRO_SHARD_PIPELINE")
    os.environ["REPRO_SHARD_PIPELINE"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SHARD_PIPELINE", None)
        else:
            os.environ["REPRO_SHARD_PIPELINE"] = previous


def timed_engine_run(scenario, cycles):
    """Wall-clock one engine run; returns (seconds, final matrix,
    backend probe). The probe carries the sharded backend's parent-side
    phase breakdown and whether ``auto`` stayed inline (empty/None for
    other backends)."""
    with GossipEngine(scenario) as engine:
        start = time.perf_counter()
        engine.run(cycles, record="end")
        elapsed = time.perf_counter() - start
        backend = engine._backend
        probe = {
            "phase_seconds": dict(getattr(backend, "phase_seconds", {})),
            "inline": getattr(backend, "inline", None),
        }
        return elapsed, engine.matrix, probe


def best_of(reps, build_scenario, cycles):
    """Fastest of ``reps`` fresh engine runs — the gated comparisons
    use best-of so one scheduler hiccup on a shared box cannot fail an
    overhead gate that the code actually meets."""
    best = None
    for _ in range(reps):
        seconds, matrix, probe = timed_engine_run(build_scenario(), cycles)
        if best is None or seconds < best[0]:
            best = (seconds, matrix, probe)
    return best


def equivalence_scenarios(n, seed=SEED):
    """The acceptance surface at the reference-oracle scale: one
    scenario per kernel execution family."""
    values = make_rng(seed).normal(10.0, 4.0, n)
    complete = CompleteTopology(n)
    sparse = RandomRegularTopology(n, 20, seed=seed)
    return {
        "plain": lambda backend: service_scenario(
            n, backend, seed=seed, cycles=3
        ),
        "pair_pm": lambda backend: Scenario(
            complete, values,
            pair_protocol=PairProtocolSpec("pm", track_phi=False),
            seed=seed, backend=backend,
        ),
        "churn": lambda backend: Scenario(
            complete, values,
            churn=OscillatingChurn(n, n // 10, 20,
                                   fluctuation=max(n // 1000, 1)),
            seed=seed, backend=backend,
        ),
        "sparse_regular20": lambda backend: Scenario(
            sparse, values, seed=seed, backend=backend,
        ),
    }


def check_equivalence(n, workers=2, cycles=3):
    """Sharded-vs-reference bitwise equality over the full scenario
    surface at ``n``; returns {family: bool}."""
    outcomes = {}
    for family, build in equivalence_scenarios(n).items():
        _, ref_matrix, _ = timed_engine_run(build("reference"), cycles)
        _, sh_matrix, _ = timed_engine_run(
            build(f"sharded:{workers}"), cycles
        )
        outcomes[family] = bool(np.array_equal(ref_matrix, sh_matrix))
    return outcomes


def compute_shard(n=N, cycles=CYCLES, workers=WORKER_SWEEP, equiv_n=EQUIV_N,
                  reps=REPS):
    vec_seconds, vec_matrix, _ = best_of(
        reps, lambda: service_scenario(n, "vectorized", cycles=cycles),
        cycles,
    )
    series = {
        "n": n,
        "cycles": cycles,
        "aggregates": 5,
        "cpu_count": os.cpu_count(),
        "worker_sweep": ",".join(str(w) for w in workers),
        "equiv_n": equiv_n,
        "reps": reps,
        "vectorized_seconds": vec_seconds,
    }
    best_seconds, best_workers = None, None
    all_bitwise = True
    for w in workers:
        sh_seconds, sh_matrix, probe = best_of(
            reps,
            lambda: service_scenario(n, f"sharded:{w}", cycles=cycles),
            cycles,
        )
        series[f"sharded_w{w}_seconds"] = sh_seconds
        for phase in ("plan", "apply", "sync"):
            series[f"sharded_w{w}_{phase}_seconds"] = (
                probe["phase_seconds"].get(phase, 0.0)
            )
        equal = bool(np.array_equal(vec_matrix, sh_matrix))
        series[f"sharded_w{w}_bitwise_equal"] = equal
        all_bitwise = all_bitwise and equal
        # ablation: identical workload, per-segment W+1 barrier instead
        # of the two-bank pipelined handoff
        with pipeline_mode(False):
            barrier_seconds, barrier_matrix, _ = best_of(
                reps,
                lambda: service_scenario(n, f"sharded:{w}", cycles=cycles),
                cycles,
            )
        series[f"sharded_w{w}_barrier_seconds"] = barrier_seconds
        barrier_equal = bool(np.array_equal(vec_matrix, barrier_matrix))
        series[f"sharded_w{w}_barrier_bitwise_equal"] = barrier_equal
        all_bitwise = all_bitwise and barrier_equal
        if best_seconds is None or sh_seconds < best_seconds:
            best_seconds, best_workers = sh_seconds, w
    series["best_workers"] = best_workers
    series["speedup"] = vec_seconds / best_seconds
    # the CLI-default configuration: `auto` resolves the worker count
    # from scheduler affinity and falls back to inline execution on
    # degenerate hosts/sizes — this is the "never slower than
    # vectorized" acceptance surface, so it gets best-of treatment too
    auto_seconds, auto_matrix, auto_probe = best_of(
        reps, lambda: service_scenario(n, "sharded:auto", cycles=cycles),
        cycles,
    )
    series["sharded_auto_seconds"] = auto_seconds
    series["sharded_auto_inline"] = bool(auto_probe["inline"])
    auto_equal = bool(np.array_equal(vec_matrix, auto_matrix))
    series["sharded_auto_bitwise_equal"] = auto_equal
    all_bitwise = all_bitwise and auto_equal
    series["auto_overhead_pct"] = (
        (auto_seconds - vec_seconds) / vec_seconds * 100.0
    )
    series["bitwise_equal"] = all_bitwise
    # the ≥2x acceptance claim only makes sense where the workers have
    # core headroom over the floor (2x IS a 2-core host's ceiling), at
    # a scale whose timings are not noise
    series["timing_gated"] = bool(
        (os.cpu_count() or 1) >= 4 and n >= 1_000_000
    )
    equivalences = check_equivalence(equiv_n)
    for family, equal in equivalences.items():
        series[f"equiv_{family}_bitwise_equal"] = equal
    return series


def render(series):
    table = Table(
        headers=["backend", "seconds", "vs vectorized", "bitwise equal"],
        title=(
            f"S3: sharded backend wall-clock, N={series['n']}, "
            f"{series['cycles']} cycles, {series['aggregates']} concurrent "
            f"aggregates, {series['cpu_count']} cpu(s) "
            f"(best: {series['best_workers']} worker(s), "
            f"speedup {series['speedup']:.2f}x"
            f"{'' if series['timing_gated'] else ', not gated'})"
        ),
    )
    vec = series["vectorized_seconds"]
    table.add_row("vectorized", vec, 1.0, True)
    for w in series["worker_sweep"].split(","):
        seconds = series[f"sharded_w{w}_seconds"]
        table.add_row(
            f"sharded:{w}", seconds, vec / seconds,
            series[f"sharded_w{w}_bitwise_equal"],
        )
        barrier = series[f"sharded_w{w}_barrier_seconds"]
        table.add_row(
            f"sharded:{w} (barrier)", barrier, vec / barrier,
            series[f"sharded_w{w}_barrier_bitwise_equal"],
        )
    mode = "inline" if series["sharded_auto_inline"] else "pool"
    table.add_row(
        f"sharded:auto ({mode})", series["sharded_auto_seconds"],
        vec / series["sharded_auto_seconds"],
        series["sharded_auto_bitwise_equal"],
    )
    lines = [table.render(), ""]
    lines.append(
        "parent-side phase seconds (plan / apply / sync): "
        + "; ".join(
            f"w={w} "
            f"{series[f'sharded_w{w}_plan_seconds']:.3f} / "
            f"{series[f'sharded_w{w}_apply_seconds']:.3f} / "
            f"{series[f'sharded_w{w}_sync_seconds']:.3f}"
            for w in series["worker_sweep"].split(",")
        )
    )
    lines.append(
        f"sharded:auto overhead vs vectorized: "
        f"{series['auto_overhead_pct']:+.2f}% "
        f"(ceiling {OVERHEAD_CEILING_PCT:.0f}% when inline; "
        f"best-of-{series['reps']})"
    )
    lines.append(
        f"reference-oracle equivalence at N={series['equiv_n']}: "
        + ", ".join(
            f"{key[len('equiv_'):-len('_bitwise_equal')]}="
            f"{series[key]}"
            for key in sorted(series)
            if key.startswith("equiv_") and key.endswith("_bitwise_equal")
        )
    )
    return "\n".join(lines)


def check(series):
    for key in sorted(series):
        if key.endswith("bitwise_equal"):
            assert series[key], f"{key} is False: sharded execution diverged"
    if series["timing_gated"]:
        assert series["speedup"] >= SPEEDUP_FLOOR, (
            f"best sharded configuration is only "
            f"{series['speedup']:.2f}x over vectorized at N={series['n']} "
            f"on {series['cpu_count']} cores (floor {SPEEDUP_FLOOR}x)"
        )
    if series["sharded_auto_inline"] and series["n"] >= N:
        # the degenerate-host guarantee: when `auto` stays in-process
        # it must cost (almost) nothing over vectorized
        assert series["auto_overhead_pct"] <= OVERHEAD_CEILING_PCT, (
            f"sharded:auto (inline) is "
            f"{series['auto_overhead_pct']:.2f}% slower than vectorized "
            f"(ceiling {OVERHEAD_CEILING_PCT}%)"
        )


# -- the N = 10M scale-up run ---------------------------------------------


def compute_tenm(n=TENM_N):
    """Figure 3(a) + Figure 4 shapes at N = 10M under the peak-RSS
    budget: one AVG execution's variance reduction (RAND selector,
    complete topology) and one epoch of size estimation under
    oscillating churn."""
    series = {
        "n": n,
        "cpu_count": os.cpu_count(),
        "rss_budget_bytes": TENM_RSS_BUDGET_BYTES,
    }
    vector = ValueVector.gaussian(n, seed=SEED)
    topology = CompleteTopology(n)
    start = time.perf_counter()
    result = run_avg(vector, GetPairRand(topology), 1, seed=SEED)
    series["figure3a_seconds"] = time.perf_counter() - start
    series["figure3a_reduction"] = float(result.cycles[0].reduction)
    del vector, result
    config = SizeEstimationConfig(
        cycles=TENM_EPOCH,
        cycles_per_epoch=TENM_EPOCH,
        initial_size=n,
        expected_leaders=1.0,
        seed=2004,
    )
    churn = OscillatingChurn(
        n, n // 100, period=TENM_EPOCH // 2, fluctuation=n // 10_000
    )
    experiment = SizeEstimationExperiment(config, churn=churn)
    start = time.perf_counter()
    experiment.run()
    series["figure4_seconds"] = time.perf_counter() - start
    report = experiment.reports[-1]
    series["figure4_estimate"] = float(report.estimate_mean)
    series["figure4_size_at_start"] = float(report.size_at_start)
    series["figure4_relative_error"] = float(report.relative_error)
    return series


def render_tenm(series):
    budget_gib = series["rss_budget_bytes"] / 1024**3
    rss = peak_rss_bytes().get("peak_rss_bytes", 0)
    return "\n".join([
        f"S3-10M: scale-up figures at N={series['n']} "
        f"({series['cpu_count']} cpu(s), "
        f"peak RSS {rss / 1024**3:.2f} GiB / budget {budget_gib:.1f} GiB)",
        f"  figure 3(a): variance reduction after one AVG execution = "
        f"{series['figure3a_reduction']:.4f} "
        f"(theory 1/e = {RATE_RAND:.4f}) "
        f"in {series['figure3a_seconds']:.1f}s",
        f"  figure 4: one-epoch size estimate = "
        f"{series['figure4_estimate']:.0f} "
        f"(actual at epoch start {series['figure4_size_at_start']:.0f}, "
        f"relative error {series['figure4_relative_error']:.4f}) "
        f"in {series['figure4_seconds']:.1f}s",
    ])


def check_tenm(series):
    assert (
        abs(series["figure3a_reduction"] - RATE_RAND) / RATE_RAND < 0.12
    ), (
        f"10M variance reduction {series['figure3a_reduction']:.4f} is "
        f"off the 1/e theory line"
    )
    assert series["figure4_relative_error"] < 0.1, (
        f"10M size estimate is {series['figure4_relative_error']:.2%} off"
    )
    rss = peak_rss_bytes().get("peak_rss_bytes")
    if rss is not None:
        assert rss <= series["rss_budget_bytes"], (
            f"N={series['n']} run peaked at {rss / 1024**3:.2f} GiB, "
            f"over the {series['rss_budget_bytes'] / 1024**3:.1f} GiB "
            f"budget"
        )


def test_shard(benchmark, capsys):
    series = benchmark.pedantic(compute_shard, rounds=1, iterations=1)
    emit("shard", render(series), capsys)
    emit_json("shard", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=list(WORKER_SWEEP),
                        help="worker counts to sweep")
    parser.add_argument("--equiv-n", type=int, default=EQUIV_N,
                        help="scale of the reference-oracle equivalence "
                             "checks")
    parser.add_argument("--reps", type=int, default=REPS,
                        help="best-of reps for the gated timings")
    parser.add_argument("--tenm", action="store_true",
                        help="run the N=10M scale-up figures instead of "
                             "the worker sweep")
    args = parser.parse_args(argv)
    if args.tenm:
        series = compute_tenm()
        emit("shard10m", render_tenm(series), None)
        emit_json("shard10m", series)
        check_tenm(series)
        return 0
    series = compute_shard(
        args.n, args.cycles, tuple(args.workers), args.equiv_n, args.reps
    )
    emit("shard", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive
    emit_json("shard", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
