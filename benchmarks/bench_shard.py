"""Experiment S3 — the sharded backend at million-node scale.

The paper's scalability claim is asymptotic — "the performance of the
protocol does not depend on network size" — so the reproduction should
not stop where one process's numpy throughput does. This benchmark
times the multi-process :class:`~repro.kernel.ShardedBackend` against
the single-process vectorized backend on the same AggregationService
workload (five concurrent aggregation instances, identical RNG draws)
at N = 1 000 000, sweeping the worker count (1/2/4/8 by default), and
asserts two things:

* **Correctness at every scale.** The sharded matrix is bitwise-equal
  to the vectorized one at N (all worker counts), and bitwise-equal to
  the *sequential reference* execution at the paper's N = 100 000
  across the full scenario surface: plain exchange cycles, pair mode
  (GETPAIR_PM), churn, and the 20-regular CSR overlay.
* **Speedup on multi-core hosts.** Where the host has ≥ 4 cores and the
  run is at million-node scale, the best sharded configuration must be
  ≥ 2× faster than single-process vectorized (2× is the theoretical
  ceiling of a 2-core host, so the gate needs core headroom over its
  floor). On smaller hosts the sweep is recorded but not gated — the
  workers would time-share cores; ``cpu_count`` lands in the archive
  so readers can tell which regime produced the numbers.

Results land in ``benchmarks/out/BENCH_shard.json`` (paper-scale runs
also refresh the git-tracked ``BENCH_shard.json`` at the repo root).
Run directly (``python benchmarks/bench_shard.py [--n N] [--workers
1 2 4 8]``) or through pytest.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.analysis import Table
from repro.failures import OscillatingChurn
from repro.kernel import GossipEngine, PairProtocolSpec, Scenario
from repro.rng import make_rng
from repro.topology import CompleteTopology, RandomRegularTopology

from _common import emit, emit_json
from bench_scale import service_scenario

N = 1_000_000
CYCLES = 5
SEED = 23
WORKER_SWEEP = (1, 2, 4, 8)
EQUIV_N = 100_000  # reference-oracle equivalence scale
SPEEDUP_FLOOR = 2.0  # acceptance target at N = 1M on multi-core hosts


def timed_engine_run(scenario, cycles):
    """Wall-clock one engine run; returns (seconds, final matrix)."""
    with GossipEngine(scenario) as engine:
        start = time.perf_counter()
        engine.run(cycles, record="end")
        elapsed = time.perf_counter() - start
        return elapsed, engine.matrix


def equivalence_scenarios(n, seed=SEED):
    """The acceptance surface at the reference-oracle scale: one
    scenario per kernel execution family."""
    values = make_rng(seed).normal(10.0, 4.0, n)
    complete = CompleteTopology(n)
    sparse = RandomRegularTopology(n, 20, seed=seed)
    return {
        "plain": lambda backend: service_scenario(
            n, backend, seed=seed, cycles=3
        ),
        "pair_pm": lambda backend: Scenario(
            complete, values,
            pair_protocol=PairProtocolSpec("pm", track_phi=False),
            seed=seed, backend=backend,
        ),
        "churn": lambda backend: Scenario(
            complete, values,
            churn=OscillatingChurn(n, n // 10, 20,
                                   fluctuation=max(n // 1000, 1)),
            seed=seed, backend=backend,
        ),
        "sparse_regular20": lambda backend: Scenario(
            sparse, values, seed=seed, backend=backend,
        ),
    }


def check_equivalence(n, workers=2, cycles=3):
    """Sharded-vs-reference bitwise equality over the full scenario
    surface at ``n``; returns {family: bool}."""
    outcomes = {}
    for family, build in equivalence_scenarios(n).items():
        _, ref_matrix = timed_engine_run(build("reference"), cycles)
        _, sh_matrix = timed_engine_run(build(f"sharded:{workers}"), cycles)
        outcomes[family] = bool(np.array_equal(ref_matrix, sh_matrix))
    return outcomes


def compute_shard(n=N, cycles=CYCLES, workers=WORKER_SWEEP, equiv_n=EQUIV_N):
    vec_seconds, vec_matrix = timed_engine_run(
        service_scenario(n, "vectorized", cycles=cycles), cycles
    )
    series = {
        "n": n,
        "cycles": cycles,
        "aggregates": 5,
        "cpu_count": os.cpu_count(),
        "worker_sweep": ",".join(str(w) for w in workers),
        "equiv_n": equiv_n,
        "vectorized_seconds": vec_seconds,
    }
    best_seconds, best_workers = None, None
    all_bitwise = True
    for w in workers:
        sh_seconds, sh_matrix = timed_engine_run(
            service_scenario(n, f"sharded:{w}", cycles=cycles), cycles
        )
        series[f"sharded_w{w}_seconds"] = sh_seconds
        equal = bool(np.array_equal(vec_matrix, sh_matrix))
        series[f"sharded_w{w}_bitwise_equal"] = equal
        all_bitwise = all_bitwise and equal
        if best_seconds is None or sh_seconds < best_seconds:
            best_seconds, best_workers = sh_seconds, w
    series["best_workers"] = best_workers
    series["speedup"] = vec_seconds / best_seconds
    series["bitwise_equal"] = all_bitwise
    # the ≥2x acceptance claim only makes sense where the workers have
    # core headroom over the floor (2x IS a 2-core host's ceiling), at
    # a scale whose timings are not noise
    series["timing_gated"] = bool(
        (os.cpu_count() or 1) >= 4 and n >= 1_000_000
    )
    equivalences = check_equivalence(equiv_n)
    for family, equal in equivalences.items():
        series[f"equiv_{family}_bitwise_equal"] = equal
    return series


def render(series):
    table = Table(
        headers=["backend", "seconds", "vs vectorized", "bitwise equal"],
        title=(
            f"S3: sharded backend wall-clock, N={series['n']}, "
            f"{series['cycles']} cycles, {series['aggregates']} concurrent "
            f"aggregates, {series['cpu_count']} cpu(s) "
            f"(best: {series['best_workers']} worker(s), "
            f"speedup {series['speedup']:.2f}x"
            f"{'' if series['timing_gated'] else ', not gated'})"
        ),
    )
    table.add_row("vectorized", series["vectorized_seconds"], 1.0, True)
    for w in series["worker_sweep"].split(","):
        seconds = series[f"sharded_w{w}_seconds"]
        table.add_row(
            f"sharded:{w}", seconds,
            series["vectorized_seconds"] / seconds,
            series[f"sharded_w{w}_bitwise_equal"],
        )
    lines = [table.render(), ""]
    lines.append(
        f"reference-oracle equivalence at N={series['equiv_n']}: "
        + ", ".join(
            f"{key[len('equiv_'):-len('_bitwise_equal')]}="
            f"{series[key]}"
            for key in sorted(series)
            if key.startswith("equiv_") and key.endswith("_bitwise_equal")
        )
    )
    return "\n".join(lines)


def check(series):
    for key in sorted(series):
        if key.endswith("bitwise_equal"):
            assert series[key], f"{key} is False: sharded execution diverged"
    if series["timing_gated"]:
        assert series["speedup"] >= SPEEDUP_FLOOR, (
            f"best sharded configuration is only "
            f"{series['speedup']:.2f}x over vectorized at N={series['n']} "
            f"on {series['cpu_count']} cores (floor {SPEEDUP_FLOOR}x)"
        )


def test_shard(benchmark, capsys):
    series = benchmark.pedantic(compute_shard, rounds=1, iterations=1)
    emit("shard", render(series), capsys)
    emit_json("shard", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=list(WORKER_SWEEP),
                        help="worker counts to sweep")
    parser.add_argument("--equiv-n", type=int, default=EQUIV_N,
                        help="scale of the reference-oracle equivalence "
                             "checks")
    args = parser.parse_args(argv)
    series = compute_shard(
        args.n, args.cycles, tuple(args.workers), args.equiv_n
    )
    emit("shard", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive
    emit_json("shard", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
