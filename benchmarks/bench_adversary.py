"""Experiment R1 — the adversarial robustness report at paper scale.

Runs the declarative robustness sweep
(:class:`repro.analysis.RobustnessSweep`): size estimation under
``lying`` (byzantine responders) and ``inject`` (stubborn in-protocol
corruption) adversaries across adversary fraction × churn rate ×
topology, N = 100 000 by default. The headline claim: at 10 % lying
nodes the median-based size estimate stays within 5 % of the truth
while the plain mean diverges — robustness comes from the read-out
reduction, not from the protocol.

The benchmark also replays every adversary kind (inject, lying,
partition, eclipse) on all three backends — reference, vectorized and
sharded at worker counts 1, 2 and 4 — at N = 10 000 and asserts the
trajectories agree bitwise: the backend-equivalence contract holds
under any adversary configuration because every adversarial effect is
engine-side.

Results land in ``benchmarks/out/BENCH_adversary.json`` (paper-scale
runs also refresh the git-tracked copy at the repo root) plus the
robustness-report figure ``benchmarks/out/FIG_adversary.svg``. A smoke
configuration (``--n 50000``) runs a reduced grid for CI.

Run directly (``python benchmarks/bench_adversary.py [--n N]``) or
through pytest (``pytest benchmarks/bench_adversary.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (
    RobustnessSweep,
    Table,
    render_robustness_svg,
    run_robustness_sweep,
)
from repro.kernel import AdversarySpec, ADVERSARY_KINDS, GossipEngine, Scenario
from repro.rng import make_rng
from repro.topology import CompleteTopology, RandomRegularTopology

from _common import OUT_DIR, emit, emit_json

N = 100_000
SEED = 2004
HEADLINE_FRACTION = 0.1
SECONDS_CEILING = 300.0  # acceptance target at N = 100 000
EQUIVALENCE_N = 10_000
EQUIVALENCE_CYCLES = 6
EQUIVALENCE_WORKERS = (1, 2, 4)


def _equivalence_scenario(kind, n, backend):
    """One adversarial scenario per kind; eclipse runs on the CSR
    overlay it was built for, the others on the complete graph."""
    if kind == "eclipse":
        topology = RandomRegularTopology(n, 20, seed=SEED)
    else:
        topology = CompleteTopology(n)
    values = make_rng(SEED).normal(10.0, 4.0, n)
    return Scenario(
        topology,
        values,
        adversary=AdversarySpec(kind=kind, fraction=0.1, value=100.0),
        seed=SEED,
        backend=backend,
    )


def equivalence_check(n=EQUIVALENCE_N, cycles=EQUIVALENCE_CYCLES):
    """Replay every adversary kind on reference, vectorized and sharded
    (workers 1/2/4); bitwise-compare matrices, exchange counts and the
    reported view."""
    backends = ["reference", "vectorized"] + [
        f"sharded:{workers}" for workers in EQUIVALENCE_WORKERS
    ]
    outcome = {}
    for kind in ADVERSARY_KINDS:
        snapshots = {}
        for backend in backends:
            engine = GossipEngine(_equivalence_scenario(kind, n, backend))
            try:
                result = engine.run(cycles)
                snapshots[backend] = (
                    engine.matrix,
                    result.exchange_counts,
                    engine.reported_column(),
                )
            finally:
                engine.close()
        reference = snapshots["reference"]
        outcome[kind] = all(
            np.array_equal(snapshots[backend][0], reference[0])
            and snapshots[backend][1] == reference[1]
            and np.array_equal(snapshots[backend][2], reference[2])
            for backend in backends[1:]
        )
    return outcome


def build_sweep(n=N):
    """Paper-scale grid at the acceptance size, a reduced grid below."""
    if n >= N:
        return RobustnessSweep(n=n, seed=SEED)
    return RobustnessSweep(
        n=n,
        runs=2,
        fractions=(0.0, HEADLINE_FRACTION),
        churn_rates=(0.0, 0.01),
        topologies=("complete",),
        seed=SEED,
    )


def _headline(rows, kind):
    for row in rows:
        if (
            row["kind"] == kind
            and row["topology"] == "complete"
            and row["churn_rate"] == 0.0
            and row["fraction"] == HEADLINE_FRACTION
        ):
            return row
    return None


def compute_adversary(n=N):
    sweep = build_sweep(n)
    start = time.perf_counter()
    payload = run_robustness_sweep(sweep)
    sweep_seconds = time.perf_counter() - start
    start = time.perf_counter()
    equivalence = equivalence_check()
    equivalence_seconds = time.perf_counter() - start
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "FIG_adversary.svg").write_text(
        render_robustness_svg(payload) + "\n"
    )
    lying = _headline(payload["rows"], "lying")
    inject = _headline(payload["rows"], "inject")
    return {
        "n": n,
        "cycles": sweep.cycles,
        "cycles_per_epoch": sweep.cycles_per_epoch,
        "runs": sweep.runs,
        "backend": sweep.backend,
        "seconds": sweep_seconds + equivalence_seconds,
        "sweep_seconds": sweep_seconds,
        "equivalence_seconds": equivalence_seconds,
        "headline_fraction": HEADLINE_FRACTION,
        "lying_error_mean": lying["error_mean"] if lying else None,
        "lying_error_median": lying["error_median"] if lying else None,
        "lying_error_trimmed": lying["error_trimmed"] if lying else None,
        "inject_error_median": inject["error_median"] if inject else None,
        "equivalence": equivalence,
        "bitwise_equal_backends": all(equivalence.values()),
        "rows": payload["rows"],
    }


def render(series):
    table = Table(
        headers=["metric", "value"],
        title=(
            f"R1: adversarial robustness — N={series['n']}, "
            f"{series['runs']} runs/cell ({series['backend']} backend)"
        ),
    )
    table.add_row("wall-clock seconds", series["seconds"])
    table.add_row("sweep cells", len(series["rows"]))
    table.add_row(
        f"lying @{series['headline_fraction']:.0%}: mean error",
        series["lying_error_mean"],
    )
    table.add_row(
        f"lying @{series['headline_fraction']:.0%}: median error",
        series["lying_error_median"],
    )
    table.add_row(
        f"lying @{series['headline_fraction']:.0%}: trimmed error",
        series["lying_error_trimmed"],
    )
    table.add_row(
        f"inject @{series['headline_fraction']:.0%}: median error",
        series["inject_error_median"],
    )
    table.add_row("bitwise-equal backends", series["bitwise_equal_backends"])
    table.add_row("figure", "benchmarks/out/FIG_adversary.svg")
    return table.render()


def check(series):
    for kind, equal in series["equivalence"].items():
        assert equal, (
            f"backends diverged under the {kind} adversary "
            f"(reference vs vectorized/sharded:1/2/4 at N={EQUIVALENCE_N})"
        )
    # the headline robustness claim: median-based size estimation
    # survives 10% lying nodes, the plain mean does not
    assert series["lying_error_median"] is not None
    assert series["lying_error_median"] < 0.05, (
        f"median size-estimation error {series['lying_error_median']:.4f} "
        f"at {series['headline_fraction']:.0%} lying nodes exceeds the "
        f"5% acceptance bound"
    )
    assert series["lying_error_mean"] > 0.5, (
        f"plain-mean error {series['lying_error_mean']:.4f} did not "
        f"diverge at {series['headline_fraction']:.0%} lying nodes — "
        f"the contrast claim is broken"
    )
    # the wall-clock ceiling is a paper-scale claim; smoke sizes only
    # check correctness
    if series["n"] >= N:
        assert series["seconds"] < SECONDS_CEILING, (
            f"N={series['n']} robustness sweep took "
            f"{series['seconds']:.1f}s, ceiling is {SECONDS_CEILING}s"
        )


def test_adversary(benchmark, capsys):
    series = benchmark.pedantic(
        compute_adversary, args=(20_000,), rounds=1, iterations=1
    )
    emit("adversary", render(series), capsys)
    emit_json("adversary", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    args = parser.parse_args(argv)
    series = compute_adversary(args.n)
    emit("adversary", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive;
    # smoke sizes stay in benchmarks/out/
    emit_json("adversary", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
