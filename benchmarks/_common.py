"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one paper artifact (figure or in-text
claim). By default the workloads run at a reduced scale so the whole
harness finishes in minutes on a laptop; set ``REPRO_PAPER_SCALE=1`` to
run the exact parameters of the paper (N = 100 000, 50 runs, 1000
cycles — slow in pure Python, as the reproduction notes anticipate).

Each benchmark prints its series (the same rows the paper's figure
plots) and archives them under ``benchmarks/out/``.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).resolve().parent.parent


def paper_scale() -> bool:
    """Whether to run the exact paper-scale parameters."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") == "1"


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one scale regime."""

    figure3a_sizes: tuple
    figure3a_runs: int
    figure3b_n: int
    figure3b_runs: int
    figure3b_cycles: int
    figure4_mid: int
    figure4_amplitude: int
    figure4_fluctuation: int
    figure4_cycles: int
    figure4_epoch: int
    rates_n: int
    rates_runs: int
    rates_cycles: int


REDUCED = Scale(
    figure3a_sizes=(100, 316, 1000, 3162, 10000),
    figure3a_runs=10,
    figure3b_n=10000,
    figure3b_runs=3,
    figure3b_cycles=30,
    figure4_mid=3000,
    figure4_amplitude=300,
    figure4_fluctuation=3,
    figure4_cycles=1000,
    figure4_epoch=30,
    rates_n=2000,
    rates_runs=5,
    rates_cycles=15,
)

PAPER = Scale(
    figure3a_sizes=(100, 316, 1000, 3162, 10000, 31623, 100000),
    figure3a_runs=50,
    figure3b_n=100000,
    figure3b_runs=50,
    figure3b_cycles=30,
    figure4_mid=100000,
    figure4_amplitude=10000,
    figure4_fluctuation=100,
    figure4_cycles=1000,
    figure4_epoch=30,
    rates_n=10000,
    rates_runs=50,
    rates_cycles=20,
)


def scale() -> Scale:
    """The active scale regime."""
    return PAPER if paper_scale() else REDUCED


def emit(name: str, text: str, capsys) -> None:
    """Print a report to the live terminal and archive it."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    if capsys is not None:
        with capsys.disabled():
            print()
            print(text)
    else:  # pragma: no cover - direct invocation
        print(text)


def peak_rss_bytes() -> dict:
    """Peak resident-set sizes of this process and its (reaped)
    children, in bytes — the sharded backend's workers land in the
    children number. Empty where :mod:`resource` is unavailable.

    ``ru_maxrss`` is a process-lifetime high-water mark, so archives
    are only attributable to one workload when each benchmark runs in
    its own process (how CI and the nightly invoke them); a combined
    pytest session stamps every archive with the session's peak so
    far. Rows remain comparable across runs of the same entrypoint
    either way.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return {}
    # ru_maxrss is KiB on Linux, bytes on macOS
    unit = 1 if sys.platform == "darwin" else 1024
    return {
        "peak_rss_bytes": resource.getrusage(
            resource.RUSAGE_SELF
        ).ru_maxrss * unit,
        "peak_rss_children_bytes": resource.getrusage(
            resource.RUSAGE_CHILDREN
        ).ru_maxrss * unit,
    }


def emit_json(name: str, payload: dict, *, archive: bool = True) -> Path:
    """Write a machine-readable benchmark result as ``BENCH_<name>.json``.

    The file always lands under ``benchmarks/out/`` (what CI uploads
    and ``diff_bench.py`` compares). With ``archive=True`` it is *also*
    written to the repository root — the git-tracked copy documenting
    the acceptance-scale numbers. Callers pass ``archive=False`` for
    smoke/reduced workloads so a quick local run never clobbers the
    committed paper-scale archive. Every archive also carries the
    run's peak-RSS numbers (see :func:`peak_rss_bytes`) so memory
    trends accumulate in ``bench_history.py`` alongside the timings.
    Returns the ``benchmarks/out/`` path."""
    OUT_DIR.mkdir(exist_ok=True)
    payload = {**peak_rss_bytes(), **payload}
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(text)
    if archive:
        (REPO_ROOT / f"BENCH_{name}.json").write_text(text)
    return path
