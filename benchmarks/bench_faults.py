"""Experiment F — fault-tolerant execution: recovery latency and
checkpoint round-trip cost at scale.

The fault-tolerance layer makes two promises the benchmarks must keep
honest: recovery is *cheap* (killing a shard worker mid-run costs a
journal replay plus a respawn, not a rerun) and recovery is *exact*
(the healed run's trajectory is bitwise-identical to an undisturbed
one, because the journal snapshot/replay consumes no randomness). This
benchmark measures both on the AggregationService workload at
N = 1 000 000:

* **Checkpoint round trip.** One run is checkpointed mid-flight
  (timing the atomic payload+manifest write and the payload size),
  restored into a fresh engine (timing the restore), and run to
  completion — the resumed matrix must equal the uninterrupted run's
  bitwise. Write and restore seconds are the cost a nightly pays per
  checkpoint interval.
* **Worker-kill recovery.** A sharded run is armed with a
  :class:`~repro.kernel.FaultSpec` that SIGKILLs one worker mid-run,
  once under ``on_failure="respawn"`` (journal replay + pool restart)
  and once under ``on_failure="inline"`` (degrade to single-process
  vectorized execution). Both must finish bitwise-equal to the
  vectorized oracle; the structured
  :class:`~repro.kernel.PoolHealthReport` supplies the recovery
  latency that lands in the archive.

Results land in ``benchmarks/out/BENCH_faults.json`` (paper-scale runs
also refresh the git-tracked ``BENCH_faults.json`` at the repo root).
Run directly (``python benchmarks/bench_faults.py [--n N]``) or
through pytest.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.analysis import Table
from repro.kernel import (
    FaultSpec,
    GossipEngine,
    ShardedBackend,
    latest_checkpoint,
)

from _common import emit, emit_json
from bench_scale import service_scenario

N = 1_000_000
CYCLES = 6
SEED = 23
WORKERS = 2
SPLIT = 3  # checkpoint after this many cycles
KILL_AT_CALL = 2  # apply-call index the worker-kill fault fires at
#: ceiling on worker-kill recovery (journal replay + respawn); at 1M
#: the replay re-applies one cycle's segments inline (~vectorized cycle
#: cost) and the respawn is a fork + segment remap, so anything beyond
#: this is a stall, not a recovery
RECOVERY_CEILING_SECONDS = 60.0


def timed_run(scenario, cycles):
    """Wall-clock one engine run; returns (seconds, final matrix)."""
    with GossipEngine(scenario) as engine:
        start = time.perf_counter()
        engine.run(cycles)
        return time.perf_counter() - start, engine.matrix.copy()


def compute_checkpoint(series, n, cycles, split):
    """Checkpoint at ``split`` cycles, restore, finish; time each leg
    and compare bitwise against the uninterrupted run."""
    full_seconds, full_matrix = timed_run(
        service_scenario(n, "vectorized", cycles=cycles), cycles
    )
    series["vectorized_seconds"] = full_seconds
    with TemporaryDirectory() as tmp:
        with GossipEngine(
            service_scenario(n, "vectorized", cycles=cycles)
        ) as engine:
            engine.run(split)
            start = time.perf_counter()
            manifest = engine.checkpoint(tmp)
            series["checkpoint_write_seconds"] = (
                time.perf_counter() - start
            )
        series["checkpoint_payload_bytes"] = (
            manifest.with_suffix(".npz").stat().st_size
        )
        assert latest_checkpoint(tmp) == manifest
        start = time.perf_counter()
        resumed = GossipEngine.restore(
            service_scenario(n, "vectorized", cycles=cycles), manifest
        )
        series["checkpoint_restore_seconds"] = time.perf_counter() - start
        with resumed:
            start = time.perf_counter()
            resumed.run(cycles - split)
            series["resume_tail_seconds"] = time.perf_counter() - start
            series["resume_bitwise_equal"] = bool(
                np.array_equal(full_matrix, resumed.matrix)
            )
    return full_matrix


def compute_recovery(series, n, cycles, oracle_matrix):
    """Kill one worker mid-run under each healing policy; record the
    health report's recovery latency and the bitwise outcome."""
    for mode in ("respawn", "inline"):
        backend = ShardedBackend(WORKERS, on_failure=mode, max_respawns=2)
        backend.inject_faults(
            [FaultSpec("kill_worker", worker=1, at_call=KILL_AT_CALL)]
        )
        scenario = service_scenario(n, backend, cycles=cycles)
        seconds, matrix = timed_run(scenario, cycles)
        report = backend.health_report()
        series[f"{mode}_run_seconds"] = seconds
        series[f"{mode}_recovery_seconds"] = report.recovery_seconds
        series[f"{mode}_events"] = len(report.events)
        series[f"{mode}_respawns"] = report.respawns
        series[f"{mode}_degraded"] = report.degraded
        series[f"{mode}_bitwise_equal"] = bool(
            np.array_equal(oracle_matrix, matrix)
        )


def compute(n=N, cycles=CYCLES, split=SPLIT):
    series = {
        "n": n,
        "cycles": cycles,
        "split": split,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
    }
    oracle_matrix = compute_checkpoint(series, n, cycles, split)
    compute_recovery(series, n, cycles, oracle_matrix)
    return series


def render(series):
    table = Table(
        headers=["leg", "seconds", "bitwise equal"],
        title=(
            f"F: fault-tolerant execution, N={series['n']}, "
            f"{series['cycles']} cycles, checkpoint at cycle "
            f"{series['split']}, {series['workers']} workers, "
            f"{series['cpu_count']} cpu(s)"
        ),
    )
    table.add_row("vectorized (uninterrupted)",
                  series["vectorized_seconds"], True)
    table.add_row("checkpoint write",
                  series["checkpoint_write_seconds"], "-")
    table.add_row("checkpoint restore",
                  series["checkpoint_restore_seconds"], "-")
    table.add_row("resume tail", series["resume_tail_seconds"],
                  series["resume_bitwise_equal"])
    for mode in ("respawn", "inline"):
        table.add_row(
            f"worker kill ({mode})", series[f"{mode}_run_seconds"],
            series[f"{mode}_bitwise_equal"],
        )
    lines = [table.render(), ""]
    lines.append(
        f"checkpoint payload: "
        f"{series['checkpoint_payload_bytes'] / 1024**2:.1f} MiB"
    )
    lines.append(
        "worker-kill recovery latency: "
        + "; ".join(
            f"{mode} {series[f'{mode}_recovery_seconds'] * 1e3:.1f}ms "
            f"({series[f'{mode}_respawns']} respawn(s), "
            f"degraded={series[f'{mode}_degraded']})"
            for mode in ("respawn", "inline")
        )
    )
    return "\n".join(lines)


def check(series):
    for key in sorted(series):
        if key.endswith("bitwise_equal"):
            assert series[key], (
                f"{key} is False: recovery diverged from the oracle"
            )
    assert series["respawn_respawns"] == 1 and not series["respawn_degraded"]
    assert series["inline_degraded"]
    for mode in ("respawn", "inline"):
        latency = series[f"{mode}_recovery_seconds"]
        assert 0.0 < latency < RECOVERY_CEILING_SECONDS, (
            f"{mode} recovery took {latency:.1f}s "
            f"(ceiling {RECOVERY_CEILING_SECONDS:g}s)"
        )


def test_faults(benchmark, capsys):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("faults", render(series), capsys)
    emit_json("faults", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    parser.add_argument("--split", type=int, default=SPLIT,
                        help="checkpoint after this many cycles")
    args = parser.parse_args(argv)
    if not 0 < args.split < args.cycles:
        parser.error("--split must fall strictly inside --cycles")
    series = compute(args.n, args.cycles, args.split)
    emit("faults", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive
    emit_json("faults", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
