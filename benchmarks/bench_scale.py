"""Experiment S1 — the unified-kernel scale benchmark.

Times the two kernel execution backends on the *same* scenario — the
AggregationService workload: five concurrent aggregation instances
(mean, second moment, max, min, §4 counting) piggybacked on one
GETPAIR_SEQ exchange stream — at paper scale (N = 100 000 by default).
Both backends consume identical RNG draws and the vectorized backend
preserves per-node exchange order, so the runs produce bitwise-equal
value matrices; the benchmark asserts that equality alongside the
wall-clock comparison.

Acceptance target: the vectorized (structure-of-arrays) backend is
≥ 5× faster than the reference (sequential list loop) backend at
N = 100 000. A smoke configuration (``--n 10000``) runs in seconds for
CI; results land in ``benchmarks/out/BENCH_scale.json`` via
:func:`_common.emit_json` (paper-scale runs also refresh the
git-tracked ``BENCH_scale.json`` at the repo root).

Run directly (``python benchmarks/bench_scale.py [--n N]``) or through
pytest (``pytest benchmarks/bench_scale.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import Table
from repro.core import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    MultiAggregateSpec,
    moment_values,
)
from repro.kernel import GossipEngine
from repro.rng import make_rng
from repro.topology import CompleteTopology

from _common import emit, emit_json

# the acceptance claim is at paper scale, and a full two-backend run
# finishes in seconds, so 100k is the default regardless of
# REPRO_PAPER_SCALE; CI's smoke job passes --n 10000 explicitly
N = 100_000
CYCLES = 10
SEED = 17
SPEEDUP_FLOOR = 5.0  # acceptance target at N = 100 000


def service_scenario(n, backend, *, seed=SEED, cycles=CYCLES, topology=None):
    """The AggregationService workload as a kernel scenario: all five
    standard instances in one pass. ``topology`` defaults to the
    complete graph; ``bench_sparse.py`` reuses the same workload over
    the sparse overlay families."""
    values = make_rng(seed).normal(10.0, 4.0, n)
    indicator = np.zeros(n)
    indicator[int(make_rng(seed + 1).integers(0, n))] = 1.0
    spec = MultiAggregateSpec.build(
        {
            "mean": MeanAggregate(),
            "second_moment": MeanAggregate(),
            "maximum": MaxAggregate(),
            "minimum": MinAggregate(),
            "count": MeanAggregate(),
        },
        initial={
            "second_moment": moment_values(values, 2),
            "count": indicator,
        },
    )
    if topology is None:
        topology = CompleteTopology(n)
    return spec.scenario(
        topology, values, seed=seed, cycles=cycles, backend=backend
    )


def timed_run(n, backend, *, cycles=CYCLES):
    """Wall-clock one backend over the scenario; returns (seconds,
    final value matrix, final mean-instance variance)."""
    engine = GossipEngine(service_scenario(n, backend, cycles=cycles))
    start = time.perf_counter()
    result = engine.run(cycles, record="end")
    elapsed = time.perf_counter() - start
    return elapsed, engine.matrix, float(result.variance_array("mean")[-1])


def compute_scale(n=N, cycles=CYCLES):
    ref_seconds, ref_matrix, ref_variance = timed_run(n, "reference", cycles=cycles)
    vec_seconds, vec_matrix, vec_variance = timed_run(n, "vectorized", cycles=cycles)
    return {
        "n": n,
        "cycles": cycles,
        "aggregates": 5,
        "reference_seconds": ref_seconds,
        "vectorized_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "bitwise_equal": bool(np.array_equal(ref_matrix, vec_matrix)),
        "reference_final_variance": ref_variance,
        "vectorized_final_variance": vec_variance,
    }


def render(series):
    table = Table(
        headers=["backend", "seconds", "final σ² (mean)"],
        title=(
            f"S1: kernel backend wall-clock, N={series['n']}, "
            f"{series['cycles']} cycles, {series['aggregates']} concurrent "
            f"aggregates (speedup {series['speedup']:.1f}x, bitwise equal: "
            f"{series['bitwise_equal']})"
        ),
    )
    table.add_row("reference", series["reference_seconds"],
                  series["reference_final_variance"])
    table.add_row("vectorized", series["vectorized_seconds"],
                  series["vectorized_final_variance"])
    return table.render()


def check(series):
    assert series["bitwise_equal"], (
        "vectorized backend diverged from the reference backend"
    )
    # the 5x acceptance floor applies at paper scale; the CI smoke size
    # gets a looser bound, and sub-5k runs only check correctness
    # (timings are sub-millisecond there and pure noise)
    if series["n"] >= 100_000:
        floor = SPEEDUP_FLOOR
    elif series["n"] >= 5_000:
        floor = 1.5
    else:
        return
    assert series["speedup"] >= floor, (
        f"speedup {series['speedup']:.2f}x below the {floor}x floor "
        f"at N={series['n']}"
    )


def test_scale(benchmark, capsys):
    series = benchmark.pedantic(compute_scale, rounds=1, iterations=1)
    emit("scale", render(series), capsys)
    emit_json("scale", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    args = parser.parse_args(argv)
    series = compute_scale(args.n, args.cycles)
    emit("scale", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive;
    # smoke sizes stay in benchmarks/out/
    emit_json("scale", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
