"""Experiment A3 — getWaitingTime ablation (design choice 3, DESIGN.md).

The event-driven deployment of Figure 1 with:

* ConstantWaiting(∆t): every node initiates exactly once per cycle —
  the GETPAIR_SEQ discipline, predicted rate 1/(2√e);
* ExponentialWaiting(∆t): initiations form a Poisson process — the
  GETPAIR_RAND discipline (§3.3.2), predicted rate 1/e.

Expected shape: the two waiting strategies land on their respective §3
rates, demonstrating that the synchronous AVG abstraction predicts the
asynchronous protocol's behavior.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.avg import RATE_RAND, RATE_SEQ
from repro.core import ConstantWaiting, ExponentialWaiting, GossipNetwork
from repro.rng import spawn_streams
from repro.topology import CompleteTopology

from _common import emit, paper_scale

N = 2000 if paper_scale() else 800
RUNS = 8 if paper_scale() else 4
CYCLES = 10


def measured_rate(waiting_factory, seed):
    rates = []
    for rng in spawn_streams(seed, RUNS):
        values = rng.normal(0.0, 1.0, N)
        net = GossipNetwork(
            CompleteTopology(N), values, waiting=waiting_factory(1.0), seed=rng
        )
        ratios = []
        previous = net.variance()
        for _ in range(CYCLES):
            net.run_cycles(1)
            current = net.variance()
            ratios.append(current / previous)
            previous = current
        rates.append(float(np.exp(np.mean(np.log(ratios)))))
    return float(np.mean(rates))


def compute_ablation():
    return [
        ("constant dt (seq discipline)",
         measured_rate(ConstantWaiting, seed=600), RATE_SEQ),
        ("exponential dt (rand discipline)",
         measured_rate(ExponentialWaiting, seed=601), RATE_RAND),
    ]


def render(rows):
    table = Table(
        headers=["getWaitingTime", "empirical rate", "predicted"],
        title=f"A3: waiting-time randomization, event-driven protocol, N={N}",
    )
    for row in rows:
        table.add_row(*row)
    return table.render()


def test_ablation_timing(benchmark, capsys):
    rows = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    emit("ablation_timing", render(rows), capsys)
    for name, empirical, predicted in rows:
        assert abs(empirical - predicted) / predicted < 0.12, name
    # constant waiting beats exponential, as §3.3.3 predicts
    assert rows[0][1] < rows[1][1]
