"""Experiment A1 — topology ablation (design choice 2, DESIGN.md).

The paper assumes a fully connected or sufficiently random overlay and
names "more realistic topologies" as future work (§5). This ablation
measures the empirical per-cycle reduction rate of the practical
protocol (GETPAIR_SEQ) across overlay families and view sizes:

* random k-regular for k in {2, 5, 10, 20, 50} — how small can the view
  be before convergence degrades?
* Watts–Strogatz at several rewiring probabilities — how much
  randomness does the protocol need?
* ring lattice, Barabási–Albert, star, complete — structured extremes.

Expected shape: k >= 5 random overlays and the complete graph are all
within a few percent of 1/(2√e); the ring is drastically slower
(diffusive mixing); WS interpolates with β; BA and star lie between.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table, replicate
from repro.avg import GetPairSeq, RATE_SEQ, ValueVector, run_avg
from repro.topology import (
    BarabasiAlbertTopology,
    CompleteTopology,
    RandomRegularTopology,
    RingTopology,
    StarTopology,
    WattsStrogatzTopology,
)

from _common import emit, paper_scale

N = 2000 if paper_scale() else 1000
CYCLES = 15
RUNS = 10 if paper_scale() else 4


def measured_rate(topology, seed):
    def one_run(rng):
        vector = ValueVector.gaussian(topology.n, seed=rng)
        result = run_avg(vector, GetPairSeq(topology), CYCLES, seed=rng)
        return result.geometric_mean_reduction()

    return float(np.mean(replicate(one_run, runs=RUNS, seed=seed).outputs))


def build_topologies():
    topologies = [("complete", CompleteTopology(N))]
    for k in (2, 5, 10, 20, 50):
        topologies.append(
            (f"{k}-regular random", RandomRegularTopology(N, k, seed=k))
        )
    for beta in (0.0, 0.1, 0.5, 1.0):
        topologies.append(
            (f"watts-strogatz k=10 beta={beta}",
             WattsStrogatzTopology(N, 10, beta, seed=17))
        )
    topologies.append(("ring k=2", RingTopology(N, 2)))
    topologies.append(("barabasi-albert m=5",
                       BarabasiAlbertTopology(N, 5, seed=23)))
    topologies.append(("star", StarTopology(N)))
    return topologies


def compute_ablation():
    rows = []
    for index, (name, topology) in enumerate(build_topologies()):
        rows.append((name, measured_rate(topology, seed=1000 + index)))
    return rows


def render(rows):
    table = Table(
        headers=["topology", "per-cycle rate (seq)", "vs theory 0.303"],
        title=f"A1: topology ablation, N={N}, GETPAIR_SEQ",
    )
    for name, rate in rows:
        table.add_row(name, rate, rate / RATE_SEQ)
    return table.render()


def test_ablation_topology(benchmark, capsys):
    rows = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    emit("ablation_topology", render(rows), capsys)
    rates = dict(rows)
    # the paper's regime: random overlays with a handful of neighbors
    # already match the complete graph
    for name in ("20-regular random", "50-regular random", "complete"):
        assert abs(rates[name] - RATE_SEQ) / RATE_SEQ < 0.1, name
    # structured topologies mix worse
    assert rates["ring k=2"] > rates["20-regular random"] * 1.5
    assert rates["star"] > rates["complete"]
    # Watts-Strogatz improves monotonically-ish with rewiring
    assert rates["watts-strogatz k=10 beta=1.0"] < rates[
        "watts-strogatz k=10 beta=0.0"
    ]
