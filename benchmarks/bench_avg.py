"""Experiment A1 — kernel-hosted AVG pair selectors at paper scale.

Times algorithm AVG (Figure 2 / Figure 3's measurement loop) for the
GETPAIR_PM, GETPAIR_RAND and GETPAIR_SEQ selectors at N = 100 000 on
both kernel backends. Before the pair-mode kernel refactor only SEQ ran
on the kernel; PM/RAND/PMRAND lived in a private pure-Python loop, so
Figure 3 could not be regenerated at the same scale as Figure 4. Now
every selector's pair sequence is engine-materialized and the
vectorized backend applies each cycle's N elementary midpoint steps as
order-preserving conflict-free batches (PM's matching halves skip the
segmentation scan entirely; RAND/SEQ go through the chunked greedy
segmentation).

Each selector runs the same seeded protocol workload on *both*
backends (end-state recording, φ tracking off — the timing measures
protocol execution, not instrumentation). The benchmark asserts the
final states agree bitwise, checks the empirical rate — the telescoped
per-cycle geometric mean (σ²_T/σ²₀)^(1/T) — against §3.3 theory (PM
1/4, RAND 1/e, SEQ 1/(2√e)), and archives per-selector timings plus
the aggregate vectorized-over-reference speedup. Acceptance target at
N = 100 000: speedup ≥ 5×. Results land in
``benchmarks/out/BENCH_avg.json`` (paper-scale runs also refresh the
git-tracked copy at the repo root). A smoke configuration
(``--n 20000``) runs in seconds for CI.

Run directly (``python benchmarks/bench_avg.py [--n N]``) or through
pytest (``pytest benchmarks/bench_avg.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import Table
from repro.avg import RATE_PM, RATE_RAND, RATE_SEQ
from repro.kernel import GossipEngine, PairProtocolSpec, Scenario
from repro.topology import CompleteTopology

from _common import emit, emit_json

N = 100_000
CYCLES = 15
SEED = 3304
SPEEDUP_FLOOR = 5.0  # acceptance target at N = 100 000

SELECTORS = {"pm": RATE_PM, "rand": RATE_RAND, "seq": RATE_SEQ}


def one_selector(name, n, cycles):
    """Run one selector's seeded workload on both backends; time each
    and compare the final states bitwise."""
    topology = CompleteTopology(n)
    values = np.random.default_rng(SEED).normal(0.0, 1.0, n)
    timings, rates, finals = {}, {}, {}
    for backend in ("reference", "vectorized"):
        scenario = Scenario(
            topology,
            values,
            pair_protocol=PairProtocolSpec(selector=name, track_phi=False),
            seed=SEED,
            backend=backend,
        )
        engine = GossipEngine(scenario)
        start = time.perf_counter()
        result = engine.run(cycles, record="end")
        timings[backend] = time.perf_counter() - start
        trajectory = result.variance_array("avg")
        # telescoped geometric mean of the per-cycle ratios
        rates[backend] = float(
            (trajectory[-1] / trajectory[0]) ** (1.0 / cycles)
        )
        finals[backend] = engine.alive_column("avg")
    return {
        "rate": rates["vectorized"],
        "theory": SELECTORS[name],
        "reference_seconds": timings["reference"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": timings["reference"] / timings["vectorized"],
        "bitwise_equal": bool(
            np.array_equal(finals["reference"], finals["vectorized"])
            and rates["reference"] == rates["vectorized"]
        ),
    }


def compute_avg(n=N, cycles=CYCLES):
    series = {"n": n, "cycles": cycles}
    reference_total = vectorized_total = 0.0
    for name in SELECTORS:
        row = one_selector(name, n, cycles)
        reference_total += row["reference_seconds"]
        vectorized_total += row["vectorized_seconds"]
        for key, value in row.items():
            series[f"{name}_{key}"] = value
    series["reference_seconds"] = reference_total
    series["seconds"] = vectorized_total
    series["speedup"] = reference_total / vectorized_total
    series["bitwise_equal_backends"] = all(
        series[f"{name}_bitwise_equal"] for name in SELECTORS
    )
    return series


def render(series):
    table = Table(
        headers=["getPair", "rate", "theory", "ref s", "vec s", "speedup"],
        title=(
            f"A1: kernel-hosted AVG selectors — Figure 3 workload at "
            f"N={series['n']}, {series['cycles']} cycles"
        ),
    )
    for name in SELECTORS:
        table.add_row(
            name,
            series[f"{name}_rate"],
            series[f"{name}_theory"],
            series[f"{name}_reference_seconds"],
            series[f"{name}_vectorized_seconds"],
            series[f"{name}_speedup"],
        )
    table.add_row(
        "total", "", "", series["reference_seconds"], series["seconds"],
        series["speedup"],
    )
    return table.render()


def check(series):
    assert series["bitwise_equal_backends"], (
        "reference and vectorized backends diverged in pair mode"
    )
    for name in SELECTORS:
        rate, theory = series[f"{name}_rate"], series[f"{name}_theory"]
        assert abs(rate - theory) / theory < 0.1, (
            f"{name} empirical rate {rate:.4f} is off the §3.3 theory "
            f"value {theory:.4f}"
        )
    # the speedup floor is a paper-scale claim; smoke sizes only check
    # correctness (sub-second vectorized runs are too noisy to gate)
    if series["n"] >= N:
        assert series["speedup"] >= SPEEDUP_FLOOR, (
            f"vectorized speedup {series['speedup']:.1f}x at "
            f"N={series['n']} is below the {SPEEDUP_FLOOR}x acceptance "
            f"floor"
        )


def test_avg(benchmark, capsys):
    series = benchmark.pedantic(compute_avg, rounds=1, iterations=1)
    emit("avg", render(series), capsys)
    emit_json("avg", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    args = parser.parse_args(argv)
    series = compute_avg(args.n, args.cycles)
    emit("avg", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive;
    # smoke sizes stay in benchmarks/out/
    emit_json("avg", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
