"""Experiment A2 — failure ablation (message loss and crashes, §1.4).

Measures, on the cycle-driven simulator:

* per-cycle reduction rate as a function of symmetric message-loss
  probability p (an exchange fails entirely with probability p), and
* the converged-mean bias introduced by crashing a fraction of nodes
  mid-run (mass departs with the crashed nodes),

plus, on the event-driven simulator, the mean drift caused by
*asymmetric* loss (push delivered, reply lost), which the synchronous
model cannot express.

Expected shape: the rate degrades smoothly toward 1 as p → 1 following
the Bernoulli-thinned Theorem 1 prediction
``rate(p) = (p + (1−p)/2)·exp(−(1−p)/2)`` (see
:func:`repro.avg.theory.rate_seq_with_loss`); crash bias grows with the
crashed fraction; asymmetric drift grows with p.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table, replicate_scenario
from repro.avg import RATE_SEQ, fit_geometric_rate, rate_seq_with_loss
from repro.core import GossipNetwork
from repro.failures import CrashPlan
from repro.kernel import Scenario, run_scenario
from repro.rng import make_rng, spawn_streams
from repro.simulator import BernoulliLoss
from repro.topology import CompleteTopology

from _common import emit, paper_scale

N = 4000 if paper_scale() else 1000
RUNS = 10 if paper_scale() else 4
LOSS_LEVELS = (0.0, 0.05, 0.1, 0.2, 0.4)
CRASH_FRACTIONS = (0.0, 0.1, 0.3, 0.5)


def loss_rate_row(loss, seed):
    scenario = Scenario(
        CompleteTopology(N),
        make_rng(seed).normal(0.0, 1.0, N),
        loss_probability=loss,
        cycles=12,
        seed=seed,
    )
    replicated = replicate_scenario(scenario, runs=RUNS)
    return float(np.mean(
        [fit_geometric_rate(run.variance_array()) for run in replicated.outputs]
    ))


def crash_bias_row(fraction, seed):
    """|converged estimate − original true mean| when a fraction of
    nodes crashes after one mixing cycle (their unmixed mass is lost)."""
    biases = []
    for rng in spawn_streams(seed, RUNS):
        values = rng.normal(10.0, 4.0, N)
        true_mean = float(values.mean())
        victims = rng.choice(N, size=int(N * fraction), replace=False)
        plan = CrashPlan()
        if len(victims):
            plan.add(1, victims.tolist())  # one mixing cycle, then crash
        scenario = Scenario(
            CompleteTopology(N), values, crash_plan=plan,
            cycles=21, seed=rng,
        )
        result = run_scenario(scenario)
        biases.append(abs(result.mean_array()[-1] - true_mean))
    return float(np.mean(biases))


def asymmetric_drift_row(loss, seed):
    drifts = []
    for rng in spawn_streams(seed, RUNS):
        values = rng.normal(10.0, 4.0, 400)
        net = GossipNetwork(
            CompleteTopology(400), values, loss=BernoulliLoss(loss), seed=rng
        )
        net.run_cycles(15)
        drifts.append(abs(net.approximations().mean() - net.true_mean()))
    return float(np.mean(drifts))


def compute_ablation():
    loss_rows = [
        (p, loss_rate_row(p, seed=300 + i)) for i, p in enumerate(LOSS_LEVELS)
    ]
    crash_rows = [
        (f, crash_bias_row(f, seed=400 + i))
        for i, f in enumerate(CRASH_FRACTIONS)
    ]
    drift_rows = [
        (p, asymmetric_drift_row(p, seed=500 + i))
        for i, p in enumerate((0.05, 0.2, 0.4))
    ]
    return loss_rows, crash_rows, drift_rows


def render(loss_rows, crash_rows, drift_rows):
    loss_table = Table(
        headers=["loss prob", "per-cycle rate", "thinned-phi prediction"],
        title=f"A2.1: symmetric message loss vs convergence rate, N={N}",
    )
    for p, rate in loss_rows:
        loss_table.add_row(p, rate, rate_seq_with_loss(p))
    crash_table = Table(
        headers=["crashed fraction", "mean |bias| vs original true mean"],
        title="A2.2: crash-induced estimate bias (crash after 1 cycle)",
    )
    for fraction, bias in crash_rows:
        crash_table.add_row(fraction, bias)
    drift_table = Table(
        headers=["loss prob", "mean drift of network average"],
        title="A2.3: asymmetric loss (event-driven): mass-conservation drift",
    )
    for p, drift in drift_rows:
        drift_table.add_row(p, drift)
    return "\n\n".join(
        (loss_table.render(), crash_table.render(), drift_table.render())
    )


def test_ablation_failures(benchmark, capsys):
    loss_rows, crash_rows, drift_rows = benchmark.pedantic(
        compute_ablation, rounds=1, iterations=1
    )
    emit("ablation_failures", render(loss_rows, crash_rows, drift_rows), capsys)
    # loss degrades the rate monotonically and roughly as p + (1-p)*rate
    rates = [rate for _, rate in loss_rows]
    assert all(b > a - 0.01 for a, b in zip(rates, rates[1:]))
    for p, rate in loss_rows:
        predicted = rate_seq_with_loss(p)
        assert abs(rate - predicted) < 0.03
    # crash bias grows with the crashed fraction
    biases = [bias for _, bias in crash_rows]
    assert biases[0] < 1e-9
    assert biases[-1] > biases[1]
    # asymmetric drift is nonzero and grows with loss
    drifts = [drift for _, drift in drift_rows]
    assert drifts[-1] > 0
    assert drifts[-1] >= drifts[0] * 0.5
