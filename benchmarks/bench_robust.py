"""Experiment A6 — robustness mechanisms of the companion TR [11].

§4 points to UBLCS-2003-16 for fault-tolerance mechanisms; the central
one is running t concurrent averaging instances and reporting the
per-node MEDIAN. This bench quantifies the gain: mean estimate error
after an early 25 % crash, as a function of t.

Expected shape: error decreases (roughly with 1/√t noise-averaging,
flattening at the common-bias floor) as t grows; t = 1 is the plain
protocol.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.core import RobustAverager
from repro.rng import spawn_streams
from repro.topology import CompleteTopology

from _common import emit, paper_scale

N = 2000 if paper_scale() else 800
RUNS = 10 if paper_scale() else 5
INSTANCE_COUNTS = (1, 3, 7, 15)
CRASH_FRACTION = 0.25


def crash_error(instances, seed):
    errors = []
    for rng in spawn_streams(seed, RUNS):
        values = rng.normal(10.0, 4.0, N)
        averager = RobustAverager(
            CompleteTopology(N), values, instances=instances, seed=rng
        )
        averager.run(2)
        victims = rng.choice(N, size=int(N * CRASH_FRACTION), replace=False)
        averager.crash(victims.tolist())
        result = averager.run(25)
        errors.append(result.median_error)
    return float(np.mean(errors))


def compute_robust():
    return [
        (t, crash_error(t, seed=900 + index))
        for index, t in enumerate(INSTANCE_COUNTS)
    ]


def render(rows):
    table = Table(
        headers=["instances t", "mean |error| after 25% crash"],
        title=(
            f"A6: median-of-t-instances robustness (TR [11] mechanism), "
            f"N={N}, crash at cycle 2"
        ),
    )
    for row in rows:
        table.add_row(*row)
    return table.render()


def test_robust_instances(benchmark, capsys):
    rows = benchmark.pedantic(compute_robust, rounds=1, iterations=1)
    emit("robust_instances", render(rows), capsys)
    errors = dict(rows)
    # more instances never hurt, and t=15 beats the plain protocol
    assert errors[15] <= errors[1]
    assert errors[7] <= errors[1] * 1.1
