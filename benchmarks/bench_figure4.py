"""Experiment F4 — Figure 4: network size estimation by anti-entropy
counting under churn.

The network size oscillates between mid−amp and mid+amp (paper: 90 000
to 110 000) with an extra `fluctuation` nodes joining AND leaving every
cycle (paper: 100 + 100). A new epoch starts every 30 cycles; converged
estimates are reported at each epoch end together with the min/max
range across reporting nodes.

Paper shape: the estimate curve tracks the actual size curve translated
by one epoch (estimates describe the state at each epoch's start), with
tight error bars.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.failures import OscillatingChurn

from _common import emit, scale


def compute_figure4():
    cfg = scale()
    config = SizeEstimationConfig(
        cycles=cfg.figure4_cycles,
        cycles_per_epoch=cfg.figure4_epoch,
        initial_size=cfg.figure4_mid,
        expected_leaders=1.0,
        seed=2004,
    )
    churn = OscillatingChurn(
        cfg.figure4_mid,
        cfg.figure4_amplitude,
        period=cfg.figure4_cycles // 2,  # two day/night swings per run
        fluctuation=cfg.figure4_fluctuation,
    )
    experiment = SizeEstimationExperiment(config, churn=churn)
    experiment.run()
    return experiment


def render(experiment):
    cfg = scale()
    table = Table(
        headers=[
            "end cycle",
            "actual size @ epoch start",
            "size estimate",
            "est. min",
            "est. max",
            "rel. error",
        ],
        title=(
            "Figure 4: network size estimation by anti-entropy counting "
            f"(size oscillates {cfg.figure4_mid - cfg.figure4_amplitude}"
            f"-{cfg.figure4_mid + cfg.figure4_amplitude}, "
            f"fluctuation {cfg.figure4_fluctuation}+{cfg.figure4_fluctuation} "
            "nodes/cycle, epoch = 30 cycles)"
        ),
    )
    for report in experiment.reports:
        table.add_row(
            report.end_cycle,
            report.size_at_start,
            report.estimate_mean,
            report.estimate_min,
            report.estimate_max,
            report.relative_error,
        )
    return table.render()


def test_figure4(benchmark, capsys):
    experiment = benchmark.pedantic(compute_figure4, rounds=1, iterations=1)
    emit("figure4", render(experiment), capsys)
    reports = experiment.reports
    cfg = scale()
    assert len(reports) == cfg.figure4_cycles // cfg.figure4_epoch
    # estimates track the epoch-start size
    errors = [report.relative_error for report in reports]
    assert np.mean(errors) < 0.1
    # the estimate series actually sees the oscillation swing
    estimates = np.array([report.estimate_mean for report in reports])
    assert estimates.max() > cfg.figure4_mid * 1.03
    assert estimates.min() < cfg.figure4_mid * 0.97
    # estimates correlate with the size at epoch start (lag structure)
    starts = np.array([report.size_at_start for report in reports])
    assert np.corrcoef(estimates, starts)[0, 1] > 0.9
