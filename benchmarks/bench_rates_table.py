"""Experiment T1 — the paper's in-text convergence-rate comparison.

§3.3 derives per-cycle variance reduction rates for all GETPAIR
variants: PM = 1/4 (eq. 8), RAND = 1/e (eq. 10) and SEQ ≈ PMRAND =
1/(2√e) (eq. 12). This bench measures each empirically and prints the
implied table (empirical vs closed form).

Paper shape: PM < PMRAND ≈ SEQ < RAND, each within a few percent of the
prediction; SEQ comes out "slightly better than predicted" because the
derivation substitutes PMRAND for SEQ (§3.3.3).
"""

from __future__ import annotations

from repro.analysis import Table, geometric_mean, replicate
from repro.avg import (
    GetPairPerfectMatching,
    GetPairPMRand,
    GetPairRand,
    GetPairSeq,
    ValueVector,
    convergence_rate,
    run_avg,
)
from repro.topology import CompleteTopology

from _common import emit, scale

SELECTORS = (
    ("pm", GetPairPerfectMatching),
    ("rand", GetPairRand),
    ("seq", GetPairSeq),
    ("pmrand", GetPairPMRand),
)


def measure_all_rates():
    cfg = scale()
    topology = CompleteTopology(cfg.rates_n)
    rows = []
    for name, factory in SELECTORS:
        def one_run(rng, factory=factory):
            vector = ValueVector.gaussian(topology.n, seed=rng)
            result = run_avg(
                vector, factory(topology), cfg.rates_cycles, seed=rng
            )
            return result.geometric_mean_reduction()

        empirical = geometric_mean(
            replicate(one_run, runs=cfg.rates_runs, seed=hash(name) % 2**31)
            .outputs
        )
        rows.append((name, empirical, convergence_rate(name)))
    return rows


def render(rows):
    cfg = scale()
    table = Table(
        headers=["getPair", "empirical rate", "theoretical rate", "ratio"],
        title=(
            "Table T1 (implied, Section 3.3): per-cycle variance reduction "
            f"rates, N={cfg.rates_n}, complete topology"
        ),
    )
    for name, empirical, theoretical in rows:
        table.add_row(name, empirical, theoretical, empirical / theoretical)
    return table.render()


def test_rates_table(benchmark, capsys):
    rows = benchmark.pedantic(measure_all_rates, rounds=1, iterations=1)
    emit("rates_table", render(rows), capsys)
    by_name = {name: empirical for name, empirical, _ in rows}
    for name, empirical, theoretical in rows:
        assert abs(empirical - theoretical) / theoretical < 0.06, name
    # the §3.3.3 ordering: optimal < practical < random
    assert by_name["pm"] < by_name["seq"] < by_name["rand"]
    assert by_name["pm"] < by_name["pmrand"] < by_name["rand"]
