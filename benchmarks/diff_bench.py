"""Diff two benchmark JSON archives and fail on timing regressions.

The CI workflow archives each run's ``BENCH_*.json`` (the
machine-readable outputs of :mod:`bench_scale`, :mod:`bench_churn`, …)
and restores the previous run's copy from the actions cache. This
script compares the two:

* every key ending in ``_seconds`` (plus a bare ``seconds`` key) is a
  wall-clock measurement; the run regresses if
  ``current > baseline * (1 + tolerance)`` (default tolerance 25 %);
* measurements whose baseline is below ``--min-seconds`` are reported
  but never gated — sub-100 ms smoke timings vary far more than any
  honest tolerance between CI runners;
* non-timing scalar keys (``n``, ``cycles``, ``speedup`` …) are
  reported informationally;
* runs are only comparable when their workload parameters match —
  mismatched ``n``/``cycles`` (e.g. a smoke run against a paper-scale
  archive) skip the diff with exit code 0, as does a missing baseline
  (the first run ever, or an expired cache).

Exit codes: 0 = ok/skip, 1 = regression beyond tolerance, 2 = bad
invocation.

Usage::

    python benchmarks/diff_bench.py --baseline prev/BENCH_scale.json \
        --current BENCH_scale.json [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: keys that must match for two runs to be comparable — cpu_count
#: guards the sharded sweep, whose timings shift with the runner's
#: core count even on identical code
PARAM_KEYS = ("n", "cycles", "aggregates", "cycles_per_epoch", "backend",
              "worker_sweep", "cpu_count")


def is_timing_key(key: str) -> bool:
    """Whether a JSON key holds a wall-clock measurement."""
    return key == "seconds" or key.endswith("_seconds")


def load(path: Path):
    with path.open() as handle:
        return json.load(handle)


def diff(baseline: dict, current: dict, tolerance: float,
         min_seconds: float = 0.0):
    """Compare two benchmark payloads.

    Returns ``(comparable, regressions, lines)``: whether the workloads
    matched, the list of regressed keys, and human-readable report
    lines. Timing keys with a baseline under ``min_seconds`` are
    reported but never counted as regressions (too noisy to gate on).
    """
    lines = []
    for key in PARAM_KEYS:
        if key in baseline or key in current:
            if baseline.get(key) != current.get(key):
                lines.append(
                    f"workload parameter {key!r} differs "
                    f"(baseline {baseline.get(key)!r}, "
                    f"current {current.get(key)!r}); runs not comparable"
                )
                return False, [], lines
    regressions = []
    for key in sorted(current):
        if not is_timing_key(key):
            continue
        if key not in baseline:
            lines.append(f"{key}: {current[key]:.4f}s (no baseline)")
            continue
        base, cur = float(baseline[key]), float(current[key])
        if base <= 0.0:
            continue
        ratio = cur / base
        verdict = "ok"
        if base < min_seconds:
            verdict = f"ignored (baseline < {min_seconds}s, too noisy)"
        elif ratio > 1.0 + tolerance:
            verdict = f"REGRESSION (> {tolerance:.0%} slower)"
            regressions.append(key)
        elif ratio < 1.0 - tolerance:
            verdict = "improved"
        lines.append(
            f"{key}: {base:.4f}s -> {cur:.4f}s ({ratio:.2f}x) {verdict}"
        )
    return True, regressions, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="previous run's BENCH_*.json")
    parser.add_argument("--current", type=Path, required=True,
                        help="this run's BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.0,
                        help="ignore timings whose baseline is below "
                             "this (noise floor for smoke runs)")
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        print("tolerance must be positive", file=sys.stderr)
        return 2
    if not args.current.exists():
        print(f"current archive {args.current} missing", file=sys.stderr)
        return 2
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; first run, nothing to diff")
        return 0
    comparable, regressions, lines = diff(
        load(args.baseline), load(args.current), args.tolerance,
        args.min_seconds,
    )
    for line in lines:
        print(line)
    if not comparable:
        return 0
    if regressions:
        print(f"{len(regressions)} timing regression(s): "
              f"{', '.join(regressions)}", file=sys.stderr)
        return 1
    print("no timing regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
