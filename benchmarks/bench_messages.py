"""Experiment M1 — message-fault degradation and retry recovery.

Runs the declarative message-fault sweep
(:class:`repro.analysis.MessageFaultSweep`): convergence factor and
attributed mass drift of the AVG workload vs request/reply loss rate ×
retry policy, N = 100 000 by default. The headline claim: reply loss
executes the *partial* exchange (the partner adopts the combined value
while the initiator keeps its old one), so mass leaks in proportion to
the loss rate — and the retransmission protocol (:class:`RetrySpec`)
recovers at least 5× of that drift at 10 % reply loss, because each
repair applies the cached reply as an exact delta.

The benchmark also replays every fault shape — request loss, reply
loss, duplication, and all three retry policies under combined loss —
on all three backends (reference, vectorized, sharded at worker counts
1, 2 and 4) at N = 4 000 and asserts the trajectories agree bitwise:
the backend-equivalence contract holds under any
:class:`MessageFaultSpec` because every fault effect is engine-side.
One combo additionally runs under Newscast membership, covering the
retry-redraw × partner-provider interaction. A fault-free run under
strict invariant monitors certifies exactly zero attributed drift.

Results land in ``benchmarks/out/BENCH_messages.json`` (acceptance
scale runs also refresh the git-tracked copy at the repo root) plus
the degradation figure ``benchmarks/out/FIG_messages.svg``. With
``REPRO_PAPER_SCALE=1`` a million-node spot check (none vs retransmit
at 10 % reply loss, sharded backend) rides along.

Run directly (``python benchmarks/bench_messages.py [--n N]``) or
through pytest (``pytest benchmarks/bench_messages.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (
    MessageFaultSweep,
    Table,
    render_message_fault_svg,
    retry_for_policy,
    run_message_fault_sweep,
)
from repro.kernel import (
    GossipEngine,
    MassConservationMonitor,
    MessageFaultSpec,
    RetrySpec,
    Scenario,
)
from repro.rng import make_rng
from repro.topology import CompleteTopology

from _common import OUT_DIR, emit, emit_json, paper_scale

N = 100_000
SEED = 2004
HEADLINE_LOSS = 0.1
MIN_RETRY_IMPROVEMENT = 5.0  # acceptance: retransmit cuts drift >= 5x
SPOT_N = 1_000_000
SPOT_CYCLES = 30
EQUIVALENCE_N = 4_000
EQUIVALENCE_CYCLES = 8
EQUIVALENCE_WORKERS = (1, 2, 4)

#: every fault shape the engine distinguishes, each exercised once;
#: the Newscast entry covers the provider-integration path (retry
#: redraw consults the partner provider for the substitute target)
FAULT_COMBOS = {
    "request_loss": dict(
        message_faults=MessageFaultSpec(request_loss=0.2),
    ),
    "reply_loss": dict(
        message_faults=MessageFaultSpec(reply_loss=0.2),
    ),
    "duplication": dict(
        message_faults=MessageFaultSpec(reply_loss=0.1, duplication=0.15),
    ),
    "retry_retransmit": dict(
        message_faults=MessageFaultSpec(request_loss=0.1, reply_loss=0.1),
        retry=RetrySpec(),
    ),
    "retry_redraw": dict(
        message_faults=MessageFaultSpec(request_loss=0.1, reply_loss=0.1),
        retry=RetrySpec(mode="redraw"),
    ),
    "retry_push_only": dict(
        message_faults=MessageFaultSpec(request_loss=0.1, reply_loss=0.1),
        retry=RetrySpec(budget=2, fallback="push_only"),
    ),
    "retry_newscast": dict(
        message_faults=MessageFaultSpec(reply_loss=0.15),
        retry=RetrySpec(mode="redraw"),
        membership="newscast",
    ),
}


def _equivalence_scenario(combo, n, backend):
    values = make_rng(SEED).normal(10.0, 4.0, n)
    return Scenario(
        CompleteTopology(n),
        values,
        seed=SEED,
        backend=backend,
        **FAULT_COMBOS[combo],
    )


def equivalence_check(n=EQUIVALENCE_N, cycles=EQUIVALENCE_CYCLES):
    """Replay every fault combo on reference, vectorized and sharded
    (workers 1/2/4); bitwise-compare matrices, exchange counts and the
    reported view."""
    backends = ["reference", "vectorized"] + [
        f"sharded:{workers}" for workers in EQUIVALENCE_WORKERS
    ]
    outcome = {}
    for combo in FAULT_COMBOS:
        snapshots = {}
        for backend in backends:
            engine = GossipEngine(_equivalence_scenario(combo, n, backend))
            try:
                result = engine.run(cycles)
                snapshots[backend] = (
                    engine.matrix,
                    result.exchange_counts,
                    engine.reported_column(),
                )
            finally:
                engine.close()
        reference = snapshots["reference"]
        outcome[combo] = all(
            np.array_equal(snapshots[backend][0], reference[0])
            and snapshots[backend][1] == reference[1]
            and np.array_equal(snapshots[backend][2], reference[2])
            for backend in backends[1:]
        )
    return outcome


def zero_drift_check(n=EQUIVALENCE_N, cycles=20):
    """A fault-free run under strict monitors: the §3 conservation
    claim certified per cycle, with exactly 0.0 attributed drift."""
    values = make_rng(SEED).normal(10.0, 4.0, n)
    engine = GossipEngine(Scenario(CompleteTopology(n), values, seed=SEED))
    monitor = engine.register_monitor(MassConservationMonitor(), strict=True)
    try:
        engine.run(cycles)
        report = engine.invariant_report()
    finally:
        engine.close()
    return {
        "ok": report.ok,
        "fault_drift": monitor.fault_drift,
        "cycles_checked": monitor.cycles_checked,
        "max_residual": monitor.max_residual,
    }


def spot_check_1m(n=SPOT_N, cycles=SPOT_CYCLES):
    """Million-node spot: none vs retransmit at the headline reply
    loss, one replication each on the sharded backend."""
    values = make_rng(SEED).normal(10.0, 4.0, n)
    spot = {"n": n, "cycles": cycles}
    for policy in ("none", "retransmit"):
        scenario = Scenario(
            CompleteTopology(n),
            values,
            message_faults=MessageFaultSpec(reply_loss=HEADLINE_LOSS),
            retry=retry_for_policy(policy),
            seed=SEED,
            backend="sharded",
        )
        engine = GossipEngine(scenario)
        monitor = engine.register_monitor(MassConservationMonitor())
        start = time.perf_counter()
        try:
            engine.run(cycles)
        finally:
            engine.close()
        spot[f"{policy}_drift_per_node"] = abs(monitor.fault_drift) / n
        spot[f"{policy}_seconds"] = time.perf_counter() - start
    spot["improvement"] = spot["none_drift_per_node"] / max(
        spot["retransmit_drift_per_node"], 1e-300
    )
    return spot


def build_sweep(n=N):
    """Acceptance-scale grid at the headline size, a reduced grid
    below."""
    # per-run drift is a half-normal draw with large spread, so the
    # headline ratio needs >= 5 replications per cell to stabilize
    if n >= N:
        return MessageFaultSweep(
            n=n, runs=5, loss_rates=(0.0, 0.05, 0.1, 0.2), seed=SEED
        )
    return MessageFaultSweep(
        n=n,
        cycles=40,
        runs=5,
        loss_rates=(0.0, HEADLINE_LOSS),
        directions=("reply",),
        policies=("none", "retransmit", "redraw"),
        seed=SEED,
    )


def _headline(rows, policy):
    for row in rows:
        if (
            row["direction"] == "reply"
            and row["loss_rate"] == HEADLINE_LOSS
            and row["policy"] == policy
        ):
            return row
    return None


def compute_messages(n=N):
    sweep = build_sweep(n)
    start = time.perf_counter()
    payload = run_message_fault_sweep(sweep)
    sweep_seconds = time.perf_counter() - start
    start = time.perf_counter()
    equivalence = equivalence_check()
    equivalence_seconds = time.perf_counter() - start
    conservation = zero_drift_check()
    spot = spot_check_1m() if paper_scale() else None
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "FIG_messages.svg").write_text(
        render_message_fault_svg(payload) + "\n"
    )
    none_row = _headline(payload["rows"], "none")
    retransmit_row = _headline(payload["rows"], "retransmit")
    improvement = None
    if none_row and retransmit_row:
        improvement = none_row["drift_per_node"] / max(
            retransmit_row["drift_per_node"], 1e-300
        )
    return {
        "n": n,
        "cycles": sweep.cycles,
        "runs": sweep.runs,
        "backend": sweep.backend,
        "seconds": sweep_seconds + equivalence_seconds,
        "sweep_seconds": sweep_seconds,
        "equivalence_seconds": equivalence_seconds,
        "headline_loss": HEADLINE_LOSS,
        "none_drift_per_node": (
            none_row["drift_per_node"] if none_row else None
        ),
        "retransmit_drift_per_node": (
            retransmit_row["drift_per_node"] if retransmit_row else None
        ),
        "retry_improvement": improvement,
        "equivalence": equivalence,
        "bitwise_equal_backends": all(equivalence.values()),
        "conservation": conservation,
        "spot_1m": spot,
        "rows": payload["rows"],
    }


def render(series):
    table = Table(
        headers=["metric", "value"],
        title=(
            f"M1: message-fault degradation — N={series['n']}, "
            f"{series['runs']} runs/cell ({series['backend']} backend)"
        ),
    )
    table.add_row("wall-clock seconds", series["seconds"])
    table.add_row("sweep cells", len(series["rows"]))
    table.add_row(
        f"reply loss @{series['headline_loss']:.0%}: drift/node (none)",
        series["none_drift_per_node"],
    )
    table.add_row(
        f"reply loss @{series['headline_loss']:.0%}: drift/node "
        f"(retransmit)",
        series["retransmit_drift_per_node"],
    )
    table.add_row("retry improvement (x)", series["retry_improvement"])
    table.add_row("bitwise-equal backends", series["bitwise_equal_backends"])
    table.add_row(
        "fault-free attributed drift", series["conservation"]["fault_drift"]
    )
    if series["spot_1m"] is not None:
        table.add_row(
            "1M spot improvement (x)", series["spot_1m"]["improvement"]
        )
    table.add_row("figure", "benchmarks/out/FIG_messages.svg")
    return table.render()


def check(series):
    for combo, equal in series["equivalence"].items():
        assert equal, (
            f"backends diverged under the {combo} fault combo "
            f"(reference vs vectorized/sharded:1/2/4 at N={EQUIVALENCE_N})"
        )
    conservation = series["conservation"]
    assert conservation["ok"], "strict fault-free run reported violations"
    assert conservation["fault_drift"] == 0.0, (
        f"fault-free run attributed nonzero drift "
        f"{conservation['fault_drift']!r}"
    )
    # the headline recovery claim: retransmission cuts the reply-loss
    # mass drift by >= 5x; below the acceptance size the grid is small
    # and seeds noisy, so only a directional 2x is required
    assert series["retry_improvement"] is not None
    required = MIN_RETRY_IMPROVEMENT if series["n"] >= N else 2.0
    assert series["retry_improvement"] >= required, (
        f"retransmit cut reply-loss drift only "
        f"{series['retry_improvement']:.2f}x at "
        f"{series['headline_loss']:.0%} loss (required {required}x: "
        f"none={series['none_drift_per_node']:.3e}, "
        f"retransmit={series['retransmit_drift_per_node']:.3e})"
    )
    if series["spot_1m"] is not None:
        assert series["spot_1m"]["improvement"] >= MIN_RETRY_IMPROVEMENT, (
            f"1M spot improvement {series['spot_1m']['improvement']:.2f}x "
            f"fell below {MIN_RETRY_IMPROVEMENT}x"
        )


def test_messages(benchmark, capsys):
    series = benchmark.pedantic(
        compute_messages, args=(20_000,), rounds=1, iterations=1
    )
    emit("messages", render(series), capsys)
    emit_json("messages", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    args = parser.parse_args(argv)
    series = compute_messages(args.n)
    emit("messages", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive;
    # smoke sizes stay in benchmarks/out/
    emit_json("messages", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
