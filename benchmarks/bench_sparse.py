"""Experiment S2 — sparse-overlay scale benchmark.

The paper's robustness results (Figures 3–5) live on *sparse* overlays
— the 20-regular random graph above all — yet until the CSR topology
refactor the vectorized fast path was only fast on complete and
perfectly regular graphs: irregular overlays fell back to a per-node
Python partner draw, and even regular graphs re-built an O(n·k)
neighbor matrix every cycle. This benchmark times the
AggregationService workload (five concurrent aggregation instances
riding one GETPAIR_SEQ exchange stream — the same scenario
``bench_scale.py`` times on the complete graph) at N = 100 000 on both
kernel backends across the overlay families:

* the complete graph (the former fast path's home turf, the baseline),
* the 20-regular random overlay (Figure 3's sparse series),
* Erdős–Rényi G(n, p) with mean degree 20 (irregular degrees), and
* a Barabási–Albert scale-free graph (heavy-tailed degrees — the
  worst case for any per-degree-class batching).

Every topology must produce **bitwise-equal** final states across
backends — the CSR draw happens in the engine, so backends see
identical exchange lists. Acceptance at N = 100 000: the vectorized
backend is ≥ 5× faster than the reference backend on the 20-regular
overlay.

``--crossover`` (also part of the archived run) sweeps small network
sizes and records the reference/vectorized per-cycle ratio for the
workloads the ``auto`` backend heuristic must serve: the five-instance
service workload crosses near N ≈ 256, the single-instance
AGGREGATE_AVG workload (whose reference path is a very tight list
loop) near N ≈ 2048. ``AUTO_VECTORIZE_THRESHOLD`` = 1024 sits in that
measured band; the benchmark asserts the vectorized backend wins the
service workload at the threshold size.

Run directly (``python benchmarks/bench_sparse.py [--n N]``) or through
pytest (``pytest benchmarks/bench_sparse.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.analysis import Table
from repro.kernel import AUTO_VECTORIZE_THRESHOLD, GossipEngine, Scenario
from repro.rng import make_rng
from repro.topology import (
    BarabasiAlbertTopology,
    CompleteTopology,
    ErdosRenyiTopology,
    RandomRegularTopology,
)

from _common import emit, emit_json
from bench_scale import service_scenario

N = 100_000
CYCLES = 10
SEED = 1902
SPEEDUP_FLOOR = 5.0  # acceptance target at N = 100 000, 20-regular
CROSSOVER_SIZES = (256, 512, 1024, 2048)

#: overlay families benchmarked, in report order
TOPOLOGIES = ("complete", "regular20", "erdos_renyi", "scale_free")


def build_topology(name, n):
    """One overlay instance (seeded by size for reproducibility)."""
    if name == "complete":
        return CompleteTopology(n)
    if name == "regular20":
        return RandomRegularTopology(n, 20, seed=n)
    if name == "erdos_renyi":
        # mean degree 20 to match the paper's view size
        return ErdosRenyiTopology(n, 20.0 / (n - 1), seed=n)
    if name == "scale_free":
        # m = 10 attachments -> mean degree ~20
        return BarabasiAlbertTopology(n, 10, seed=n)
    raise ValueError(name)


def one_topology(name, n, cycles):
    """Time the same seeded five-instance workload on both backends and
    compare the final matrices bitwise."""
    topology = build_topology(name, n)
    timings, finals = {}, {}
    for backend in ("reference", "vectorized"):
        scenario = service_scenario(
            n, backend, seed=SEED, cycles=cycles, topology=topology
        )
        engine = GossipEngine(scenario)
        start = time.perf_counter()
        engine.run(cycles, record="end")
        timings[backend] = time.perf_counter() - start
        finals[backend] = engine.matrix
    return {
        "reference_seconds": timings["reference"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": timings["reference"] / timings["vectorized"],
        "bitwise_equal": bool(
            np.array_equal(finals["reference"], finals["vectorized"])
        ),
    }


def per_cycle_seconds(scenario_factory, backend, cycles=20, reps=3):
    best = float("inf")
    for _ in range(reps):
        engine = GossipEngine(scenario_factory(backend))
        start = time.perf_counter()
        engine.run(cycles, record="end")
        best = min(best, (time.perf_counter() - start) / cycles)
    return best


def measure_crossover():
    """Reference/vectorized per-cycle ratio (> 1 means vectorized wins)
    at small sizes, for the workload families the ``auto`` heuristic
    must serve. Keys deliberately avoid the ``_seconds`` suffix: these
    sub-millisecond timings are informational, not diff-gated."""
    out = {}
    for n in CROSSOVER_SIZES:
        single = lambda backend: Scenario(
            CompleteTopology(n),
            make_rng(SEED).normal(10.0, 4.0, n),
            seed=SEED,
            backend=backend,
        )
        service = lambda backend: service_scenario(n, backend)
        out[f"crossover_single_ratio_{n}"] = per_cycle_seconds(
            single, "reference"
        ) / per_cycle_seconds(single, "vectorized")
        out[f"crossover_service_ratio_{n}"] = per_cycle_seconds(
            service, "reference"
        ) / per_cycle_seconds(service, "vectorized")
    return out


def compute_sparse(n=N, cycles=CYCLES):
    series = {"n": n, "cycles": cycles}
    reference_total = vectorized_total = 0.0
    for name in TOPOLOGIES:
        row = one_topology(name, n, cycles)
        reference_total += row["reference_seconds"]
        vectorized_total += row["vectorized_seconds"]
        for key, value in row.items():
            series[f"{name}_{key}"] = value
    series["reference_seconds"] = reference_total
    series["seconds"] = vectorized_total
    series["speedup"] = reference_total / vectorized_total
    series["bitwise_equal"] = all(
        series[f"{name}_bitwise_equal"] for name in TOPOLOGIES
    )
    series["auto_vectorize_threshold"] = AUTO_VECTORIZE_THRESHOLD
    series.update(measure_crossover())
    return series


def render(series):
    table = Table(
        headers=["overlay", "ref s", "vec s", "speedup", "bitwise"],
        title=(
            f"S2: sparse-overlay exchange cycles, N={series['n']}, "
            f"{series['cycles']} cycles (auto threshold "
            f"{series['auto_vectorize_threshold']})"
        ),
    )
    for name in TOPOLOGIES:
        table.add_row(
            name,
            series[f"{name}_reference_seconds"],
            series[f"{name}_vectorized_seconds"],
            series[f"{name}_speedup"],
            series[f"{name}_bitwise_equal"],
        )
    table.add_row(
        "total", series["reference_seconds"], series["seconds"],
        series["speedup"], series["bitwise_equal"],
    )
    lines = [table.render(), "", "crossover (ref/vec per-cycle ratio; > 1 = vectorized wins):"]
    for n in CROSSOVER_SIZES:
        lines.append(
            f"  n={n:5d}  single {series[f'crossover_single_ratio_{n}']:.2f}"
            f"  service {series[f'crossover_service_ratio_{n}']:.2f}"
        )
    return "\n".join(lines)


def check(series):
    assert series["bitwise_equal"], (
        "reference and vectorized backends diverged on a sparse overlay"
    )
    # the auto threshold must sit inside the measured band: by the
    # threshold size the vectorized backend must already win the
    # five-instance service workload it was measured on
    threshold = series["auto_vectorize_threshold"]
    assert threshold <= 1024, (
        f"AUTO_VECTORIZE_THRESHOLD {threshold} above the 1024 acceptance "
        f"ceiling"
    )
    key = f"crossover_service_ratio_{threshold}"
    if key in series:
        assert series[key] >= 1.0, (
            f"vectorized backend loses the service workload at the auto "
            f"threshold size ({series[key]:.2f}x)"
        )
    # the speedup floor is a paper-scale claim; smoke sizes only check
    # correctness (sub-second runs are too noisy to gate)
    if series["n"] >= N:
        speedup = series["regular20_speedup"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized speedup {speedup:.1f}x on the 20-regular overlay "
            f"at N={series['n']} is below the {SPEEDUP_FLOOR}x acceptance "
            f"floor"
        )


def test_sparse(benchmark, capsys):
    series = benchmark.pedantic(compute_sparse, rounds=1, iterations=1)
    emit("sparse", render(series), capsys)
    emit_json("sparse", series, archive=series["n"] >= N)
    check(series)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    args = parser.parse_args(argv)
    series = compute_sparse(args.n, args.cycles)
    emit("sparse", render(series), None)
    # only acceptance-scale runs refresh the git-tracked archive;
    # smoke sizes stay in benchmarks/out/
    emit_json("sparse", series, archive=args.n >= N)
    check(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
