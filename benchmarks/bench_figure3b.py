"""Experiment F3B — Figure 3(b).

Average per-cycle variance reduction σ²ᵢ/σ²ᵢ₋₁ while ITERATING algorithm
AVG (cycles 1..30) at a single large network size, for GETPAIR_RAND and
GETPAIR_SEQ on the complete and 20-regular random topologies.

Paper shape: the complete-topology series stay flat at their theoretical
rates; the 20-regular series drift slightly upward over the cycles
(correlation accumulates on the sparse overlay), more so for RAND than
for SEQ.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.avg import (
    GetPairRand,
    GetPairSeq,
    RATE_RAND,
    RATE_SEQ,
    ValueVector,
    run_avg,
)
from repro.rng import spawn_streams
from repro.topology import CompleteTopology, RandomRegularTopology

from _common import emit, scale


def per_cycle_reductions(selector_factory, topology, cycles, runs, seed):
    """Geometric-mean per-cycle ratio across runs, one value per cycle."""
    all_ratios = []
    for rng in spawn_streams(seed, runs):
        vector = ValueVector.gaussian(topology.n, seed=rng)
        result = run_avg(vector, selector_factory(topology), cycles, seed=rng)
        all_ratios.append(result.reductions)
    stacked = np.vstack(all_ratios)
    return np.exp(np.nanmean(np.log(stacked), axis=0))


def compute_figure3b():
    cfg = scale()
    n, cycles, runs = cfg.figure3b_n, cfg.figure3b_cycles, cfg.figure3b_runs
    complete = CompleteTopology(n)
    regular = RandomRegularTopology(n, 20, seed=90)
    return {
        "cycles": list(range(1, cycles + 1)),
        "rand_complete": per_cycle_reductions(
            GetPairRand, complete, cycles, runs, seed=91
        ),
        "rand_regular": per_cycle_reductions(
            GetPairRand, regular, cycles, runs, seed=92
        ),
        "seq_complete": per_cycle_reductions(
            GetPairSeq, complete, cycles, runs, seed=93
        ),
        "seq_regular": per_cycle_reductions(
            GetPairSeq, regular, cycles, runs, seed=94
        ),
    }


def render(series):
    cfg = scale()
    table = Table(
        headers=[
            "cycle",
            "rand/complete",
            "rand/20-reg",
            "seq/complete",
            "seq/20-reg",
        ],
        title=(
            f"Figure 3(b): per-cycle variance reduction, N={cfg.figure3b_n} "
            f"(theory: rand {RATE_RAND:.3f}, seq {RATE_SEQ:.3f})"
        ),
    )
    for index, cycle in enumerate(series["cycles"]):
        table.add_row(
            cycle,
            float(series["rand_complete"][index]),
            float(series["rand_regular"][index]),
            float(series["seq_complete"][index]),
            float(series["seq_regular"][index]),
        )
    return table.render()


def test_figure3b(benchmark, capsys):
    series = benchmark.pedantic(compute_figure3b, rounds=1, iterations=1)
    emit("figure3b", render(series), capsys)
    # first ~15 cycles on the complete graph sit at the theory rates
    # (later cycles of a finite run go noisy as variance hits float eps)
    early = slice(0, 15)
    rand_complete = np.nanmean(series["rand_complete"][early])
    seq_complete = np.nanmean(series["seq_complete"][early])
    assert abs(rand_complete - RATE_RAND) / RATE_RAND < 0.1
    assert abs(seq_complete - RATE_SEQ) / RATE_SEQ < 0.1
    # the sparse overlay converges no faster than the complete one
    rand_regular = np.nanmean(series["rand_regular"][early])
    seq_regular = np.nanmean(series["seq_regular"][early])
    assert rand_regular > rand_complete - 0.02
    assert seq_regular > seq_complete - 0.02
