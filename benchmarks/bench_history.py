"""Append one summary row per benchmark run to a JSONL history file.

``diff_bench.py`` gates each CI run against the previous one, but a
pairwise diff cannot show a slow drift. This script condenses the
current ``benchmarks/out/BENCH_*.json`` archives into a single JSON
line — run label, commit, and every workload's parameters and timing
keys — and appends it to a history file (one row per CI run). The CI
workflow keeps the history in the same actions-cache directory as the
diff baseline, so trends accumulate across runs and can be plotted
straight from the artifact.

Usage::

    python benchmarks/bench_history.py \
        --history .bench-baseline/BENCH_history.jsonl \
        [--bench-dir benchmarks/out] [--label "$GITHUB_RUN_NUMBER"] \
        [--commit "$GITHUB_SHA"]

Exit codes: 0 = row appended (or nothing to record), 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: keys copied verbatim from each BENCH_*.json into the history row —
#: workload parameters (to spot incomparable runs) plus every timing
SUMMARY_KEYS = ("n", "cycles", "aggregates", "cycles_per_epoch", "backend",
                "worker_sweep", "cpu_count")


def is_timing_key(key: str) -> bool:
    """Whether a JSON key holds a wall-clock measurement (mirrors
    ``diff_bench.is_timing_key``, plus derived speedups)."""
    return key == "seconds" or key.endswith("_seconds") or key == "speedup"


def is_memory_key(key: str) -> bool:
    """Whether a JSON key holds a memory measurement (the peak-RSS
    numbers ``_common.emit_json`` stamps on every archive) — kept in
    the history row so memory trends are plottable alongside timings."""
    return key.startswith("peak_rss") and key.endswith("_bytes")


def summarize(payload: dict) -> dict:
    """The history-worthy subset of one benchmark archive."""
    return {
        key: payload[key]
        for key in payload
        if key in SUMMARY_KEYS or is_timing_key(key) or is_memory_key(key)
    }


def build_row(bench_dir: Path, label: str, commit: str) -> dict:
    row = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "label": label,
        "commit": commit,
        "benches": {},
    }
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        with path.open() as handle:
            row["benches"][name] = summarize(json.load(handle))
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", type=Path, required=True,
                        help="JSONL file to append the row to")
    parser.add_argument("--bench-dir", type=Path,
                        default=Path(__file__).parent / "out",
                        help="directory holding the BENCH_*.json archives")
    parser.add_argument("--label", default=os.environ.get(
        "GITHUB_RUN_NUMBER", "local"),
        help="run label (default: $GITHUB_RUN_NUMBER or 'local')")
    parser.add_argument("--commit", default=os.environ.get(
        "GITHUB_SHA", "unknown"),
        help="commit id (default: $GITHUB_SHA or 'unknown')")
    args = parser.parse_args(argv)
    if not args.bench_dir.is_dir():
        print(f"bench dir {args.bench_dir} missing", file=sys.stderr)
        return 2
    row = build_row(args.bench_dir, args.label, args.commit)
    if not row["benches"]:
        print(f"no BENCH_*.json under {args.bench_dir}; nothing to record")
        return 0
    args.history.parent.mkdir(parents=True, exist_ok=True)
    with args.history.open("a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    print(f"appended run {row['label']} ({len(row['benches'])} benches) "
          f"to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
