"""Command-line interface: regenerate paper artifacts from the shell.

Usage::

    python -m repro rates                 # T1: the §3.3 rate table
    python -m repro figure3a              # Figure 3(a) series
    python -m repro figure3a --n 100000 --backend vectorized
                                          # Figure 3 point at paper scale
    python -m repro figure3a --n 100000 --topology regular20 --backend vectorized
                                          # sparse-overlay series, paper scale
    python -m repro figure3a --n 1000000 --backend sharded --workers 4
                                          # million-node Figure 3 point
    python -m repro figure4 --cycles 300  # Figure 4, scaled down
    python -m repro figure4 --n 100000 --backend vectorized
                                          # Figure 4 at paper scale
    python -m repro figure4 --n 1000000 --backend sharded --cycles 60
                                          # million-node Figure 4
    python -m repro monitor --n 2000      # AggregationService demo
    python -m repro scale --n 100000      # kernel backend comparison
    python -m repro scale --n 1000000 --backend vectorized,sharded:4
                                          # single- vs multi-process at 1M
    python -m repro robustness            # adversary sweep, small default
    python -m repro robustness --n 100000 --backend vectorized --svg out.svg
                                          # robustness report at paper scale
    python -m repro robustness --config sweep.json
                                          # declarative scenario matrix
    python -m repro robustness --messages --loss-rates 0,0.1 --retry none,retransmit
                                          # message-fault degradation sweep

Each subcommand prints the same rows the corresponding benchmark
archives, with small default sizes so it completes in seconds.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np

from .analysis import (
    MessageFaultSweep,
    RobustnessSweep,
    Table,
    render_message_fault_svg,
    render_robustness_svg,
    replicate,
    run_message_fault_sweep,
    run_robustness_sweep,
)
from .avg import (
    GetPairPerfectMatching,
    GetPairPMRand,
    GetPairRand,
    GetPairSeq,
    ValueVector,
    convergence_rate,
    run_avg,
)
from .core import SizeEstimationConfig, SizeEstimationExperiment
from .core.service import AggregationService
from .errors import BackendSpecError
from .failures import OscillatingChurn
from .kernel import CheckpointSpec, GossipEngine, Scenario, parse_backend_spec
from .kernel.backends.sharded import POOL_FAILURE_MODES
from .kernel.lifecycle import ChurnTrace
from .kernel.membership import MEMBERSHIP_NAMES
from .rng import make_rng
from .topology import CompleteTopology, RandomRegularTopology

_SELECTORS = {
    "pm": GetPairPerfectMatching,
    "rand": GetPairRand,
    "seq": GetPairSeq,
    "pmrand": GetPairPMRand,
}

#: ``scale --backend`` aliases expanding to comparison lists
_SCALE_ALIASES = {
    "both": ("reference", "vectorized"),
    "all": ("reference", "vectorized", "sharded"),
}


def _backend_arg(value: str) -> str:
    """argparse type for ``--backend``: any valid backend spec,
    including ``sharded:<workers>`` (replaces the old closed choices
    list). Unknown or malformed specs surface the full list of valid
    forms instead of a bare failure."""
    try:
        parse_backend_spec(value, allow_auto=True)
    except BackendSpecError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return value


def _scale_backend_arg(value: str) -> str:
    """``scale --backend``: an alias (``both``/``all``) or a
    comma-separated list of backend specs."""
    if value in _SCALE_ALIASES:
        return value
    for spec in value.split(","):
        _backend_arg(spec)
    return value


def _workers_arg(value: str) -> object:
    """argparse type for ``--workers``: a positive integer or
    ``auto`` (resolve from CPU affinity, with the small-matrix inline
    fallback)."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None


def _add_backend_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--backend", type=_backend_arg, default="auto", metavar="SPEC",
        help="kernel execution backend: auto, reference, vectorized, "
             "sharded, sharded:<workers> or sharded:auto",
    )
    command.add_argument(
        "--workers", type=_workers_arg, default="auto", metavar="W",
        help="worker count for --backend sharded: a positive integer "
             "(shorthand for --backend sharded:<W>) or 'auto' (the "
             "default: one worker per schedulable core, inline "
             "in-process execution on small networks; ignored unless "
             "the backend is sharded)",
    )
    command.add_argument(
        "--on-pool-failure", choices=list(POOL_FAILURE_MODES),
        default=None, metavar="MODE",
        help="what a sharded pool failure does (sets "
             "REPRO_SHARD_ON_FAILURE): 'raise' fails fast (the "
             "default), 'respawn' replays the in-flight work inline "
             "and restarts the workers, 'inline' degrades to "
             "in-process execution — the run always finishes, "
             "bitwise-identically",
    )


def _resolve_backend(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> None:
    """Fold ``--workers`` into the backend spec in ``args.backend``.

    The ``auto`` default only ever annotates a bare ``sharded``
    backend (``sharded`` → ``sharded:auto``); for every other backend
    it is inert, so ``--backend vectorized`` works without spelling
    ``--workers`` out. Explicit integer counts keep strict validation.
    """
    mode = getattr(args, "on_pool_failure", None)
    if mode is not None:
        # env-based so the policy reaches every ShardedBackend the run
        # constructs, however deep (experiments build their own)
        os.environ["REPRO_SHARD_ON_FAILURE"] = mode
    workers = getattr(args, "workers", None)
    if workers is None:
        return
    backend = args.backend
    if workers == "auto":
        if backend in _SCALE_ALIASES or "," in backend:
            return
        base, spec_workers = parse_backend_spec(backend, allow_auto=True)
        if base == "sharded" and spec_workers is None:
            args.backend = "sharded:auto"
        return
    if backend in _SCALE_ALIASES or "," in backend:
        parser.error("--workers applies to a single sharded backend, "
                     "not a comparison list; use sharded:<W> instead")
    base, spec_workers = parse_backend_spec(backend, allow_auto=True)
    if base != "sharded":
        parser.error(f"--workers requires --backend sharded "
                     f"(got --backend {backend})")
    if spec_workers is not None:
        parser.error("pass either --backend sharded:<W> or --workers W, "
                     "not both")
    if workers < 1:
        parser.error(f"--workers must be a positive integer, got {workers}")
    args.backend = f"sharded:{workers}"


def _cmd_rates(args: argparse.Namespace) -> int:
    topology = CompleteTopology(args.n)
    table = Table(
        headers=["getPair", "empirical", "theory"],
        title=f"Per-cycle variance reduction rates, N={args.n}",
    )
    for name, factory in _SELECTORS.items():
        def one_run(rng, factory=factory):
            vector = ValueVector.gaussian(args.n, seed=rng)
            return run_avg(
                vector, factory(topology), args.cycles, seed=rng,
                backend=args.backend,
            ).geometric_mean_reduction()

        rates = replicate(one_run, runs=args.runs, seed=1).outputs
        table.add_row(name, float(np.mean(rates)), convergence_rate(name))
    print(table.render())
    return 0


def _cmd_figure3a(args: argparse.Namespace) -> int:
    label = args.topology
    table = Table(
        headers=["N", f"rand/{label}", f"seq/{label}"],
        title="Figure 3(a): variance reduction after one AVG execution",
    )
    sizes = (100, 316, 1000, 3162) if args.n is None else (args.n,)
    for n in sizes:
        if args.topology == "regular20":
            if n <= 20:
                raise SystemExit(
                    f"--topology regular20 needs n > 20, got {n}"
                )
            topology = RandomRegularTopology(n, 20, seed=n)
        else:
            topology = CompleteTopology(n)
        row = [n]
        for factory in (GetPairRand, GetPairSeq):
            def one_run(rng, factory=factory):
                vector = ValueVector.gaussian(n, seed=rng)
                return run_avg(
                    vector, factory(topology), 1, seed=rng,
                    backend=args.backend,
                ).cycles[0].reduction

            row.append(
                float(np.mean(replicate(one_run, runs=args.runs, seed=n).outputs))
            )
        table.add_row(*row)
    print(table.render())
    return 0


def _figure4_churn(args: argparse.Namespace):
    """The churn model for ``figure4 --churn-trace``: the historical
    closed-form oscillation, or a trace-driven workload replayed from
    per-cycle join/leave counts (:class:`~repro.kernel.ChurnTrace`)."""
    n, cycles = args.n, args.cycles
    period = max(cycles // 2, 2)
    fluctuation = max(n // 1000, 1)
    kind = getattr(args, "churn_trace", "oscillating")
    if kind == "oscillating":
        return OscillatingChurn(n, n // 10, period=period,
                                fluctuation=fluctuation)
    if kind == "diurnal":
        return ChurnTrace.diurnal(
            n, cycles, period=period, amplitude=n // 10,
            fluctuation=fluctuation,
        )
    if kind == "flash":
        # quiet background turnover + a crowd of N/2 landing a third of
        # the way in, decaying over roughly one epoch
        base = ChurnTrace.diurnal(
            n, cycles, period=period, amplitude=0, fluctuation=fluctuation
        )
        crowd = ChurnTrace.flash_crowd(
            cycles, at=max(cycles // 3, 1), size=n // 2,
            mean_stay=float(max(args.epoch, 2)), seed=args.seed,
        )
        return base.overlay(crowd)
    if kind == "sessions":
        # heavy turnover: sessions last ~2 epochs, arrivals sized to
        # keep the population near N in steady state
        mean_session = 2.0 * max(args.epoch, 1)
        return ChurnTrace.sessions(
            cycles, arrivals_per_cycle=n / mean_session,
            mean_session=mean_session, seed=args.seed,
        )
    raise ValueError(f"unknown churn trace {kind!r}")


def _cmd_figure4(args: argparse.Namespace) -> int:
    config = SizeEstimationConfig(
        cycles=args.cycles,
        cycles_per_epoch=args.epoch,
        initial_size=args.n,
        seed=args.seed,
    )
    experiment = SizeEstimationExperiment(
        config, churn=_figure4_churn(args), backend=args.backend,
        membership=args.membership,
    )
    checkpoint = None
    if args.checkpoint_dir is not None:
        checkpoint = CheckpointSpec(
            directory=args.checkpoint_dir,
            every_cycles=args.checkpoint_every,
            keep=3,
        )
    start = time.perf_counter()
    if args.resume is not None:
        experiment.resume(args.resume, checkpoint=checkpoint)
        mode = "resumed"
    else:
        experiment.run(checkpoint=checkpoint)
        mode = "ran"
    elapsed = time.perf_counter() - start
    table = Table(
        headers=["end cycle", "actual@start", "estimate", "rel. error"],
        title=(
            f"Figure 4: size estimation under churn, N={args.n} "
            f"({args.churn_trace} churn, {args.membership} membership, "
            f"{experiment.backend_name} backend, {mode} in {elapsed:.1f}s)"
        ),
    )
    for report in experiment.reports:
        table.add_row(
            report.end_cycle,
            report.size_at_start,
            report.estimate_mean,
            report.relative_error,
        )
    print(table.render())
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Run one kernel scenario per requested backend and compare."""
    values = make_rng(args.seed).normal(10.0, 4.0, args.n)
    topology = CompleteTopology(args.n)
    backends = _SCALE_ALIASES.get(args.backend, tuple(args.backend.split(",")))
    table = Table(
        headers=["backend", "cycles", "seconds", "final variance"],
        title=f"Gossip kernel backends, N={args.n} (same seed, same draws)",
    )
    for backend in backends:
        scenario = Scenario(
            topology,
            values,
            loss_probability=args.loss,
            cycles=args.cycles,
            seed=args.seed,
            backend=backend,
        )
        with GossipEngine(scenario) as engine:
            start = time.perf_counter()
            result = engine.run(record="end")
            elapsed = time.perf_counter() - start
        table.add_row(
            engine.backend_name if backend == "auto" else backend,
            args.cycles,
            elapsed,
            result.variance_array()[-1],
        )
    print(table.render())
    return 0


def _load_sweep_config(path: str) -> dict:
    """Parse a declarative robustness-sweep config: JSON always, YAML
    when PyYAML is importable (the file formats are interchangeable —
    the mapping feeds ``RobustnessSweep.from_mapping`` either way)."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        mapping = json.loads(text)
    except ValueError:
        try:
            import yaml
        except ImportError:
            raise SystemExit(
                f"{path} is not JSON and PyYAML is not installed; "
                f"provide a JSON config or install pyyaml"
            ) from None
        mapping = yaml.safe_load(text)
    if not isinstance(mapping, dict):
        raise SystemExit(f"{path} must hold a mapping, got {type(mapping).__name__}")
    return mapping


def _float_list(value: str) -> tuple:
    return tuple(float(part) for part in value.split(","))


def _cmd_messages(args: argparse.Namespace) -> int:
    """The message-fault degradation sweep: convergence factor and
    attributed mass drift vs loss rate × direction × retry policy."""
    if args.config:
        mapping = _load_sweep_config(args.config)
    else:
        # quick-look defaults: the full degradation grid in seconds
        mapping = {"n": 2000, "runs": 2, "cycles": 25,
                   "loss_rates": (0.0, 0.05, 0.1)}
    sweep = MessageFaultSweep.from_mapping(mapping)
    overrides = {
        key: value
        for key, value in (
            ("n", args.n),
            ("runs", args.runs),
            ("cycles", args.cycles),
            ("seed", args.seed),
            ("loss_rates", args.loss_rates),
            ("duplication", args.duplication),
            (
                "directions",
                tuple(args.directions.split(",")) if args.directions
                else None,
            ),
            ("policies", tuple(args.retry.split(",")) if args.retry else None),
        )
        if value is not None
    }
    if args.backend != "auto":
        overrides["backend"] = args.backend
    if overrides:
        import dataclasses

        sweep = dataclasses.replace(sweep, **overrides)
    start = time.perf_counter()
    payload = run_message_fault_sweep(sweep)
    elapsed = time.perf_counter() - start
    table = Table(
        headers=[
            "direction", "policy", "loss", "conv.factor",
            "drift/node", "±band", "repairs", "giveups",
        ],
        title=(
            f"Message-fault degradation: N={sweep.n}, {sweep.cycles} "
            f"cycles, {sweep.runs} runs/cell ({elapsed:.1f}s)"
        ),
    )
    for row in payload["rows"]:
        table.add_row(
            row["direction"], row["policy"], row["loss_rate"],
            row["convergence_factor"], row["drift_per_node"],
            row["drift_per_node_band"], row["repairs"], row["giveups"],
        )
    print(table.render())
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(render_message_fault_svg(payload))
        print(f"figure written to {args.svg}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    """The declarative scenario-matrix sweep: estimation error vs
    adversary fraction × churn rate × topology. ``--messages`` switches
    to the message-fault degradation sweep."""
    if args.messages:
        return _cmd_messages(args)
    if args.config:
        mapping = _load_sweep_config(args.config)
    else:
        # quick-look defaults: the full matrix in a couple of seconds
        mapping = {"n": 2000, "runs": 2, "cycles": 25, "cycles_per_epoch": 25}
    sweep = RobustnessSweep.from_mapping(mapping)
    overrides = {
        key: value
        for key, value in (
            ("n", args.n),
            ("runs", args.runs),
            ("cycles", args.cycles),
            ("cycles_per_epoch", args.epoch),
            ("value", args.value),
            ("seed", args.seed),
            ("fractions", args.fractions),
            ("churn_rates", args.churn_rates),
            ("kinds", tuple(args.kinds.split(",")) if args.kinds else None),
            (
                "topologies",
                tuple(args.topologies.split(",")) if args.topologies else None,
            ),
        )
        if value is not None
    }
    if args.backend != "auto":
        overrides["backend"] = args.backend
    if overrides:
        import dataclasses

        sweep = dataclasses.replace(sweep, **overrides)
    start = time.perf_counter()
    payload = run_robustness_sweep(sweep)
    elapsed = time.perf_counter() - start
    table = Table(
        headers=[
            "kind", "topology", "churn", "fraction",
            "err(mean)", "err(median)", "err(trimmed)",
        ],
        title=(
            f"Robustness report: size-estimation error, N={sweep.n}, "
            f"{sweep.runs} runs/cell ({elapsed:.1f}s)"
        ),
    )
    for row in payload["rows"]:
        table.add_row(
            row["kind"], row["topology"], row["churn_rate"], row["fraction"],
            row["error_mean"], row["error_median"], row["error_trimmed"],
        )
    print(table.render())
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(render_robustness_svg(payload))
        print(f"figure written to {args.svg}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    topology = RandomRegularTopology(args.n, 20, seed=args.seed)
    values = rng.lognormal(3.0, 0.7, args.n)
    service = AggregationService(
        topology, values, seed=args.seed, backend=args.backend
    )
    report = service.run(cycles=args.cycles)
    table = Table(
        headers=["aggregate", "estimate", "ground truth"],
        title=f"AggregationService over a 20-regular overlay, N={args.n}",
    )
    table.add_row("mean", report.mean, float(values.mean()))
    table.add_row("max", report.maximum, float(values.max()))
    table.add_row("min", report.minimum, float(values.min()))
    table.add_row("network size", report.network_size, args.n)
    table.add_row("total", report.total, float(values.sum()))
    table.add_row("value variance", report.value_variance, float(values.var()))
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anti-entropy aggregation (Jelasity & Montresor 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rates = sub.add_parser("rates", help="the Section 3.3 rate table")
    rates.add_argument("--n", type=int, default=1000)
    rates.add_argument("--runs", type=int, default=5)
    rates.add_argument("--cycles", type=int, default=12)
    _add_backend_options(rates)
    rates.set_defaults(func=_cmd_rates)

    f3a = sub.add_parser("figure3a", help="Figure 3(a) series")
    f3a.add_argument("--runs", type=int, default=8)
    f3a.add_argument(
        "--n", type=int, default=None,
        help="single network size (default: the 100..3162 series)",
    )
    _add_backend_options(f3a)
    f3a.add_argument(
        "--topology", choices=["complete", "regular20"], default="complete",
        help="overlay for the series: the complete graph or the paper's "
             "20-regular random overlay (needs n > 20)",
    )
    f3a.set_defaults(func=_cmd_figure3a)

    f4 = sub.add_parser("figure4", help="Figure 4, any scale")
    f4.add_argument("--n", type=int, default=2000)
    f4.add_argument("--cycles", type=int, default=300)
    f4.add_argument("--epoch", type=int, default=30,
                    help="cycles per epoch")
    f4.add_argument("--seed", type=int, default=4)
    f4.add_argument(
        "--membership", choices=list(MEMBERSHIP_NAMES), default="oracle",
        help="partner-draw layer: the idealized uniform oracle or "
             "Newscast partial views (no global oracle anywhere)",
    )
    f4.add_argument(
        "--churn-trace",
        choices=["oscillating", "diurnal", "flash", "sessions"],
        default="oscillating",
        help="churn workload: the historical closed-form oscillation, "
             "or a trace-driven diurnal wave / flash crowd / session "
             "workload replayed from per-cycle join+leave counts",
    )
    f4.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write periodic checkpoints here (atomic npz + manifest); "
             "the run becomes resumable after a crash or SIGKILL",
    )
    f4.add_argument(
        "--checkpoint-every", type=int, default=10, metavar="CYCLES",
        help="cycles between checkpoints when --checkpoint-dir is set",
    )
    f4.add_argument(
        "--resume", default=None, metavar="CHECKPOINT",
        help="resume from a checkpoint manifest (or a directory, which "
             "picks the newest intact checkpoint) instead of starting "
             "from cycle 0; runs the remaining cycles bitwise-identically",
    )
    _add_backend_options(f4)
    f4.set_defaults(func=_cmd_figure4)

    monitor = sub.add_parser("monitor", help="AggregationService demo")
    monitor.add_argument("--n", type=int, default=1000)
    monitor.add_argument("--cycles", type=int, default=30)
    monitor.add_argument("--seed", type=int, default=9)
    _add_backend_options(monitor)
    monitor.set_defaults(func=_cmd_monitor)

    scale_cmd = sub.add_parser(
        "scale", help="time the kernel backends on one scenario"
    )
    scale_cmd.add_argument("--n", type=int, default=100000)
    scale_cmd.add_argument("--cycles", type=int, default=10)
    scale_cmd.add_argument("--loss", type=float, default=0.0)
    scale_cmd.add_argument("--seed", type=int, default=11)
    scale_cmd.add_argument(
        "--backend", type=_scale_backend_arg, default="both", metavar="SPEC",
        help="backend spec, a comma-separated comparison list "
             "(e.g. vectorized,sharded:4), 'both' (reference+vectorized) "
             "or 'all' (adds sharded)",
    )
    scale_cmd.add_argument(
        "--workers", type=_workers_arg, default="auto", metavar="W",
        help="worker count for --backend sharded: a positive integer "
             "or 'auto' (the default)",
    )
    scale_cmd.set_defaults(func=_cmd_scale)

    robustness = sub.add_parser(
        "robustness",
        help="adversary sweep: estimation error vs fraction × churn × "
             "topology",
    )
    robustness.add_argument(
        "--config", default=None, metavar="PATH",
        help="declarative sweep config (JSON, or YAML with pyyaml); "
             "explicit flags override its keys",
    )
    robustness.add_argument("--n", type=int, default=None,
                            help="network size (default 2000 without "
                                 "--config)")
    robustness.add_argument("--runs", type=int, default=None)
    robustness.add_argument("--cycles", type=int, default=None)
    robustness.add_argument("--epoch", type=int, default=None,
                            help="cycles per epoch in churn cells")
    robustness.add_argument("--value", type=float, default=None,
                            help="the injected / reported lie value")
    robustness.add_argument("--seed", type=int, default=None)
    robustness.add_argument(
        "--fractions", type=_float_list, default=None, metavar="F,F,...",
        help="adversary fractions (default 0,0.05,0.1,0.2)",
    )
    robustness.add_argument(
        "--churn-rates", type=_float_list, default=None, metavar="R,R,...",
        help="per-cycle churn rates as fractions of N (default 0,0.01)",
    )
    robustness.add_argument(
        "--kinds", default=None, metavar="K,K,...",
        help="adversary kinds (default lying,inject)",
    )
    robustness.add_argument(
        "--topologies", default=None, metavar="T,T,...",
        help="overlays for static cells (default complete,regular20)",
    )
    robustness.add_argument(
        "--messages", action="store_true",
        help="run the message-fault degradation sweep instead "
             "(convergence factor + mass drift vs loss rate × retry "
             "policy)",
    )
    robustness.add_argument(
        "--loss-rates", type=_float_list, default=None, metavar="P,P,...",
        help="[--messages] loss rates (default 0,0.02,0.05,0.1,0.2)",
    )
    robustness.add_argument(
        "--retry", default=None, metavar="POLICY,POLICY,...",
        help="[--messages] retry policies "
             "(default none,retransmit,redraw,push_only)",
    )
    robustness.add_argument(
        "--directions", default=None, metavar="D,D,...",
        help="[--messages] loss directions (default request,reply)",
    )
    robustness.add_argument(
        "--duplication", type=float, default=None,
        help="[--messages] per-reply duplication probability (default 0)",
    )
    robustness.add_argument(
        "--svg", default=None, metavar="PATH",
        help="write the robustness-report figure to PATH",
    )
    _add_backend_options(robustness)
    robustness.set_defaults(func=_cmd_robustness)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _resolve_backend(parser, args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
