"""Erdős–Rényi G(n, p) random graphs.

Not used directly in the paper's figures, but the natural "unbiased
random topology" against which the fixed-view-size graphs can be
compared in the topology ablation (experiment A1).
"""

from __future__ import annotations

import numpy as np

from ..errors import TopologyError
from ..rng import SeedLike, make_rng
from .base import AdjacencyTopology


class ErdosRenyiTopology(AdjacencyTopology):
    """G(n, p): each of the n·(n−1)/2 possible edges present with prob. p.

    Sampling is done by drawing the edge *count* from the binomial and
    then drawing that many distinct index pairs, which is O(m) rather
    than O(n²) for sparse graphs.
    """

    def __init__(self, n: int, p: float, *, seed: SeedLike = None):
        if not 0.0 <= p <= 1.0:
            raise TopologyError(f"edge probability must be in [0, 1], got {p}")
        rng = make_rng(seed)
        total_pairs = n * (n - 1) // 2
        m = int(rng.binomial(total_pairs, p)) if total_pairs > 0 else 0
        chosen = rng.choice(total_pairs, size=m, replace=False) if m else np.empty(0, int)
        edges = [self._unrank(int(c), n) for c in chosen]
        adjacency: list = [[] for _ in range(n)]
        for i, j in edges:
            adjacency[i].append(j)
            adjacency[j].append(i)
        super().__init__(adjacency, validate=False)
        self._p = p

    @property
    def p(self) -> float:
        """The edge probability."""
        return self._p

    @staticmethod
    def _unrank(rank: int, n: int):
        """Map ``rank`` in [0, C(n,2)) to the pair (i, j), i < j.

        Uses the row-major order of the strictly upper triangle.
        """
        i = 0
        remaining = rank
        row_len = n - 1
        while remaining >= row_len:
            remaining -= row_len
            i += 1
            row_len -= 1
        return i, i + 1 + remaining
