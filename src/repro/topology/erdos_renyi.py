"""Erdős–Rényi G(n, p) random graphs.

Not used directly in the paper's figures, but the natural "unbiased
random topology" against which the fixed-view-size graphs can be
compared in the topology ablation (experiment A1) and the sparse-overlay
scale benchmark (``benchmarks/bench_sparse.py``).

Sampling draws the edge *count* from the binomial and then that many
distinct pair ranks, unranked into (i, j) index pairs — everything
vectorized, so a 100 000-node overlay with ~10⁶ edges builds in well
under a second (the former per-rank Python unranking was O(n) per edge
and the distinct-rank draw materialized the full C(n, 2) population).
"""

from __future__ import annotations

import numpy as np

from ..errors import TopologyError
from ..rng import SeedLike, make_rng
from .base import AdjacencyTopology, Topology


def _sample_distinct_ranks(total: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """``m`` distinct uniform draws from ``[0, total)`` without ever
    materializing the population.

    Small populations take a plain partial shuffle; sparse regimes
    (``m ≪ total``, the G(n, p) norm) collect distinct values from
    over-drawn iid batches — the collected set is exchangeable over the
    population, so a uniform ``m``-subset of it is a uniform
    ``m``-subset of the population.
    """
    if m == 0:
        return np.empty(0, dtype=np.int64)
    if total <= 4 * m or total <= (1 << 20):
        return rng.permutation(total)[:m].astype(np.int64)
    distinct = np.unique(rng.integers(0, total, size=m + (m >> 3) + 16))
    while len(distinct) < m:
        distinct = np.union1d(distinct, rng.integers(0, total, size=m))
    if len(distinct) == m:
        return distinct
    keep = rng.choice(len(distinct), size=m, replace=False)
    return distinct[keep]


class ErdosRenyiTopology(AdjacencyTopology):
    """G(n, p): each of the n·(n−1)/2 possible edges present with prob. p.

    Sampling is O(m log m) for m edges: binomial edge count, distinct
    rank draw, vectorized unranking, and a direct CSR build (no per-row
    Python adjacency lists).
    """

    def __init__(self, n: int, p: float, *, seed: SeedLike = None):
        if not 0.0 <= p <= 1.0:
            raise TopologyError(f"edge probability must be in [0, 1], got {p}")
        Topology.__init__(self, n)
        rng = make_rng(seed)
        total_pairs = n * (n - 1) // 2
        m = int(rng.binomial(total_pairs, p)) if total_pairs > 0 else 0
        ranks = _sample_distinct_ranks(total_pairs, m, rng)
        i, j = self._unrank_array(ranks, n)
        # duplicate each undirected edge into both directions and sort
        # by (source, destination): that IS the CSR flat array
        src = np.concatenate((i, j))
        dst = np.concatenate((j, i))
        order = np.lexsort((dst, src))
        flat = dst[order]
        degrees = np.bincount(src, minlength=n).astype(np.int64)
        self._init_csr(flat, degrees, validate=False)
        self._p = p

    @property
    def p(self) -> float:
        """The edge probability."""
        return self._p

    @staticmethod
    def _unrank_array(ranks: np.ndarray, n: int):
        """Vectorized :meth:`_unrank`: searchsorted over the row offsets
        of the strictly upper triangle (row i holds ``n - 1 - i``
        pairs)."""
        rows = np.arange(n, dtype=np.int64)
        row_offsets = rows * (n - 1) - rows * (rows - 1) // 2
        i = np.searchsorted(row_offsets, ranks, side="right") - 1
        j = ranks - row_offsets[i] + i + 1
        return i, j

    @staticmethod
    def _unrank(rank: int, n: int):
        """Map ``rank`` in [0, C(n,2)) to the pair (i, j), i < j, in the
        row-major order of the strictly upper triangle."""
        i, j = ErdosRenyiTopology._unrank_array(
            np.asarray([rank], dtype=np.int64), n
        )
        return int(i[0]), int(j[0])
