"""Ring lattices: each node connected to its ``k`` nearest neighbors.

A deliberately badly-mixing topology for the "more realistic
topologies" ablation (experiment A1): averaging on a ring converges far
slower than the paper's random overlays because information moves a
constant distance per cycle.
"""

from __future__ import annotations

from ..errors import TopologyError
from .base import AdjacencyTopology


class RingTopology(AdjacencyTopology):
    """Ring lattice on ``n`` nodes, each linked to ``k`` nearest neighbors.

    ``k`` must be even (k/2 on each side) and satisfy ``2 <= k < n``.
    ``k=2`` is the plain cycle.
    """

    def __init__(self, n: int, k: int = 2):
        if k < 2 or k % 2 != 0:
            raise TopologyError(f"k must be a positive even integer, got {k}")
        if k >= n:
            raise TopologyError(f"k={k} must be smaller than n={n}")
        half = k // 2
        adjacency = [
            [(i + offset) % n for offset in range(-half, half + 1) if offset != 0]
            for i in range(n)
        ]
        super().__init__(adjacency, validate=False)
        self._k = k

    @property
    def k(self) -> int:
        """Number of lattice neighbors per node."""
        return self._k
