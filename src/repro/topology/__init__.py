"""Overlay network topologies.

The paper's analysis assumes either a fully connected overlay or a
connected random overlay with a fixed view size (20-regular random graphs
in the experiments of Figure 3). Section 5 names "more realistic
topologies" as future work; this package therefore also ships ring
lattices, Watts–Strogatz small worlds, Barabási–Albert scale-free graphs
and stars so that the ablation benchmarks can probe them.
"""

from .base import Topology, AdjacencyTopology
from .complete import CompleteTopology
from .random_regular import RandomRegularTopology
from .erdos_renyi import ErdosRenyiTopology
from .ring import RingTopology
from .smallworld import WattsStrogatzTopology
from .scale_free import BarabasiAlbertTopology
from .star import StarTopology
from .analysis import (
    connected_components,
    is_connected,
    degree_statistics,
    clustering_coefficient,
    estimate_diameter,
)

__all__ = [
    "Topology",
    "AdjacencyTopology",
    "CompleteTopology",
    "RandomRegularTopology",
    "ErdosRenyiTopology",
    "RingTopology",
    "WattsStrogatzTopology",
    "BarabasiAlbertTopology",
    "StarTopology",
    "connected_components",
    "is_connected",
    "degree_statistics",
    "clustering_coefficient",
    "estimate_diameter",
]
