"""Structural analysis helpers for overlay topologies.

The paper's assumptions require *connected* overlays; these functions
verify that and report the degree statistics behind the "costs are
distributed very smoothly over the network" claim (§5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, TYPE_CHECKING

import numpy as np

from ..errors import TopologyError
from ..rng import SeedLike, make_rng

if TYPE_CHECKING:  # pragma: no cover
    from .base import Topology


def connected_components(topology: "Topology") -> List[List[int]]:
    """Connected components via BFS, each sorted, largest first."""
    n = topology.n
    seen = np.zeros(n, dtype=bool)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        queue = deque([start])
        seen[start] = True
        component = []
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbor in topology.neighbors(node):
                neighbor = int(neighbor)
                if not seen[neighbor]:
                    seen[neighbor] = True
                    queue.append(neighbor)
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


def is_connected(topology: "Topology") -> bool:
    """Whether the overlay is a single connected component."""
    return len(connected_components(topology)) == 1


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of the degree distribution of an overlay."""

    minimum: int
    maximum: int
    mean: float
    std: float

    @property
    def is_regular(self) -> bool:
        """True when every node has the same degree."""
        return self.minimum == self.maximum


def degree_statistics(topology: "Topology") -> DegreeStatistics:
    """Min / max / mean / std of the node degrees."""
    degrees = np.asarray([topology.degree(i) for i in range(topology.n)])
    return DegreeStatistics(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        std=float(degrees.std()),
    )


def clustering_coefficient(topology: "Topology", node: int) -> float:
    """Local clustering coefficient of ``node`` (0 for degree < 2)."""
    neighbors = [int(x) for x in topology.neighbors(node)]
    k = len(neighbors)
    if k < 2:
        return 0.0
    neighbor_set = set(neighbors)
    links = 0
    for u in neighbors:
        links += sum(1 for v in topology.neighbors(u) if int(v) in neighbor_set)
    links //= 2  # each triangle edge counted from both sides
    return links / (k * (k - 1) / 2)


def estimate_diameter(
    topology: "Topology", *, samples: int = 16, seed: SeedLike = None
) -> int:
    """Lower bound on the diameter via BFS from random sample nodes.

    Exact diameters are O(n·m); a sampled bound is enough for sanity
    checks ("random 20-regular graphs have logarithmic diameter").
    Raises :class:`TopologyError` on disconnected graphs.
    """
    if not is_connected(topology):
        raise TopologyError("diameter undefined for a disconnected topology")
    rng = make_rng(seed)
    n = topology.n
    best = 0
    sources = rng.choice(n, size=min(samples, n), replace=False)
    for source in sources:
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([int(source)])
        while queue:
            node = queue.popleft()
            for neighbor in topology.neighbors(node):
                neighbor = int(neighbor)
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        best = max(best, int(dist.max()))
    return best
