"""Watts–Strogatz small-world graphs.

Interpolates between the ring lattice (rewiring probability 0) and a
random-ish graph (probability 1), probing how much randomness the
averaging protocol needs to recover near-paper convergence rates.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..rng import SeedLike, make_rng
from .base import AdjacencyTopology


class WattsStrogatzTopology(AdjacencyTopology):
    """Watts–Strogatz rewiring of a ring lattice.

    Parameters
    ----------
    n, k:
        Ring-lattice parameters (``k`` even, ``k < n``).
    beta:
        Probability that each clockwise lattice edge is rewired to a
        uniformly random non-duplicate endpoint.
    seed:
        Seed or generator.
    """

    def __init__(self, n: int, k: int, beta: float, *, seed: SeedLike = None):
        if k < 2 or k % 2 != 0:
            raise TopologyError(f"k must be a positive even integer, got {k}")
        if k >= n:
            raise TopologyError(f"k={k} must be smaller than n={n}")
        if not 0.0 <= beta <= 1.0:
            raise TopologyError(f"beta must be in [0, 1], got {beta}")
        rng = make_rng(seed)
        half = k // 2
        neighbor_sets = [set() for _ in range(n)]

        def add(i, j):
            neighbor_sets[i].add(j)
            neighbor_sets[j].add(i)

        def remove(i, j):
            neighbor_sets[i].discard(j)
            neighbor_sets[j].discard(i)

        for i in range(n):
            for offset in range(1, half + 1):
                add(i, (i + offset) % n)
        for i in range(n):
            for offset in range(1, half + 1):
                j = (i + offset) % n
                if j not in neighbor_sets[i]:
                    continue  # already rewired away
                if rng.random() >= beta:
                    continue
                candidates = [
                    t for t in range(n) if t != i and t not in neighbor_sets[i]
                ]
                if not candidates:
                    continue
                target = candidates[int(rng.integers(0, len(candidates)))]
                remove(i, j)
                add(i, target)
        super().__init__([sorted(s) for s in neighbor_sets], validate=False)
        self._beta = beta
        self._k = k

    @property
    def beta(self) -> float:
        """The rewiring probability."""
        return self._beta

    @property
    def k(self) -> int:
        """The underlying lattice degree."""
        return self._k
