"""The fully connected overlay used throughout the paper's analysis."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import TopologyError
from ..rng import choice_excluding
from .base import Topology


class CompleteTopology(Topology):
    """Complete graph on ``n`` nodes with O(1) memory.

    Neighbor queries are computed on demand so that the paper's
    N = 100 000 fully connected experiments do not require storing
    ~5·10⁹ edges.
    """

    def __init__(self, n: int):
        super().__init__(n)
        if n < 2:
            raise TopologyError("a complete topology needs at least two nodes")

    def neighbors(self, node: int) -> np.ndarray:
        self._check_node(node)
        ids = np.arange(self.n, dtype=np.int64)
        return ids[ids != node]

    def degree(self, node: int) -> int:
        self._check_node(node)
        return self.n - 1

    def random_neighbor(self, node: int, rng: np.random.Generator) -> int:
        self._check_node(node)
        return choice_excluding(rng, self.n, node)

    def random_edge(self, rng: np.random.Generator) -> Tuple[int, int]:
        i = int(rng.integers(0, self.n))
        return i, choice_excluding(rng, self.n, i)

    def edge_count(self) -> int:
        return self.n * (self.n - 1) // 2

    def has_edge(self, i: int, j: int) -> bool:
        self._check_node(i)
        self._check_node(j)
        return i != j

    def random_neighbor_array(
        self,
        nodes: np.ndarray,
        rng: np.random.Generator,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        nodes = np.asarray(nodes)
        draws = rng.integers(0, self.n - 1, size=len(nodes))
        draws += draws >= nodes
        if out is None:
            return draws
        out[:] = draws
        return out
