"""Star topology — the worst case for the paper's "no performance
bottleneck" claim: every exchange involves the hub."""

from __future__ import annotations

from ..errors import TopologyError
from .base import AdjacencyTopology


class StarTopology(AdjacencyTopology):
    """Node 0 is the hub; every other node connects only to it."""

    def __init__(self, n: int):
        if n < 2:
            raise TopologyError("a star needs at least two nodes")
        adjacency = [list(range(1, n))] + [[0] for _ in range(n - 1)]
        super().__init__(adjacency, validate=False)

    @property
    def hub(self) -> int:
        """The id of the hub node."""
        return 0
