"""Barabási–Albert preferential-attachment graphs.

Scale-free overlays have hubs; the paper's "no performance peaks"
property (§5) relies on the degree distribution being flat, so BA graphs
make an instructive counterpoint in the topology ablation.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..rng import SeedLike, make_rng
from .base import AdjacencyTopology


class BarabasiAlbertTopology(AdjacencyTopology):
    """Barabási–Albert graph: nodes arrive one by one and attach ``m``
    edges preferentially to high-degree targets.

    Starts from a star on ``m + 1`` nodes so early degrees are non-zero.
    Preferential attachment is implemented with the standard
    repeated-endpoint list trick, giving O(total edges) construction.
    """

    def __init__(self, n: int, m: int, *, seed: SeedLike = None):
        if m < 1:
            raise TopologyError(f"m must be positive, got {m}")
        if n <= m:
            raise TopologyError(f"need n > m, got n={n}, m={m}")
        rng = make_rng(seed)
        neighbor_sets = [set() for _ in range(n)]
        endpoint_pool: list = []

        def add(i, j):
            neighbor_sets[i].add(j)
            neighbor_sets[j].add(i)
            endpoint_pool.append(i)
            endpoint_pool.append(j)

        for leaf in range(1, m + 1):  # seed star
            add(0, leaf)
        for new in range(m + 1, n):
            targets = set()
            while len(targets) < m:
                pick = endpoint_pool[int(rng.integers(0, len(endpoint_pool)))]
                if pick != new:
                    targets.add(pick)
            for t in targets:
                add(new, t)
        super().__init__([sorted(s) for s in neighbor_sets], validate=False)
        self._m = m

    @property
    def m(self) -> int:
        """Edges attached per arriving node."""
        return self._m
