"""Random k-regular graphs — the paper's "random topology with a fixed
view size of 20".

Generated with the pairing (configuration) model followed by *edge-swap
repair*: ``k`` stubs per node are shuffled and paired, then every
self-loop or parallel edge is removed by a double-edge swap with a
random valid partner pair. Whole-attempt rejection is hopeless for
k = 20 (collision probability ≈ 1), while repair touches only the few
offending pairs and preserves the degree sequence exactly, giving an
asymptotically uniform sample in practice.
"""

from __future__ import annotations

import numpy as np

from ..errors import TopologyError
from ..rng import SeedLike, make_rng
from .base import AdjacencyTopology
from .analysis import is_connected


def _edge_key(i: int, j: int, n: int) -> int:
    return (i * n + j) if i < j else (j * n + i)


def _pairing_with_repair(n: int, k: int, rng: np.random.Generator):
    """One pairing-model draw with double-edge-swap repair.

    Returns the pair list or None if repair failed to converge (then the
    caller redraws).
    """
    stubs = np.repeat(np.arange(n, dtype=np.int64), k)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2).tolist()
    m = len(pairs)

    edge_count: dict = {}
    for x, y in pairs:
        if x != y:
            key = _edge_key(x, y, n)
            edge_count[key] = edge_count.get(key, 0) + 1

    def is_bad(index: int) -> bool:
        x, y = pairs[index]
        return x == y or edge_count[_edge_key(x, y, n)] > 1

    bad = [index for index in range(m) if is_bad(index)]
    max_swaps = 200 * max(len(bad), 1) + 1000
    swaps = 0
    while bad:
        index = bad.pop()
        if not is_bad(index):
            continue  # fixed as a side effect of an earlier swap
        fixed = False
        while swaps < max_swaps and not fixed:
            swaps += 1
            other = int(rng.integers(0, m))
            if other == index:
                continue
            x, y = pairs[index]
            u, v = pairs[other]
            # two possible double-edge swaps
            for a, b, c, d in ((x, u, y, v), (x, v, y, u)):
                if a == b or c == d:
                    continue
                key_ab = _edge_key(a, b, n)
                key_cd = _edge_key(c, d, n)
                if key_ab == key_cd:
                    continue
                occupied = dict.get  # local alias for speed
                count_ab = occupied(edge_count, key_ab, 0)
                count_cd = occupied(edge_count, key_cd, 0)
                # the current (valid) keys of the two pairs go away
                for old_x, old_y in (pairs[index], pairs[other]):
                    if old_x != old_y:
                        old_key = _edge_key(old_x, old_y, n)
                        if old_key == key_ab:
                            count_ab -= 1
                        if old_key == key_cd:
                            count_cd -= 1
                if count_ab > 0 or count_cd > 0:
                    continue
                # apply the swap
                for old_x, old_y in (pairs[index], pairs[other]):
                    if old_x != old_y:
                        old_key = _edge_key(old_x, old_y, n)
                        edge_count[old_key] -= 1
                        if edge_count[old_key] == 0:
                            del edge_count[old_key]
                pairs[index] = [a, b]
                pairs[other] = [c, d]
                edge_count[key_ab] = edge_count.get(key_ab, 0) + 1
                edge_count[key_cd] = edge_count.get(key_cd, 0) + 1
                if is_bad(other):
                    bad.append(other)
                fixed = True
                break
        if not fixed:
            return None
    return pairs


class RandomRegularTopology(AdjacencyTopology):
    """Uniform-ish random k-regular graph on ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes; ``n * k`` must be even and ``k < n``.
    k:
        View size (degree). The paper uses ``k = 20``.
    seed:
        Seed or generator for reproducibility.
    require_connected:
        When true (default), regenerate until the graph is connected,
        matching the paper's assumption of a *connected* random overlay.
        (For k >= 3 a random regular graph is connected w.h.p., so
        retries are rare.)
    max_attempts:
        Safety bound on full redraws.
    """

    def __init__(
        self,
        n: int,
        k: int,
        *,
        seed: SeedLike = None,
        require_connected: bool = True,
        max_attempts: int = 50,
    ):
        if k < 1:
            raise TopologyError(f"degree must be positive, got k={k}")
        if k >= n:
            raise TopologyError(f"degree k={k} must be smaller than n={n}")
        if (n * k) % 2 != 0:
            raise TopologyError(f"n*k must be even, got n={n}, k={k}")
        rng = make_rng(seed)
        adjacency = self._generate(n, k, rng, max_attempts, require_connected)
        super().__init__(adjacency, validate=False)
        self._k = k

    @property
    def k(self) -> int:
        """The view size (uniform degree)."""
        return self._k

    @staticmethod
    def _generate(n, k, rng, max_attempts, require_connected):
        for _ in range(max_attempts):
            pairs = _pairing_with_repair(n, k, rng)
            if pairs is None:
                continue
            adjacency = [[] for _ in range(n)]
            for i, j in pairs:
                adjacency[i].append(j)
                adjacency[j].append(i)
            if require_connected:
                topo = AdjacencyTopology(adjacency, validate=False)
                if not is_connected(topo):
                    continue
            return adjacency
        raise TopologyError(
            f"failed to generate a random {k}-regular graph on {n} nodes "
            f"after {max_attempts} attempts"
        )
