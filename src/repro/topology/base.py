"""Topology abstractions.

A :class:`Topology` is an undirected graph over node ids ``0 .. n-1``. It
is the object the pair selectors (``repro.avg.pair_selectors``) and the
protocol layer (``repro.core``) consult to find communication partners.

Two families exist:

* :class:`CompleteTopology` — neighbors are computed on the fly, nothing
  is stored (the paper's "fully connected" case scales to N = 100 000).
* :class:`AdjacencyTopology` — an explicit adjacency structure, the base
  of every sparse graph in this package.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TopologyError
from ..rng import choice_excluding


class Topology(ABC):
    """An undirected overlay graph over node ids ``0 .. n-1``."""

    def __init__(self, n: int):
        if n < 1:
            raise TopologyError(f"topology needs at least one node, got n={n}")
        self._n = int(n)

    @property
    def n(self) -> int:
        """Number of nodes in the overlay."""
        return self._n

    @abstractmethod
    def neighbors(self, node: int) -> Sequence[int]:
        """The neighbor ids of ``node`` (no self-loops, no duplicates)."""

    @abstractmethod
    def degree(self, node: int) -> int:
        """Number of neighbors of ``node``."""

    @abstractmethod
    def random_neighbor(self, node: int, rng: np.random.Generator) -> int:
        """A uniformly random neighbor of ``node``."""

    @abstractmethod
    def random_edge(self, rng: np.random.Generator) -> Tuple[int, int]:
        """A uniformly random edge, as an (i, j) pair with ``i != j``."""

    @abstractmethod
    def edge_count(self) -> int:
        """Number of undirected edges."""

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate all undirected edges as ``(i, j)`` with ``i < j``."""
        for i in range(self.n):
            for j in self.neighbors(i):
                if i < j:
                    yield (i, j)

    def has_edge(self, i: int, j: int) -> bool:
        """Whether ``i`` and ``j`` are neighbors.

        Generic fallback: a linear scan of ``neighbors(i)`` with no
        per-call allocation. Subclasses with stored adjacency override
        this with an O(1) set lookup (:class:`AdjacencyTopology`) or a
        closed form (:class:`~repro.topology.complete.CompleteTopology`).
        """
        self._check_node(i)
        self._check_node(j)
        return j in self.neighbors(i)

    def random_neighbor_array(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized :meth:`random_neighbor` for an array of node ids.

        The default implementation loops; regular topologies override it
        with a single vectorized draw. Used by the cycle-driven simulator
        for paper-scale runs.
        """
        return np.fromiter(
            (self.random_neighbor(int(v), rng) for v in nodes),
            dtype=np.int64,
            count=len(nodes),
        )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise TopologyError(f"node id {node} outside range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class AdjacencyTopology(Topology):
    """A topology backed by an explicit adjacency list.

    ``adjacency`` maps each node id to a numpy array of neighbor ids.
    The constructor validates symmetry and the absence of self-loops so
    that generator bugs surface immediately instead of skewing results.
    """

    def __init__(self, adjacency: Sequence[Sequence[int]], *, validate: bool = True):
        super().__init__(len(adjacency))
        self._adjacency: List[np.ndarray] = [
            np.asarray(sorted(set(int(x) for x in row)), dtype=np.int64)
            for row in adjacency
        ]
        if validate:
            self._validate()
        self._edge_array = self._build_edge_array()
        # built lazily on the first has_edge call; adjacency is
        # immutable so the cache never invalidates
        self._neighbor_sets: Optional[List[set]] = None

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int]], *, validate: bool = True
    ) -> "AdjacencyTopology":
        """Build a topology from an iterable of undirected edges."""
        adjacency: List[set] = [set() for _ in range(n)]
        for i, j in edges:
            if not (0 <= i < n and 0 <= j < n):
                raise TopologyError(f"edge ({i}, {j}) outside node range [0, {n})")
            if i == j:
                raise TopologyError(f"self-loop on node {i}")
            adjacency[i].add(j)
            adjacency[j].add(i)
        return cls([sorted(s) for s in adjacency], validate=validate)

    def _validate(self) -> None:
        neighbor_sets = [set(row.tolist()) for row in self._adjacency]
        for i, row in enumerate(self._adjacency):
            for j in row.tolist():
                if j == i:
                    raise TopologyError(f"self-loop on node {i}")
                if not 0 <= j < self.n:
                    raise TopologyError(f"node {i} lists out-of-range neighbor {j}")
                if i not in neighbor_sets[j]:
                    raise TopologyError(
                        f"asymmetric adjacency: {i} lists {j} but not vice versa"
                    )

    def _build_edge_array(self) -> np.ndarray:
        pairs = [(i, j) for i in range(self.n) for j in self._adjacency[i] if i < j]
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64)

    def neighbors(self, node: int) -> np.ndarray:
        self._check_node(node)
        return self._adjacency[node]

    def has_edge(self, i: int, j: int) -> bool:
        """O(1) membership test against cached adjacency sets (the
        base-class fallback would allocate-and-scan O(deg) per call)."""
        self._check_node(i)
        self._check_node(j)
        if self._neighbor_sets is None:
            self._neighbor_sets = [
                set(row.tolist()) for row in self._adjacency
            ]
        return j in self._neighbor_sets[i]

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adjacency[node])

    def random_neighbor(self, node: int, rng: np.random.Generator) -> int:
        row = self.neighbors(node)
        if len(row) == 0:
            raise TopologyError(f"node {node} has no neighbors")
        return int(row[rng.integers(0, len(row))])

    def random_edge(self, rng: np.random.Generator) -> Tuple[int, int]:
        if len(self._edge_array) == 0:
            raise TopologyError("topology has no edges")
        i, j = self._edge_array[rng.integers(0, len(self._edge_array))]
        return int(i), int(j)

    def edge_count(self) -> int:
        return len(self._edge_array)

    def edges(self) -> Iterator[Tuple[int, int]]:
        for i, j in self._edge_array:
            yield int(i), int(j)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` int64 array (read-only view)."""
        view = self._edge_array.view()
        view.flags.writeable = False
        return view

    def neighbor_matrix(self) -> np.ndarray:
        """``(n, k)`` neighbor matrix when the graph is regular.

        Enables fully vectorized random-neighbor draws for the
        paper-scale figures. Raises :class:`TopologyError` when degrees
        differ.
        """
        degrees = {len(row) for row in self._adjacency}
        if len(degrees) != 1:
            raise TopologyError("neighbor_matrix requires a regular graph")
        return np.vstack(self._adjacency)

    def random_neighbor_array(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        try:
            matrix = self.neighbor_matrix()
        except TopologyError:
            return super().random_neighbor_array(nodes, rng)
        picks = rng.integers(0, matrix.shape[1], size=len(nodes))
        return matrix[np.asarray(nodes, dtype=np.int64), picks]
