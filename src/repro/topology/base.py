"""Topology abstractions.

A :class:`Topology` is an undirected graph over node ids ``0 .. n-1``. It
is the object the pair selectors (``repro.avg.pair_selectors``) and the
protocol layer (``repro.core``) consult to find communication partners.

Two families exist:

* :class:`CompleteTopology` — neighbors are computed on the fly, nothing
  is stored (the paper's "fully connected" case scales to N = 100 000).
* :class:`AdjacencyTopology` — an explicit adjacency structure, the base
  of every sparse graph in this package. Stored as CSR (compressed
  sparse row): one flat int32 neighbor array plus int64 offsets and
  degrees, built once at construction. Every bulk query — the
  vectorized partner draw, the edge array, the regular-graph neighbor
  matrix — is a view or a single gather into those arrays, so sparse
  overlays run the paper-scale figures as fast as the complete graph.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TopologyError
from ..rng import choice_excluding


class Topology(ABC):
    """An undirected overlay graph over node ids ``0 .. n-1``."""

    def __init__(self, n: int):
        if n < 1:
            raise TopologyError(f"topology needs at least one node, got n={n}")
        self._n = int(n)

    @property
    def n(self) -> int:
        """Number of nodes in the overlay."""
        return self._n

    @abstractmethod
    def neighbors(self, node: int) -> Sequence[int]:
        """The neighbor ids of ``node`` (no self-loops, no duplicates)."""

    @abstractmethod
    def degree(self, node: int) -> int:
        """Number of neighbors of ``node``."""

    @abstractmethod
    def random_neighbor(self, node: int, rng: np.random.Generator) -> int:
        """A uniformly random neighbor of ``node``."""

    @abstractmethod
    def random_edge(self, rng: np.random.Generator) -> Tuple[int, int]:
        """A uniformly random edge, as an (i, j) pair with ``i != j``."""

    @abstractmethod
    def edge_count(self) -> int:
        """Number of undirected edges."""

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate all undirected edges as ``(i, j)`` with ``i < j``."""
        for i in range(self.n):
            for j in self.neighbors(i):
                if i < j:
                    yield (i, j)

    def has_edge(self, i: int, j: int) -> bool:
        """Whether ``i`` and ``j`` are neighbors.

        Generic fallback: a linear scan of ``neighbors(i)`` with no
        per-call allocation. Subclasses with stored adjacency override
        this with an O(1) set lookup (:class:`AdjacencyTopology`) or a
        closed form (:class:`~repro.topology.complete.CompleteTopology`).
        """
        self._check_node(i)
        self._check_node(j)
        return j in self.neighbors(i)

    def random_neighbor_array(
        self,
        nodes: np.ndarray,
        rng: np.random.Generator,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`random_neighbor` for an array of node ids.

        The default implementation loops; stored and complete topologies
        override it with a single vectorized draw. Used by the gossip
        kernel for paper-scale runs. ``out``, when given, must be a
        ``len(nodes)``-shaped integer buffer the draw is written into
        (the engine's :class:`~repro.kernel.engine.CyclePlan` passes a
        reusable per-cycle buffer).
        """
        result = np.fromiter(
            (self.random_neighbor(int(v), rng) for v in nodes),
            dtype=np.int64,
            count=len(nodes),
        )
        if out is None:
            return result
        out[:] = result
        return out

    def isolated_mask(self) -> Optional[np.ndarray]:
        """Boolean mask of zero-degree nodes, or ``None`` when the
        topology cannot contain any (the generic/complete case).

        The gossip kernel consults this once at engine construction:
        isolated nodes stay *alive* — their value still counts toward
        the true aggregate — but are skipped as initiators, since they
        have no neighbor to draw (the vectorized CSR draw would
        otherwise raise from deep inside the batch).
        """
        return None

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise TopologyError(f"node id {node} outside range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class AdjacencyTopology(Topology):
    """A topology backed by an explicit adjacency structure in CSR form.

    ``adjacency`` maps each node id to a sequence of neighbor ids. The
    constructor normalizes it (sorted, deduplicated) into a flat int32
    neighbor array plus int64 offsets/degrees, validating symmetry and
    the absence of self-loops so that generator bugs surface immediately
    instead of skewing results. The CSR arrays are immutable after
    construction; every bulk accessor returns a view into them.
    """

    def __init__(self, adjacency: Sequence[Sequence[int]], *, validate: bool = True):
        super().__init__(len(adjacency))
        rows = [
            np.asarray(sorted(set(int(x) for x in row)), dtype=np.int64)
            for row in adjacency
        ]
        degrees = np.fromiter(
            (len(row) for row in rows), dtype=np.int64, count=self.n
        )
        flat = (
            np.concatenate(rows)
            if degrees.sum() > 0
            else np.empty(0, dtype=np.int64)
        )
        self._init_csr(flat, degrees, validate=validate)

    def _init_csr(
        self, flat: np.ndarray, degrees: np.ndarray, *, validate: bool
    ) -> None:
        """Finish construction from a flat int64 neighbor array (rows
        concatenated in node order, each row sorted and deduplicated)
        and the per-node degree array. Subclasses with vectorized edge
        generators (:class:`~repro.topology.erdos_renyi
        .ErdosRenyiTopology`) call this directly after
        ``Topology.__init__`` and skip the per-row Python pass."""
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        if validate:
            self._validate_csr(flat, degrees)
        self._degrees = degrees
        self._offsets = offsets
        self._flat = flat.astype(np.int32)
        # CSR is immutable; neighbors()/neighbor_matrix() hand out
        # views, so freeze the backing array
        self._flat.flags.writeable = False
        self._edge_array = self._build_edge_array(flat, degrees)
        # built lazily on the first has_edge / neighbor_matrix call;
        # adjacency is immutable so the caches never invalidate
        self._neighbor_sets: Optional[List[set]] = None
        self._neighbor_matrix: Optional[np.ndarray] = None

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int]], *, validate: bool = True
    ) -> "AdjacencyTopology":
        """Build a topology from an iterable of undirected edges."""
        adjacency: List[set] = [set() for _ in range(n)]
        for i, j in edges:
            if not (0 <= i < n and 0 <= j < n):
                raise TopologyError(f"edge ({i}, {j}) outside node range [0, {n})")
            if i == j:
                raise TopologyError(f"self-loop on node {i}")
            adjacency[i].add(j)
            adjacency[j].add(i)
        return cls([sorted(s) for s in adjacency], validate=validate)

    def _validate_csr(self, flat: np.ndarray, degrees: np.ndarray) -> None:
        """Vectorized symmetry / self-loop / range validation: O(E log E)
        in numpy instead of the former per-entry Python loop."""
        if len(flat) == 0:
            return
        n = self.n
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        bad = (flat < 0) | (flat >= n)
        if bad.any():
            where = int(np.argmax(bad))
            raise TopologyError(
                f"node {int(src[where])} lists out-of-range neighbor "
                f"{int(flat[where])}"
            )
        loops = src == flat
        if loops.any():
            raise TopologyError(
                f"self-loop on node {int(src[int(np.argmax(loops))])}"
            )
        # i -> j exists without j -> i iff the directed edge key i*n+j
        # has no counterpart among the reversed keys
        missing = np.setdiff1d(src * n + flat, flat * n + src)
        if len(missing):
            i, j = divmod(int(missing[0]), n)
            raise TopologyError(
                f"asymmetric adjacency: {i} lists {j} but not vice versa"
            )

    def _build_edge_array(
        self, flat: np.ndarray, degrees: np.ndarray
    ) -> np.ndarray:
        src = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
        keep = src < flat
        return np.column_stack((src[keep], flat[keep]))

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of ``node`` — a read-only view into the
        CSR neighbor array (no per-call allocation)."""
        self._check_node(node)
        return self._flat[self._offsets[node]:self._offsets[node + 1]]

    def has_edge(self, i: int, j: int) -> bool:
        """O(1) membership test against cached adjacency sets (the
        base-class fallback would scan O(deg) per call)."""
        self._check_node(i)
        self._check_node(j)
        if self._neighbor_sets is None:
            self._neighbor_sets = [
                set(self.neighbors(node).tolist()) for node in range(self.n)
            ]
        return j in self._neighbor_sets[i]

    def degree(self, node: int) -> int:
        self._check_node(node)
        return int(self._degrees[node])

    def isolated_mask(self) -> Optional[np.ndarray]:
        """Zero-degree nodes of the CSR structure (see the base-class
        contract); ``None`` when every node has a neighbor."""
        if int(self._degrees.min(initial=1)) > 0:
            return None
        return self._degrees == 0

    def random_neighbor(self, node: int, rng: np.random.Generator) -> int:
        row = self.neighbors(node)
        if len(row) == 0:
            raise TopologyError(f"node {node} has no neighbors")
        return int(row[rng.integers(0, len(row))])

    def random_edge(self, rng: np.random.Generator) -> Tuple[int, int]:
        if len(self._edge_array) == 0:
            raise TopologyError("topology has no edges")
        i, j = self._edge_array[rng.integers(0, len(self._edge_array))]
        return int(i), int(j)

    def edge_count(self) -> int:
        return len(self._edge_array)

    def edges(self) -> Iterator[Tuple[int, int]]:
        for i, j in self._edge_array:
            yield int(i), int(j)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` int64 array (read-only view)."""
        view = self._edge_array.view()
        view.flags.writeable = False
        return view

    def neighbor_matrix(self) -> np.ndarray:
        """``(n, k)`` neighbor matrix when the graph is regular.

        A cached read-only reshape of the CSR neighbor array — building
        it is free and calling it every cycle costs nothing (it used to
        re-vstack the whole adjacency per call). Raises
        :class:`TopologyError` when degrees differ.
        """
        if self._neighbor_matrix is None:
            k = int(self._degrees[0]) if self.n else 0
            if not np.array_equal(
                self._degrees, np.full(self.n, k, dtype=np.int64)
            ):
                raise TopologyError("neighbor_matrix requires a regular graph")
            self._neighbor_matrix = self._flat.reshape(self.n, k)
        return self._neighbor_matrix

    def random_neighbor_array(
        self,
        nodes: np.ndarray,
        rng: np.random.Generator,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One vectorized CSR draw for *any* degree distribution:
        ``flat[offsets[nodes] + floor(u * degrees[nodes])]``. Consumes
        exactly one batched uniform draw regardless of regularity (the
        former fast path was regular-only and fell back to a per-node
        Python loop on irregular graphs)."""
        nodes = np.asarray(nodes)
        deg = self._degrees[nodes]
        if len(deg) and int(deg.min()) == 0:
            node = int(nodes[int(np.argmin(deg))])
            raise TopologyError(
                f"node {node} has no neighbors to draw from — the "
                f"gossip kernel skips isolated nodes as initiators "
                f"(Topology.isolated_mask); direct callers must filter "
                f"zero-degree nodes themselves"
            )
        picks = (rng.random(len(nodes)) * deg).astype(np.int64)
        # u < 1 strictly, but the product can round up to deg for large
        # degrees; clamp to keep the gather in-row
        np.minimum(picks, deg - 1, out=picks)
        picks += self._offsets[nodes]
        if out is None:
            return self._flat[picks].astype(np.int64)
        np.take(self._flat, picks, out=out)
        return out
