"""Message transport with latency and loss models.

The paper's analysis assumes communication "takes zero time" (§2) and
separately discusses the effects of message loss. The transport makes
both dimensions explicit: a :class:`LatencyModel` (zero by default to
match the theory) and a :class:`LossModel` (Bernoulli drop to exercise
the robustness experiments, A2 in DESIGN.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .engine import EventDrivenSimulator


@dataclass(frozen=True)
class Message:
    """An in-flight protocol message."""

    source: int
    destination: int
    payload: Any
    sent_at: float


class LatencyModel(ABC):
    """Samples a one-way message delay."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """A non-negative delay for one message."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units (0 = paper model)."""

    def __init__(self, delay: float = 0.0):
        if delay < 0:
            raise ConfigurationError(f"latency must be non-negative, got {delay}")
        self._delay = delay

    def sample(self, rng: np.random.Generator) -> float:
        return self._delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ConfigurationError(
                f"need 0 <= low <= high, got low={low}, high={high}"
            )
        self._low = low
        self._high = high

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self._low, self._high))


class ExponentialLatency(LatencyModel):
    """Exponentially distributed delay with the given mean."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ConfigurationError(f"mean latency must be positive, got {mean}")
        self._mean = mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))


class LossModel(ABC):
    """Decides whether a message is dropped."""

    @abstractmethod
    def is_lost(self, rng: np.random.Generator) -> bool:
        """True when the message should be silently dropped."""


class NoLoss(LossModel):
    """Reliable channel (the §2 baseline)."""

    def is_lost(self, rng: np.random.Generator) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Each message independently lost with probability ``p``."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"loss probability must be in [0, 1], got {p}")
        self._p = p

    @property
    def p(self) -> float:
        """The per-message drop probability."""
        return self._p

    def is_lost(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self._p)


class Transport:
    """Delivers messages through the event engine.

    ``deliver`` is a callback ``(Message) -> None`` — typically the
    network's dispatch into the destination node's protocol handler.
    Dropped messages are counted but never delivered, matching UDP-style
    gossip deployments.
    """

    def __init__(
        self,
        engine: EventDrivenSimulator,
        deliver: Callable[[Message], None],
        *,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        seed: SeedLike = None,
    ):
        self._engine = engine
        self._deliver = deliver
        self._latency = latency if latency is not None else ConstantLatency(0.0)
        self._loss = loss if loss is not None else NoLoss()
        self._rng = make_rng(seed)
        self.sent_count = 0
        self.lost_count = 0
        self.delivered_count = 0

    def send(self, source: int, destination: int, payload: Any) -> None:
        """Send ``payload``; it arrives after the sampled latency unless
        the loss model drops it."""
        self.sent_count += 1
        if self._loss.is_lost(self._rng):
            self.lost_count += 1
            return
        message = Message(
            source=source,
            destination=destination,
            payload=payload,
            sent_at=self._engine.now,
        )
        delay = self._latency.sample(self._rng)

        def deliver_now(message=message):
            self.delivered_count += 1
            self._deliver(message)

        self._engine.schedule_after(delay, deliver_now)
