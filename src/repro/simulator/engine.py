"""The discrete-event simulation engine.

A thin, deterministic event loop: components schedule callbacks at
absolute or relative times; :meth:`run_until` drains the queue up to a
horizon. All randomness lives in the components (they receive their own
RNG streams), so the engine itself is pure control flow.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SimulationError
from .events import Event, EventQueue


class EventDrivenSimulator:
    """Deterministic discrete-event loop.

    Time starts at 0.0. Events scheduled at identical timestamps run in
    scheduling order, which makes runs bit-reproducible given fixed
    component seeds.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current global simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        return self._queue.push(time, callback)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, callback)

    def run_until(self, horizon: float, *, max_events: Optional[int] = None) -> int:
        """Execute events with timestamp <= ``horizon``.

        Returns the number of events executed. ``max_events`` is a
        safety valve against runaway protocols (raises when exceeded).
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        executed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            event = self._queue.pop()
            assert event is not None  # peek_time said there is one
            self._now = event.time
            event.callback()
            executed += 1
            self._processed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before horizon {horizon}"
                )
        self._now = horizon
        return executed

    def run_until_idle(self, *, max_events: int = 10_000_000) -> int:
        """Execute events until the queue drains; returns the count."""
        executed = 0
        while True:
            event = self._queue.pop()
            if event is None:
                return executed
            self._now = event.time
            event.callback()
            executed += 1
            self._processed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
