"""PeerSim-style cycle-driven simulator.

Runs the Figure 1 protocol under the synchronous model the paper
analyzes: in each cycle every alive node, in a fixed order, contacts a
random neighbor and both adopt ``AGGREGATE(x_i, x_j)`` — exactly the
GETPAIR_SEQ discipline of §3.3.3. Supports per-exchange message loss
and crash-stop failures between cycles, which is how the A2 robustness
ablation runs at scale.

Since the unified-kernel refactor this class is a thin, API-stable
shell over :class:`repro.kernel.GossipEngine`: it builds a
single-instance :class:`~repro.kernel.Scenario` and delegates
execution, which is how it gains the ``backend`` parameter — pass
``backend="vectorized"`` (or leave the default ``"auto"`` at scale) to
run the structure-of-arrays batched path that reproduces the
sequential semantics bitwise.

Node churn and §4 epoch restarts are kernel-hosted too: pass a
``churn`` model (applied as alive-mask mutation with value-matrix row
recycling — node objects are never rebuilt) and/or an ``epochs`` spec,
and the simulator keeps delegating; both backends stay bitwise-equal
under every failure model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError
from ..kernel.engine import GossipEngine
from ..kernel.scenario import Scenario
from ..rng import SeedLike
from ..topology.base import Topology


@dataclass
class CycleRunResult:
    """Per-cycle trajectory of a cycle-driven run."""

    variances: List[float] = field(default_factory=list)
    means: List[float] = field(default_factory=list)
    exchange_counts: List[int] = field(default_factory=list)

    @property
    def variance_array(self) -> np.ndarray:
        """σ²₀ … σ²_T as an array."""
        return np.asarray(self.variances)


class CycleSimulator:
    """Synchronous cycle-driven execution of anti-entropy aggregation.

    Parameters
    ----------
    topology:
        Overlay to draw neighbors from.
    values:
        Initial approximations (x_i = a_i at cycle 0).
    aggregate:
        Pairwise combiner; default AGGREGATE_AVG.
    loss_probability:
        Probability that a given exchange fails entirely (both sides
        keep their values). Models symmetric message loss; asymmetric
        loss is only observable in the event-driven simulator.
    churn:
        Optional :class:`~repro.failures.churn.ChurnModel` (or a full
        :class:`~repro.kernel.ChurnSpec`): per-cycle joins/leaves
        applied by the kernel as alive-mask growth/shrink with row
        recycling. Requires a complete topology (the paper's uniform
        overlay).
    epochs:
        Optional :class:`~repro.kernel.EpochSpec` enabling §4 epoch
        restarts.
    seed:
        RNG seed or generator.
    backend:
        Kernel execution backend: ``"reference"``, ``"vectorized"`` or
        ``"auto"`` (default; picks by network size). Tracing forces the
        reference backend.
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        *,
        aggregate: Optional[AggregateFunction] = None,
        loss_probability: float = 0.0,
        trace=None,
        partition=None,
        churn=None,
        epochs=None,
        seed: SeedLike = None,
        backend: str = "auto",
    ):
        self.topology = topology
        self.aggregate = aggregate if aggregate is not None else MeanAggregate()
        scenario = Scenario(
            topology,
            np.asarray(values, dtype=np.float64),
            aggregates={self.aggregate.name: self.aggregate},
            loss_probability=loss_probability,
            partition=partition,
            churn=churn,
            epochs=epochs,
            seed=seed,
            backend=backend,
        )
        self._engine = GossipEngine(scenario, trace=trace)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the engine's backend resources (a sharded worker
        pool and its shared segment; no-op for in-process backends).
        The simulator is incremental, so closing is the caller's call —
        or use the simulator as a context manager."""
        self._engine.close()

    def __enter__(self) -> "CycleSimulator":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> None:
        self.close()

    # -- observation -----------------------------------------------------

    @property
    def backend_name(self) -> str:
        """The concrete kernel backend executing this simulator."""
        return self._engine.backend_name

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._engine.cycle

    @property
    def values(self) -> np.ndarray:
        """Approximations of *alive* nodes."""
        return self._engine.alive_column()

    @property
    def all_values(self) -> np.ndarray:
        """Approximations of every node, including crashed ones."""
        return self._engine.column()

    @property
    def alive_count(self) -> int:
        """Number of alive nodes."""
        return self._engine.alive_count

    def variance(self) -> float:
        """Unbiased variance of alive approximations (eq. 3)."""
        return self._engine.variance()

    def mean(self) -> float:
        """Mean of alive approximations."""
        return self._engine.mean()

    # -- failure injection --------------------------------------------------

    def crash(self, node_ids: Sequence[int]) -> None:
        """Crash-stop nodes; their approximations leave the system."""
        self._engine.crash(node_ids)

    # -- execution ---------------------------------------------------------

    def run_cycle(self) -> int:
        """One synchronous cycle (every alive node initiates once, in
        index order). Returns the number of successful exchanges."""
        return self._engine.run_cycle()

    def run(self, cycles: int) -> CycleRunResult:
        """Run ``cycles`` cycles, recording the variance trajectory."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        kernel_result = self._engine.run(cycles)
        name = kernel_result.primary
        # epoch-restarted runs skip per-instance trajectories (the
        # instance count may change per epoch); see KernelRunResult
        return CycleRunResult(
            variances=kernel_result.variances.get(name, []),
            means=kernel_result.means.get(name, []),
            exchange_counts=kernel_result.exchange_counts,
        )
