"""PeerSim-style cycle-driven simulator.

Runs the Figure 1 protocol under the synchronous model the paper
analyzes: in each cycle every alive node, in a fixed order, contacts a
random neighbor and both adopt ``AGGREGATE(x_i, x_j)`` — exactly the
GETPAIR_SEQ discipline of §3.3.3. Supports per-exchange message loss
and crash-stop failures between cycles, which is how the A2 robustness
ablation runs at scale.

For AGGREGATE_AVG the inner loop uses a specialized tight path (plain
Python lists); arbitrary :class:`AggregateFunction` objects go through
the generic path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..topology.base import Topology


@dataclass
class CycleRunResult:
    """Per-cycle trajectory of a cycle-driven run."""

    variances: List[float] = field(default_factory=list)
    means: List[float] = field(default_factory=list)
    exchange_counts: List[int] = field(default_factory=list)

    @property
    def variance_array(self) -> np.ndarray:
        """σ²₀ … σ²_T as an array."""
        return np.asarray(self.variances)


class CycleSimulator:
    """Synchronous cycle-driven execution of anti-entropy aggregation.

    Parameters
    ----------
    topology:
        Overlay to draw neighbors from.
    values:
        Initial approximations (x_i = a_i at cycle 0).
    aggregate:
        Pairwise combiner; default AGGREGATE_AVG.
    loss_probability:
        Probability that a given exchange fails entirely (both sides
        keep their values). Models symmetric message loss; asymmetric
        loss is only observable in the event-driven simulator.
    seed:
        RNG seed or generator.
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        *,
        aggregate: Optional[AggregateFunction] = None,
        loss_probability: float = 0.0,
        trace=None,
        partition=None,
        seed: SeedLike = None,
    ):
        if len(values) != topology.n:
            raise ConfigurationError(
                f"got {len(values)} values for a topology of {topology.n} nodes"
            )
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got {loss_probability}"
            )
        self.topology = topology
        self.aggregate = aggregate if aggregate is not None else MeanAggregate()
        self._values: List[float] = [float(v) for v in values]
        self._alive = np.ones(topology.n, dtype=bool)
        self._loss = loss_probability
        self._trace = trace  # optional ExchangeTrace; None = no telemetry
        self._partition = partition  # optional PartitionSchedule
        self._rng = make_rng(seed)
        self.cycle = 0

    # -- observation -----------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Approximations of *alive* nodes."""
        return np.asarray(self._values)[self._alive]

    @property
    def all_values(self) -> np.ndarray:
        """Approximations of every node, including crashed ones."""
        return np.asarray(self._values)

    @property
    def alive_count(self) -> int:
        """Number of alive nodes."""
        return int(self._alive.sum())

    def variance(self) -> float:
        """Unbiased variance of alive approximations (eq. 3)."""
        alive = self.values
        if len(alive) < 2:
            return 0.0
        return float(alive.var(ddof=1))

    def mean(self) -> float:
        """Mean of alive approximations."""
        return float(self.values.mean())

    # -- failure injection --------------------------------------------------

    def crash(self, node_ids: Sequence[int]) -> None:
        """Crash-stop nodes; their approximations leave the system."""
        for node_id in node_ids:
            if not 0 <= node_id < self.topology.n:
                raise ConfigurationError(f"node id {node_id} out of range")
            self._alive[node_id] = False

    # -- execution ---------------------------------------------------------

    def run_cycle(self) -> int:
        """One synchronous cycle (every alive node initiates once, in
        index order). Returns the number of successful exchanges."""
        rng = self._rng
        alive = self._alive
        initiators = np.nonzero(alive)[0]
        partners = self.topology.random_neighbor_array(initiators, rng)
        losses = (
            rng.random(len(initiators)) < self._loss
            if self._loss > 0.0
            else None
        )
        values = self._values
        exchanges = 0
        fast_mean = isinstance(self.aggregate, MeanAggregate) and self._trace is None
        combine = self.aggregate.combine
        trace = self._trace
        partition = self._partition
        partition_active = partition is not None and partition.active_at(self.cycle)
        alive_list = alive.tolist()
        for idx, (i, j) in enumerate(
            zip(initiators.tolist(), partners.tolist())
        ):
            if not alive_list[j]:
                continue  # contacted a crashed neighbor: exchange fails
            if losses is not None and losses[idx]:
                continue
            if partition_active and partition.blocks(self.cycle, i, j):
                continue  # exchange crosses the partition cut
            if fast_mean:
                midpoint = (values[i] + values[j]) * 0.5
                values[i] = midpoint
                values[j] = midpoint
            else:
                before_i, before_j = values[i], values[j]
                combined = combine(before_i, before_j)
                values[i] = combined
                values[j] = combined
                if trace is not None:
                    trace.record(
                        float(self.cycle), i, j, before_i, before_j, combined
                    )
            exchanges += 1
        self.cycle += 1
        return exchanges

    def run(self, cycles: int) -> CycleRunResult:
        """Run ``cycles`` cycles, recording the variance trajectory."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        result = CycleRunResult()
        result.variances.append(self.variance())
        result.means.append(self.mean())
        for _ in range(cycles):
            exchanges = self.run_cycle()
            result.variances.append(self.variance())
            result.means.append(self.mean())
            result.exchange_counts.append(exchanges)
        return result
