"""Execution substrates.

Two simulators are provided, mirroring the two levels at which the
paper reasons:

* :class:`EventDrivenSimulator` — a discrete-event engine with per-node
  clocks (optionally drifting), message latency and message loss. This
  exercises the *protocol* of Figure 1, including the randomized
  ``getWaitingTime`` variants of §3.3.2.
* :class:`CycleSimulator` (in :mod:`repro.simulator.cycle_sim`) — a
  PeerSim-style synchronous cycle-driven engine matching the AVG model
  of §3 exactly; this is what the paper-scale figures run on.
"""

from .events import Event, EventQueue
from .engine import EventDrivenSimulator
from .clock import Clock, DriftingClock, PerfectClock
from .transport import (
    Transport,
    Message,
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    ExponentialLatency,
    LossModel,
    NoLoss,
    BernoulliLoss,
)
from .metrics import TimeSeries, MetricsRecorder
from .trace import ExchangeRecord, ExchangeTrace

__all__ = [
    "Event",
    "EventQueue",
    "EventDrivenSimulator",
    "Clock",
    "PerfectClock",
    "DriftingClock",
    "Transport",
    "Message",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "TimeSeries",
    "MetricsRecorder",
    "ExchangeRecord",
    "ExchangeTrace",
]
