"""Per-node clocks.

The paper's theoretical model assumes "a hardware clock without drift
and a common point of reference in time" (§2). :class:`PerfectClock`
implements that model; :class:`DriftingClock` relaxes it (rate skew and
phase offset) so experiments can probe how sensitive the protocol is to
the assumption — the practical concern deferred to the companion
technical report [11].
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError


class Clock(ABC):
    """Maps between global simulation time and a node's local time."""

    @abstractmethod
    def local_time(self, global_time: float) -> float:
        """Local reading at global time."""

    @abstractmethod
    def global_time(self, local_time: float) -> float:
        """Global instant at which the clock shows ``local_time``."""

    def local_duration_to_global(self, duration: float) -> float:
        """Convert a local-time duration into a global-time duration."""
        return self.global_time(duration) - self.global_time(0.0)


class PerfectClock(Clock):
    """The §2 model: no drift, common reference (identity mapping)."""

    def local_time(self, global_time: float) -> float:
        return global_time

    def global_time(self, local_time: float) -> float:
        return local_time


class DriftingClock(Clock):
    """An affine clock: ``local = offset + rate * global``.

    ``rate`` close to 1 models crystal skew (e.g. 1 ± 1e-4); ``offset``
    models a missed synchronization point.
    """

    def __init__(self, *, rate: float = 1.0, offset: float = 0.0):
        if rate <= 0:
            raise ConfigurationError(f"clock rate must be positive, got {rate}")
        self._rate = rate
        self._offset = offset

    @property
    def rate(self) -> float:
        """Clock speed relative to true time."""
        return self._rate

    @property
    def offset(self) -> float:
        """Local reading at global time zero."""
        return self._offset

    def local_time(self, global_time: float) -> float:
        return self._offset + self._rate * global_time

    def global_time(self, local_time: float) -> float:
        return (local_time - self._offset) / self._rate
