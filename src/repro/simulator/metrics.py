"""Metric collection for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass
class TimeSeries:
    """An append-only (time, value) series."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one observation; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ConfigurationError(
                f"time went backwards in series {self.name!r}: "
                f"{time} < {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The series as (times, values) numpy arrays."""
        return np.asarray(self.times), np.asarray(self.values)

    def last(self) -> float:
        """Most recent value."""
        if not self.values:
            raise ConfigurationError(f"series {self.name!r} is empty")
        return self.values[-1]

    def __len__(self) -> int:
        return len(self.values)


class MetricsRecorder:
    """A named collection of :class:`TimeSeries`.

    Protocol code records scalars; experiment code reads them back by
    name. Unknown names are created on first use.
    """

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def record(self, name: str, time: float, value: float) -> None:
        """Record ``value`` at ``time`` in the series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name)
            self._series[name] = series
        series.record(time, value)

    def series(self, name: str) -> TimeSeries:
        """Retrieve a series; raises if it was never recorded."""
        try:
            return self._series[name]
        except KeyError:
            raise ConfigurationError(f"no series named {name!r}") from None

    def names(self) -> List[str]:
        """All recorded series names, sorted."""
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series
