"""Structured exchange tracing.

Optional telemetry for simulation runs: a bounded, append-only record of
every exchange (who contacted whom, at what time/cycle, with what
values). Used for post-hoc analysis — per-node load (the §5 "no
performance peaks" claim), pair-distribution audits, message-flow
debugging — without touching the hot paths when disabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ExchangeRecord:
    """One completed push-pull exchange."""

    time: float
    initiator: int
    responder: int
    value_before_initiator: float
    value_before_responder: float
    value_after: float


class ExchangeTrace:
    """A bounded trace of :class:`ExchangeRecord` entries.

    ``capacity`` bounds memory on long runs (ring-buffer semantics:
    oldest records are dropped first). ``enabled`` can be flipped to
    pause collection around warm-up phases.
    """

    def __init__(self, *, capacity: int = 1_000_000, enabled: bool = True):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._records: Deque[ExchangeRecord] = deque(maxlen=capacity)
        self.enabled = enabled
        self.dropped = 0
        self._capacity = capacity

    def record(
        self,
        time: float,
        initiator: int,
        responder: int,
        value_before_initiator: float,
        value_before_responder: float,
        value_after: float,
    ) -> None:
        """Append one exchange (no-op while disabled)."""
        if not self.enabled:
            return
        if len(self._records) == self._capacity:
            self.dropped += 1
        self._records.append(
            ExchangeRecord(
                time=time,
                initiator=initiator,
                responder=responder,
                value_before_initiator=value_before_initiator,
                value_before_responder=value_before_responder,
                value_after=value_after,
            )
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ExchangeRecord]:
        return iter(self._records)

    def clear(self) -> None:
        """Drop all records and reset the dropped counter."""
        self._records.clear()
        self.dropped = 0

    # -- analysis -----------------------------------------------------------

    def per_node_load(self, n: int) -> np.ndarray:
        """Communication count per node id across the trace."""
        counts = np.zeros(n, dtype=np.int64)
        for record in self._records:
            counts[record.initiator] += 1
            counts[record.responder] += 1
        return counts

    def load_imbalance(self, n: int) -> float:
        """max/mean of the per-node load (1.0 = perfectly flat)."""
        load = self.per_node_load(n)
        mean = load.mean()
        if mean == 0:
            raise ConfigurationError("trace is empty")
        return float(load.max() / mean)

    def between(self, start: float, end: float) -> List[ExchangeRecord]:
        """Records with ``start <= time < end``."""
        if start > end:
            raise ConfigurationError("start must not exceed end")
        return [r for r in self._records if start <= r.time < end]

    def mass_delta(self) -> float:
        """Net change of total mass implied by the traced exchanges.

        Each symmetric exchange is mass-conserving, so for a loss-free
        trace this is zero up to float noise; a nonzero value quantifies
        asymmetric-loss leakage when the caller traces one side only.
        """
        delta = 0.0
        for record in self._records:
            before = record.value_before_initiator + record.value_before_responder
            delta += 2 * record.value_after - before
        return delta
