"""Event primitives for the discrete-event engine.

Events are ordered by ``(time, sequence)``: the sequence number breaks
ties deterministically in insertion order, which keeps runs reproducible
when many events share a timestamp (e.g. a synchronized protocol start).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap but are skipped on pop —
    O(1) cancellation at the cost of a little heap garbage, the standard
    heapq idiom.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the engine will skip it."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time``; returns a handle
        usable for cancellation."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
