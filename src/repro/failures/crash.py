"""Crash-stop failure plans.

A :class:`CrashPlan` maps cycle numbers to sets of node ids that crash
*before* that cycle executes — the standard fail-stop model the paper's
robustness discussion assumes (crashed nodes silently stop; their
contribution to the average is lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng


@dataclass
class CrashPlan:
    """Cycle → list of node ids crashing at the start of that cycle."""

    crashes: Dict[int, List[int]] = field(default_factory=dict)

    def add(self, cycle: int, node_ids: Sequence[int]) -> None:
        """Schedule ``node_ids`` to crash before ``cycle`` runs."""
        if cycle < 0:
            raise ConfigurationError(f"cycle must be non-negative, got {cycle}")
        self.crashes.setdefault(cycle, []).extend(int(n) for n in node_ids)

    def crashing_at(self, cycle: int) -> List[int]:
        """Node ids crashing at ``cycle`` (empty list when none)."""
        return self.crashes.get(cycle, [])

    @property
    def total_crashes(self) -> int:
        """Total number of scheduled crashes."""
        return sum(len(ids) for ids in self.crashes.values())


def random_crash_plan(
    n: int,
    fraction: float,
    at_cycle: int,
    *,
    seed: SeedLike = None,
) -> CrashPlan:
    """Crash a random ``fraction`` of the ``n`` nodes at one cycle.

    The classic "kill X% of the network mid-run" robustness experiment.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    rng = make_rng(seed)
    count = int(round(n * fraction))
    victims = rng.choice(n, size=count, replace=False).tolist() if count else []
    plan = CrashPlan()
    if victims:
        plan.add(at_cycle, victims)
    return plan
