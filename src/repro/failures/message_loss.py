"""Deprecated home of the cycle-level loss schedules.

The schedule factories moved to :mod:`repro.kernel.messages`, where
they serve both the legacy symmetric :attr:`Scenario.loss_schedule`
and the asymmetric :class:`~repro.kernel.messages.MessageFaultSpec`
(independent request/reply schedules). This module remains importable
and behaves as before, but each symbol warns once per process on first
use; import from ``repro.kernel`` instead.
"""

from __future__ import annotations

import warnings
from typing import Callable

#: a schedule maps a cycle number to that cycle's loss probability
#: (the type alias is harmless to keep here; no warning for it)
LossSchedule = Callable[[int], float]

_warned: set = set()


def _warn_deprecated(name: str) -> None:
    """Emit a single :class:`DeprecationWarning` per symbol per
    process."""
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.failures.{name} is deprecated; use "
        f"repro.kernel.messages.{name} (re-exported as "
        f"repro.kernel.{name}) instead. The schedule factories moved "
        "to the kernel message-fault layer and this shell will be "
        "removed in a future release.",
        DeprecationWarning,
        stacklevel=3,
    )


def constant_loss(p: float) -> LossSchedule:
    """Deprecated shell over
    :func:`repro.kernel.messages.constant_loss`."""
    _warn_deprecated("constant_loss")
    # lazy import: repro.failures is imported by repro.kernel.scenario
    # (via failures.churn), so a module-level kernel import would cycle
    from ..kernel.messages import constant_loss as _constant_loss

    return _constant_loss(p)


def burst_loss(p_background: float, p_burst: float, burst_start: int,
               burst_end: int) -> LossSchedule:
    """Deprecated shell over
    :func:`repro.kernel.messages.burst_loss`."""
    _warn_deprecated("burst_loss")
    from ..kernel.messages import burst_loss as _burst_loss

    return _burst_loss(p_background, p_burst, burst_start, burst_end)
