"""Message-loss schedules for cycle-driven experiments.

The event-driven transport has its own per-message
:class:`~repro.simulator.transport.LossModel`; this module provides the
cycle-level counterpart: a loss probability as a function of the cycle
number, allowing time-varying loss (e.g. a lossy burst) in the A2
ablation.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError

#: a schedule maps a cycle number to that cycle's loss probability
LossSchedule = Callable[[int], float]


def constant_loss(p: float) -> LossSchedule:
    """A schedule that always returns ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"loss probability must be in [0, 1], got {p}")

    def schedule(cycle: int) -> float:
        return p

    return schedule


def burst_loss(p_background: float, p_burst: float, burst_start: int,
               burst_end: int) -> LossSchedule:
    """Background loss with a heavier burst during [burst_start, burst_end)."""
    for name, value in (("p_background", p_background), ("p_burst", p_burst)):
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    if burst_start > burst_end:
        raise ConfigurationError("burst_start must not exceed burst_end")

    def schedule(cycle: int) -> float:
        return p_burst if burst_start <= cycle < burst_end else p_background

    return schedule
