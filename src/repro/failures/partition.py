"""Network partition fault model.

Splits an overlay into disjoint groups for a window of cycles: during
the partition, exchanges crossing the cut fail (as if the WAN link were
down); after healing, gossip resumes globally. Used to demonstrate the
protocol's behavior under the classic split-brain scenario: each side
converges to *its own* average, then the network re-converges globally
after the heal.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng


class PartitionSchedule:
    """Assigns nodes to partition groups during [start, end) cycles.

    ``groups`` is a list of disjoint node-id lists covering 0..n-1.
    ``blocks(cycle, i, j)`` is the predicate the simulator consults per
    exchange.
    """

    def __init__(
        self,
        n: int,
        groups: Sequence[Sequence[int]],
        *,
        start: int,
        end: int,
    ):
        if start < 0 or end < start:
            raise ConfigurationError(
                f"need 0 <= start <= end, got start={start}, end={end}"
            )
        seen: set = set()
        for group in groups:
            for node in group:
                if not 0 <= node < n:
                    raise ConfigurationError(f"node id {node} out of range")
                if node in seen:
                    raise ConfigurationError(f"node {node} in two groups")
                seen.add(node)
        if seen != set(range(n)):
            raise ConfigurationError("groups must cover every node exactly once")
        self._assignment = np.empty(n, dtype=np.int64)
        for index, group in enumerate(groups):
            for node in group:
                self._assignment[node] = index
        self._start = start
        self._end = end

    @classmethod
    def random_split(
        cls, n: int, parts: int, *, start: int, end: int,
        seed: SeedLike = None,
    ) -> "PartitionSchedule":
        """A uniformly random split into ``parts`` near-equal groups."""
        if parts < 2:
            raise ConfigurationError(f"need at least 2 parts, got {parts}")
        if parts > n:
            raise ConfigurationError(f"cannot split {n} nodes into {parts} parts")
        permutation = make_rng(seed).permutation(n)
        groups: List[List[int]] = [[] for _ in range(parts)]
        for position, node in enumerate(permutation.tolist()):
            groups[position % parts].append(node)
        return cls(n, groups, start=start, end=end)

    def group_of(self, node: int) -> int:
        """The group index of ``node``."""
        return int(self._assignment[node])

    def active_at(self, cycle: int) -> bool:
        """Whether the partition is in effect at ``cycle``."""
        return self._start <= cycle < self._end

    def blocks(self, cycle: int, i: int, j: int) -> bool:
        """Whether an exchange between i and j fails at ``cycle``."""
        if not self.active_at(cycle):
            return False
        return self._assignment[i] != self._assignment[j]

    def blocks_array(
        self, cycle: int, i: np.ndarray, j: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`blocks` over aligned endpoint arrays."""
        if not self.active_at(cycle):
            return np.zeros(len(i), dtype=bool)
        return self._assignment[i] != self._assignment[j]

    def groups(self) -> List[List[int]]:
        """The node-id lists per group."""
        count = int(self._assignment.max()) + 1
        return [
            np.nonzero(self._assignment == g)[0].tolist() for g in range(count)
        ]
