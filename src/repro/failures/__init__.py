"""Fault models: message loss, crash-stop failures and churn traces."""

from .message_loss import LossSchedule, constant_loss
from .crash import CrashPlan, random_crash_plan
from .churn import (
    ChurnModel,
    NoChurn,
    OscillatingChurn,
    ConstantRateChurn,
    ChurnStep,
)
from .partition import PartitionSchedule

__all__ = [
    "PartitionSchedule",
    "LossSchedule",
    "constant_loss",
    "CrashPlan",
    "random_crash_plan",
    "ChurnModel",
    "NoChurn",
    "OscillatingChurn",
    "ConstantRateChurn",
    "ChurnStep",
]
