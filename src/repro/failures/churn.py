"""Churn models — who joins and who leaves at each cycle.

A :class:`ChurnModel` is purely declarative: it emits per-cycle
join/leave *counts* and nothing else. Execution belongs to the gossip
kernel — :class:`~repro.kernel.GossipEngine` queries the model once per
cycle and applies the step as alive-mask growth/shrink with
value-matrix row recycling (departed slots are handed to joiners), so
no node objects are ever created or destroyed at runtime. Wrap a model
in a :class:`~repro.kernel.ChurnSpec` to pick the rejoin policy and
joiner values, or pass it to ``Scenario(churn=...)`` directly for the
defaults. Keeping the failure model declarative means future execution
backends (async, sharded) inherit it unchanged.

Figure 4's scenario: the network size oscillates between 90 000 and
110 000 "for example on a day/night alternation basis", and *in
addition* 100 nodes are removed and 100 added every cycle to simulate
fluctuation. :class:`OscillatingChurn` reproduces exactly that shape
(parameterized so the benchmarks can scale it down).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ChurnStep:
    """The churn applied before one cycle: ``joins`` new nodes enter,
    ``leaves`` random existing nodes depart."""

    joins: int
    leaves: int


class ChurnModel(ABC):
    """Produces a :class:`ChurnStep` per cycle given the current size."""

    @abstractmethod
    def step(self, cycle: int, current_size: int) -> ChurnStep:
        """Churn to apply before ``cycle`` when the network currently
        has ``current_size`` nodes."""


class NoChurn(ChurnModel):
    """A static network."""

    def step(self, cycle: int, current_size: int) -> ChurnStep:
        return ChurnStep(joins=0, leaves=0)


class ConstantRateChurn(ChurnModel):
    """A fixed number of joins and leaves per cycle (steady-state churn)."""

    def __init__(self, joins_per_cycle: int, leaves_per_cycle: int):
        if joins_per_cycle < 0 or leaves_per_cycle < 0:
            raise ConfigurationError("churn rates must be non-negative")
        self._joins = joins_per_cycle
        self._leaves = leaves_per_cycle

    def step(self, cycle: int, current_size: int) -> ChurnStep:
        leaves = min(self._leaves, max(current_size - 1, 0))
        return ChurnStep(joins=self._joins, leaves=leaves)


class OscillatingChurn(ChurnModel):
    """The Figure 4 scenario.

    The target size follows a sinusoid ``mid + amplitude·sin(2π·cycle /
    period)`` (the day/night oscillation between ``mid − amplitude`` and
    ``mid + amplitude``); the model emits whatever joins/leaves move the
    current size toward the target, plus ``fluctuation`` simultaneous
    joins *and* leaves each cycle (the paper's 100 + 100).
    """

    def __init__(
        self,
        mid: int,
        amplitude: int,
        period: int,
        *,
        fluctuation: int = 0,
    ):
        if mid <= 0:
            raise ConfigurationError(f"mid size must be positive, got {mid}")
        if amplitude < 0 or amplitude >= mid:
            raise ConfigurationError(
                f"amplitude must be in [0, mid), got {amplitude}"
            )
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period}")
        if fluctuation < 0:
            raise ConfigurationError(
                f"fluctuation must be non-negative, got {fluctuation}"
            )
        self._mid = mid
        self._amplitude = amplitude
        self._period = period
        self._fluctuation = fluctuation

    def target_size(self, cycle: int) -> int:
        """The oscillation's target size at ``cycle``."""
        phase = 2.0 * math.pi * cycle / self._period
        return int(round(self._mid + self._amplitude * math.sin(phase)))

    def step(self, cycle: int, current_size: int) -> ChurnStep:
        delta = self.target_size(cycle) - current_size
        joins = self._fluctuation + max(delta, 0)
        leaves = self._fluctuation + max(-delta, 0)
        leaves = min(leaves, max(current_size - 1, 0))
        return ChurnStep(joins=joins, leaves=leaves)
