"""Robust aggregation via concurrent instances (the [11] direction).

The paper's §4 points to its companion technical report (Montresor,
Jelasity & Babaoglu, UBLCS-2003-16) for "mechanisms for adaptivity and
fault tolerance". The core trick there: run ``t`` concurrent,
independently seeded averaging instances in the same epoch and have
each node report the **median** of its ``t`` converged values.

Why it works: crash-related mass loss perturbs each instance
independently (different exchange sequences), so a median across
instances discards the outlier instances a few unlucky crashes produce,
at a bandwidth cost linear in ``t`` (values piggyback on the same
messages).

:class:`RobustAverager` implements this on the cycle-driven substrate
with optional message loss and crash injection, and reports both the
naive single-instance estimate and the median-of-instances estimate so
benchmarks can quantify the gain.

The kernel hosts the same defenses as reductions over per-node reports
(:mod:`repro.kernel.robust`: median / trimmed mean, median-of-runs,
count-capped MIN/MAX size estimation), composable with any backend and
any :class:`~repro.kernel.adversary.AdversarySpec`; this module remains
the self-contained multi-instance reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng, spawn_streams
from ..topology.base import Topology


@dataclass(frozen=True)
class RobustRunResult:
    """Outcome of one robust averaging run."""

    true_mean: float
    single_estimates: np.ndarray  # per-node estimate of instance 0
    median_estimates: np.ndarray  # per-node median across instances
    instances: int
    cycles: int

    @property
    def single_error(self) -> float:
        """Mean |error| of the single-instance estimates."""
        return float(np.abs(self.single_estimates - self.true_mean).mean())

    @property
    def median_error(self) -> float:
        """Mean |error| of the median-of-instances estimates."""
        return float(np.abs(self.median_estimates - self.true_mean).mean())


class RobustAverager:
    """Concurrent-instance averaging with median reporting.

    Parameters
    ----------
    topology:
        Overlay to gossip on.
    values:
        Per-node attribute values; the target is their mean.
    instances:
        Number of concurrent instances ``t`` (t = 1 degenerates to the
        plain protocol).
    loss_probability:
        Probability an entire exchange fails.
    seed:
        Master seed; each instance's pair sequence is independent.
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        *,
        instances: int = 5,
        loss_probability: float = 0.0,
        seed: SeedLike = None,
    ):
        if len(values) != topology.n:
            raise ConfigurationError(
                f"got {len(values)} values for a topology of {topology.n} nodes"
            )
        if instances < 1:
            raise ConfigurationError(
                f"instances must be >= 1, got {instances}"
            )
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got {loss_probability}"
            )
        self.topology = topology
        self.true_mean = float(np.mean(np.asarray(values, dtype=np.float64)))
        self._instances = instances
        self._loss = loss_probability
        # state[k] is instance k's value list; all start from the same a_i
        self._state: List[List[float]] = [
            [float(v) for v in values] for _ in range(instances)
        ]
        self._alive = np.ones(topology.n, dtype=bool)
        self._rngs = spawn_streams(seed, instances)
        self.cycle = 0

    @property
    def instances(self) -> int:
        """Number of concurrent instances."""
        return self._instances

    @property
    def alive_count(self) -> int:
        """Number of alive nodes."""
        return int(self._alive.sum())

    def crash(self, node_ids: Sequence[int]) -> None:
        """Crash-stop nodes across all instances."""
        for node_id in node_ids:
            if not 0 <= node_id < self.topology.n:
                raise ConfigurationError(f"node id {node_id} out of range")
            self._alive[node_id] = False

    def run_cycle(self) -> None:
        """One synchronous cycle of every instance.

        Each instance uses its own RNG stream, so crash/loss damage is
        independent across instances — the property the median exploits.
        """
        alive_mask = self._alive
        initiators = np.nonzero(alive_mask)[0]
        alive_list = alive_mask.tolist()
        for instance, rng in enumerate(self._rngs):
            partners = self.topology.random_neighbor_array(initiators, rng)
            losses = (
                rng.random(len(initiators)) < self._loss
                if self._loss > 0.0
                else None
            )
            state = self._state[instance]
            for index, (i, j) in enumerate(
                zip(initiators.tolist(), partners.tolist())
            ):
                if not alive_list[j]:
                    continue
                if losses is not None and losses[index]:
                    continue
                midpoint = (state[i] + state[j]) * 0.5
                state[i] = midpoint
                state[j] = midpoint
        self.cycle += 1

    def run(self, cycles: int) -> RobustRunResult:
        """Run ``cycles`` cycles and report both estimators."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        for _ in range(cycles):
            self.run_cycle()
        alive_index = np.nonzero(self._alive)[0]
        stacked = np.asarray(
            [np.asarray(state)[alive_index] for state in self._state]
        )  # (instances, alive)
        return RobustRunResult(
            true_mean=self.true_mean,
            single_estimates=stacked[0].copy(),
            median_estimates=np.median(stacked, axis=0),
            instances=self._instances,
            cycles=self.cycle,
        )
