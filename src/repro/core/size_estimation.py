"""Network size estimation with epochs and restarting (§4, Figure 4).

The mechanism: if exactly one node holds 1 and every other node holds 0,
the network average is 1/N, so each node can compute N from its
converged approximation. The paper makes this adaptive by

* dividing time into epochs of a fixed number of cycles, restarting the
  protocol each epoch;
* electing instance *leaders* probabilistically at each epoch start
  (each instance tagged by its leader and run concurrently);
* letting nodes that join mid-epoch wait for the next epoch, so each
  epoch converges to the size at its own start — which is why the
  estimate curve in Figure 4 trails the actual size by one epoch.

Nodes that leave mid-epoch take their approximation mass with them,
exactly as in a real deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..failures.churn import ChurnModel, NoChurn
from ..rng import SeedLike, make_rng
from .epoch import EpochSchedule


@dataclass(frozen=True)
class SizeEstimationConfig:
    """Parameters of a size-estimation run.

    Defaults follow Figure 4 shape-wise; the paper-scale values are
    ``initial_size=100_000`` with the matching churn model.
    """

    cycles: int = 300
    cycles_per_epoch: int = 30
    expected_leaders: float = 1.0
    force_leader: bool = True
    adaptive_leaders: bool = False
    initial_size: int = 1000
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {self.cycles}")
        if self.cycles_per_epoch < 1:
            raise ConfigurationError(
                f"cycles_per_epoch must be >= 1, got {self.cycles_per_epoch}"
            )
        if self.expected_leaders <= 0:
            raise ConfigurationError(
                f"expected_leaders must be positive, got {self.expected_leaders}"
            )
        if self.initial_size < 2:
            raise ConfigurationError(
                f"initial_size must be >= 2, got {self.initial_size}"
            )


@dataclass(frozen=True)
class EpochReport:
    """Converged estimates reported at the end of one epoch."""

    epoch: int
    start_cycle: int
    end_cycle: int
    size_at_start: int
    size_at_end: int
    instance_count: int
    reporting_nodes: int
    estimate_mean: float
    estimate_min: float
    estimate_max: float

    @property
    def relative_error(self) -> float:
        """|mean estimate − size at epoch start| / size at epoch start."""
        return abs(self.estimate_mean - self.size_at_start) / self.size_at_start


class SizeEstimationExperiment:
    """Cycle-driven execution of the §4 adaptive counting protocol.

    The overlay is the paper's idealized random/complete topology over
    *current-epoch participants*: every participant exchanges with a
    uniformly random other participant each cycle (GETPAIR_SEQ).
    """

    def __init__(
        self,
        config: SizeEstimationConfig,
        *,
        churn: Optional[ChurnModel] = None,
    ):
        self.config = config
        self.churn = churn if churn is not None else NoChurn()
        self.schedule = EpochSchedule(config.cycles_per_epoch)
        self._rng = make_rng(config.seed)
        self._next_id = 0
        self._active: Dict[int, bool] = {}
        for _ in range(config.initial_size):
            self._active[self._allocate_id()] = True
        # current epoch state
        self._epoch = -1
        self._epoch_start_cycle = 0
        self._size_at_epoch_start = 0
        self._instances = 0
        self._values: Dict[int, List[float]] = {}
        # outputs
        self.reports: List[EpochReport] = []
        self.size_trace: List[int] = []

    # -- id / membership plumbing -----------------------------------------

    def _allocate_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    @property
    def current_size(self) -> int:
        """Number of nodes currently in the network."""
        return len(self._active)

    @property
    def current_epoch(self) -> int:
        """Epoch id currently executing."""
        return self._epoch

    # -- churn ---------------------------------------------------------------

    def _apply_churn(self, cycle: int) -> None:
        step = self.churn.step(cycle, self.current_size)
        if step.leaves > 0:
            ids = list(self._active.keys())
            leavers = self._rng.choice(
                len(ids), size=min(step.leaves, len(ids) - 1), replace=False
            )
            for idx in leavers:
                node_id = ids[int(idx)]
                del self._active[node_id]
                # a departing participant takes its mass with it
                self._values.pop(node_id, None)
        for _ in range(step.joins):
            # joiners wait for the next epoch: active but not in _values
            self._active[self._allocate_id()] = True

    # -- epochs ---------------------------------------------------------------

    def _start_epoch(self, cycle: int) -> None:
        self._epoch += 1
        self._epoch_start_cycle = cycle
        participants = list(self._active.keys())
        self._size_at_epoch_start = len(participants)
        # §4: the leader probability "can also depend on the previous
        # approximation of network size" — with adaptive_leaders a node
        # uses the last epoch's estimate (what it actually knows) rather
        # than the true current size (which no node knows).
        if self.config.adaptive_leaders and self.reports:
            denominator = max(self.reports[-1].estimate_mean, 1.0)
        else:
            denominator = max(len(participants), 1)
        leader_probability = min(
            self.config.expected_leaders / denominator, 1.0
        )
        leader_flags = self._rng.random(len(participants)) < leader_probability
        leaders = [p for p, flag in zip(participants, leader_flags.tolist()) if flag]
        if not leaders and self.config.force_leader:
            leaders = [participants[int(self._rng.integers(0, len(participants)))]]
        self._instances = len(leaders)
        leader_index = {node_id: k for k, node_id in enumerate(leaders)}
        self._values = {}
        for node_id in participants:
            row = [0.0] * self._instances
            instance = leader_index.get(node_id)
            if instance is not None:
                row[instance] = 1.0
            self._values[node_id] = row

    def _finalize_epoch(self, end_cycle: int) -> Optional[EpochReport]:
        if self._epoch < 0 or self._instances == 0:
            return None
        estimates = []
        for row in self._values.values():
            per_instance = [1.0 / x for x in row if x > 0.0]
            if per_instance:
                estimates.append(sum(per_instance) / len(per_instance))
        if not estimates:
            return None
        array = np.asarray(estimates)
        report = EpochReport(
            epoch=self._epoch,
            start_cycle=self._epoch_start_cycle,
            end_cycle=end_cycle,
            size_at_start=self._size_at_epoch_start,
            size_at_end=self.current_size,
            instance_count=self._instances,
            reporting_nodes=len(estimates),
            estimate_mean=float(array.mean()),
            estimate_min=float(array.min()),
            estimate_max=float(array.max()),
        )
        self.reports.append(report)
        return report

    # -- gossip ---------------------------------------------------------------

    def _gossip_cycle(self) -> None:
        ids = list(self._values.keys())
        count = len(ids)
        if count < 2:
            return
        partner_positions = self._rng.integers(0, count, size=count).tolist()
        values = self._values
        instances = self._instances
        for position, node_id in enumerate(ids):
            row_i = values[node_id]
            partner_position = partner_positions[position]
            if partner_position == position:
                partner_position = (partner_position + 1) % count
            partner_id = ids[partner_position]
            row_j = values[partner_id]
            if instances == 1:
                midpoint = (row_i[0] + row_j[0]) * 0.5
                row_i[0] = midpoint
                row_j[0] = midpoint
            else:
                for instance in range(instances):
                    midpoint = (row_i[instance] + row_j[instance]) * 0.5
                    row_i[instance] = midpoint
                    row_j[instance] = midpoint

    # -- main loop ----------------------------------------------------------

    def run(self) -> List[EpochReport]:
        """Execute the configured number of cycles; returns the epoch
        reports (also available as ``self.reports``)."""
        for cycle in range(self.config.cycles):
            if self.schedule.is_epoch_start(cycle):
                if cycle > 0:
                    self._finalize_epoch(cycle - 1)
                self._start_epoch(cycle)
            self._apply_churn(cycle)
            self._gossip_cycle()
            self.size_trace.append(self.current_size)
        # only a *completed* final epoch reports: the paper publishes
        # converged estimates at epoch ends, never mid-epoch state
        if self.config.cycles % self.config.cycles_per_epoch == 0:
            self._finalize_epoch(self.config.cycles - 1)
        return self.reports
