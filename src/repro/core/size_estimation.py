"""Network size estimation with epochs and restarting (§4, Figure 4).

The mechanism: if exactly one node holds 1 and every other node holds 0,
the network average is 1/N, so each node can compute N from its
converged approximation. The paper makes this adaptive by

* dividing time into epochs of a fixed number of cycles, restarting the
  protocol each epoch;
* electing instance *leaders* probabilistically at each epoch start
  (each instance tagged by its leader and run concurrently);
* letting nodes that join mid-epoch wait for the next epoch, so each
  epoch converges to the size at its own start — which is why the
  estimate curve in Figure 4 trails the actual size by one epoch.

Nodes that leave mid-epoch take their approximation mass with them,
exactly as in a real deployment.

Since the kernel-hosted churn refactor this experiment is a thin shell
over :class:`~repro.kernel.GossipEngine`: churn is declared as a
:class:`~repro.kernel.ChurnSpec` and applied as alive-mask mutation
with value-matrix row recycling, and the per-epoch leader election and
estimate extraction live in an :class:`~repro.kernel.EpochSpec`'s
``reseed``/``finalize`` hooks — no node objects are rebuilt between
epochs. That is what lets Figure 4 run at the paper's N = 100 000 on
the vectorized backend in seconds (``python -m repro figure4
--n 100000 --backend vectorized``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..errors import ConfigurationError
from ..failures.churn import ChurnModel, NoChurn
from ..kernel.checkpoint import CheckpointSpec
from ..kernel.engine import GossipEngine
from ..kernel.lifecycle import ChurnSpec, EpochRestart, EpochSpec, EpochView
from ..kernel.scenario import Scenario
from ..rng import SeedLike
from ..topology.complete import CompleteTopology
from .aggregates import MeanAggregate


@dataclass(frozen=True)
class SizeEstimationConfig:
    """Parameters of a size-estimation run.

    Defaults follow Figure 4 shape-wise; the paper-scale values are
    ``initial_size=100_000`` with the matching churn model.
    """

    cycles: int = 300
    cycles_per_epoch: int = 30
    expected_leaders: float = 1.0
    force_leader: bool = True
    adaptive_leaders: bool = False
    initial_size: int = 1000
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {self.cycles}")
        if self.cycles_per_epoch < 1:
            raise ConfigurationError(
                f"cycles_per_epoch must be >= 1, got {self.cycles_per_epoch}"
            )
        if self.expected_leaders <= 0:
            raise ConfigurationError(
                f"expected_leaders must be positive, got {self.expected_leaders}"
            )
        if self.initial_size < 2:
            raise ConfigurationError(
                f"initial_size must be >= 2, got {self.initial_size}"
            )


@dataclass(frozen=True)
class EpochReport:
    """Converged estimates reported at the end of one epoch."""

    epoch: int
    start_cycle: int
    end_cycle: int
    size_at_start: int
    size_at_end: int
    instance_count: int
    reporting_nodes: int
    estimate_mean: float
    estimate_min: float
    estimate_max: float

    @property
    def relative_error(self) -> float:
        """|mean estimate − size at epoch start| / size at epoch start."""
        return abs(self.estimate_mean - self.size_at_start) / self.size_at_start


class SizeEstimationExperiment:
    """Kernel-hosted execution of the §4 adaptive counting protocol.

    The overlay is the paper's idealized random/complete topology over
    *current-epoch participants*: every participant exchanges with a
    uniformly random other participant each cycle (GETPAIR_SEQ). The
    instance set varies per epoch (one column per elected leader);
    estimates are read off the converged value matrix at epoch ends.

    Parameters
    ----------
    config:
        Cycle budget, epoch length, leader-election policy, size, seed.
    churn:
        Optional :class:`~repro.failures.churn.ChurnModel`; applied by
        the kernel every cycle.
    backend:
        Kernel execution backend (``"auto"``, ``"reference"`` or
        ``"vectorized"``). Both produce bitwise-identical trajectories;
        pass ``"vectorized"`` (or keep ``"auto"``) at paper scale.
    membership:
        Partner-draw layer (``Scenario.membership``): ``None`` /
        ``"oracle"`` for the idealized uniform draw, ``"newscast"`` or
        a :class:`~repro.kernel.membership.NewscastSpec` to sample
        partners from gossip-maintained partial views — the deployment
        shape of §1.2, with no global oracle anywhere.
    """

    def __init__(
        self,
        config: SizeEstimationConfig,
        *,
        churn: Optional[ChurnModel] = None,
        backend: str = "auto",
        membership=None,
    ):
        self.config = config
        self.churn = churn if churn is not None else NoChurn()
        self._backend = backend
        self._membership = membership
        self._engine: Optional[GossipEngine] = None
        self._instances = 0
        # outputs
        self.reports: List[EpochReport] = []
        self.size_trace: List[int] = []

    # -- observation -------------------------------------------------------

    @property
    def current_size(self) -> int:
        """Number of nodes currently in the network."""
        if self._engine is None:
            return self.config.initial_size
        return self._engine.alive_count

    @property
    def current_epoch(self) -> int:
        """Epoch id currently executing (−1 before :meth:`run`)."""
        return -1 if self._engine is None else self._engine.epoch

    @property
    def backend_name(self) -> Optional[str]:
        """The concrete kernel backend of the last run."""
        return None if self._engine is None else self._engine.backend_name

    # -- epoch hooks -------------------------------------------------------

    def _reseed(self, context: EpochRestart) -> np.ndarray:
        """Per-epoch leader election: each participant becomes a leader
        with probability ``expected_leaders / N`` (§4), one matrix
        column per elected leader, the leader's entry holding 1."""
        count = len(context.participants)
        # §4: the leader probability "can also depend on the previous
        # approximation of network size" — with adaptive_leaders a node
        # uses the last epoch's estimate (what it actually knows) rather
        # than the true current size (which no node knows).
        if self.config.adaptive_leaders and self.reports:
            denominator = max(self.reports[-1].estimate_mean, 1.0)
        else:
            denominator = max(count, 1)
        probability = min(self.config.expected_leaders / denominator, 1.0)
        flags = context.rng.random(count) < probability
        leaders = np.nonzero(flags)[0]
        if len(leaders) == 0 and self.config.force_leader:
            leaders = np.array([int(context.rng.integers(0, count))])
        self._instances = len(leaders)
        # a leaderless epoch (force_leader=False) still gossips one
        # all-zero column and simply publishes no report
        rows = np.zeros((count, max(self._instances, 1)))
        if self._instances:
            rows[leaders, np.arange(self._instances)] = 1.0
        return rows

    def _finalize(self, view: EpochView) -> Optional[EpochReport]:
        """Extract per-node estimates from the converged matrix: each
        surviving participant averages 1/x over the instances it has
        positive mass in."""
        rows = view.matrix
        if self._instances == 0 or rows.shape[0] == 0:
            return None
        positive = rows > 0.0
        reporting = positive.any(axis=1)
        if not reporting.any():
            return None
        inverse = np.zeros_like(rows)
        np.divide(1.0, rows, out=inverse, where=positive)
        estimates = (
            inverse[reporting].sum(axis=1) / positive[reporting].sum(axis=1)
        )
        report = EpochReport(
            epoch=view.epoch,
            start_cycle=view.start_cycle,
            end_cycle=view.end_cycle,
            size_at_start=view.size_at_start,
            size_at_end=view.size_at_end,
            instance_count=self._instances,
            reporting_nodes=int(reporting.sum()),
            estimate_mean=float(estimates.mean()),
            estimate_min=float(estimates.min()),
            estimate_max=float(estimates.max()),
        )
        self.reports.append(report)
        return report

    # -- main loop ----------------------------------------------------------

    def scenario(self) -> Scenario:
        """The declarative kernel scenario this experiment runs."""
        config = self.config
        return Scenario(
            topology=CompleteTopology(config.initial_size),
            values=np.zeros(config.initial_size),
            aggregates={"count": MeanAggregate()},
            churn=ChurnSpec(model=self.churn),
            epochs=EpochSpec(
                cycles_per_epoch=config.cycles_per_epoch,
                reseed=self._reseed,
                finalize=self._finalize,
            ),
            membership=self._membership,
            cycles=config.cycles,
            seed=config.seed,
            backend=self._backend,
        )

    def run(
        self, *, checkpoint: Optional[CheckpointSpec] = None
    ) -> List[EpochReport]:
        """Execute the configured number of cycles; returns the epoch
        reports (also available as ``self.reports``).

        ``checkpoint`` enables the kernel's periodic auto-checkpointing
        (see :class:`~repro.kernel.checkpoint.CheckpointSpec`); the run
        can then be continued with :meth:`resume`.
        """
        self.reports = []
        self.size_trace = []
        self._instances = 0
        self._engine = GossipEngine(self.scenario())
        return self._finish(self._engine, self.config.cycles, checkpoint)

    def resume(
        self,
        path: Union[str, Path],
        *,
        checkpoint: Optional[CheckpointSpec] = None,
    ) -> List[EpochReport]:
        """Continue a checkpointed run to the configured cycle budget.

        ``path`` is a checkpoint directory (its newest valid checkpoint
        is used), payload, or manifest written by an earlier
        :meth:`run` with a checkpoint spec. The engine restores its own
        state bitwise; this method additionally rehydrates the
        experiment-side state the epoch hooks read — ``reports`` (which
        :meth:`_reseed` consults under ``adaptive_leaders``) from the
        restored epoch results, and ``_instances`` (which
        :meth:`_finalize` needs for the epoch in flight at checkpoint
        time) from the restored instance layout. A leaderless forced
        epoch rehydrates as 1 instance, but its all-zero column keeps
        :meth:`_finalize` reporting nothing either way, so the resumed
        trajectory and reports match the uninterrupted run exactly.
        """
        engine = GossipEngine.restore(self.scenario(), path)
        remaining = self.config.cycles - engine.cycle
        if remaining < 0:
            engine.close()
            raise ConfigurationError(
                f"checkpoint is at cycle {engine.cycle}, beyond the "
                f"configured budget of {self.config.cycles} cycles"
            )
        self._engine = engine
        self.reports = [
            r for r in engine.epoch_results if isinstance(r, EpochReport)
        ]
        self._instances = len(engine.instance_names)
        self.size_trace = []
        return self._finish(engine, remaining, checkpoint)

    def _finish(
        self,
        engine: GossipEngine,
        cycles: int,
        checkpoint: Optional[CheckpointSpec],
    ) -> List[EpochReport]:
        try:
            result = engine.run(cycles, checkpoint=checkpoint)
        finally:
            # the run is terminal for this engine: release the backend
            # (a sharded pool and its shared segment) deterministically.
            # Post-run observers (current_size, epoch, backend_name)
            # keep working — they read engine state, not the backend.
            engine.close()
        # alive_counts[0] is the pre-run size; the trace matches the
        # historical one-entry-per-cycle shape (after resume it covers
        # only the resumed tail of the run)
        self.size_trace = result.alive_counts[1:]
        return self.reports
