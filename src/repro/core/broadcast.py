"""Push-pull epidemic broadcast — the spreading model behind
AGGREGATE_MAX.

§1.1: "the behavior of this protocol from the point of view of the
spreading of the true maximum is identical to that of the push-pull
epidemic broadcast, which is well studied [4]". This module makes that
connection executable:

* :class:`PushPullBroadcast` — SI-model spreading on a topology under
  the SEQ discipline (every node gossips once per cycle, push-pull);
* :func:`expected_rounds_push_pull` — the classical
  ``log₂ N + ln N + O(1)`` round complexity (Karp et al. / Pittel) for
  comparison;
* :func:`spread_trajectory_deterministic` — the mean-field recurrence
  for the informed fraction, useful as a reference curve.

The suite's tests verify that MAX aggregation and broadcast produce
*identical* informed-set trajectories when driven by the same pair
sequence — the paper's equivalence claim, checked bit-for-bit.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..topology.base import Topology


class PushPullBroadcast:
    """SI-model push-pull broadcast under the SEQ discipline.

    Each cycle, every node contacts one uniformly random neighbor; if
    either side of the pair is informed, both become informed (push if
    the initiator knows, pull if the responder knows — the push-pull
    exchange of Figure 1 restricted to a boolean payload).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        origin: int = 0,
        seed: SeedLike = None,
    ):
        if not 0 <= origin < topology.n:
            raise ConfigurationError(
                f"origin {origin} outside range [0, {topology.n})"
            )
        self.topology = topology
        self._informed = np.zeros(topology.n, dtype=bool)
        self._informed[origin] = True
        self._rng = make_rng(seed)
        self.cycle = 0

    @property
    def informed_count(self) -> int:
        """Number of informed nodes."""
        return int(self._informed.sum())

    @property
    def informed_mask(self) -> np.ndarray:
        """Boolean mask of informed nodes (copy)."""
        return self._informed.copy()

    def is_complete(self) -> bool:
        """Whether every node is informed."""
        return bool(self._informed.all())

    def run_cycle(self) -> int:
        """One push-pull cycle; returns the number of newly informed."""
        n = self.topology.n
        initiators = np.arange(n, dtype=np.int64)
        partners = self.topology.random_neighbor_array(initiators, self._rng)
        informed = self._informed
        newly = 0
        for i, j in zip(initiators.tolist(), partners.tolist()):
            if informed[i] or informed[j]:
                if not informed[i]:
                    informed[i] = True
                    newly += 1
                if not informed[j]:
                    informed[j] = True
                    newly += 1
        self.cycle += 1
        return newly

    def run_until_complete(self, *, max_cycles: int = 10_000) -> List[int]:
        """Run to full coverage; returns the informed-count trajectory
        (index 0 = before any cycle). Raises if max_cycles is exceeded
        (e.g. on a disconnected topology)."""
        trajectory = [self.informed_count]
        while not self.is_complete():
            if self.cycle >= max_cycles:
                raise ConfigurationError(
                    f"broadcast incomplete after {max_cycles} cycles "
                    "(disconnected topology?)"
                )
            self.run_cycle()
            trajectory.append(self.informed_count)
        return trajectory


def expected_rounds_push(n: int) -> float:
    """Push-only round complexity: log₂ n + ln n + O(1) (Pittel 1987).

    An upper envelope for push-pull: useful as the conservative bound
    in tests and monitoring dashboards.
    """
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    if n == 1:
        return 0.0
    return math.log2(n) + math.log(n)


def expected_rounds_push_pull(n: int) -> float:
    """Push-pull round complexity: log₃ n + O(log log n)
    (Karp, Schindelhauer, Shenker, Vöcking 2000).

    In a push-pull round an informed node infects via its own call
    (push) *and* is found by uninformed callers (pull), so the informed
    set roughly triples early on and the uninformed remainder shrinks
    doubly exponentially at the end. Returned value is the
    ``log₃ n + log₂ log n`` approximation of the mean; the exact
    constant in the O(log log n) term is not needed for shape checks.
    """
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    if n == 1:
        return 0.0
    if n <= 3:
        return 1.0
    return math.log(n, 3) + math.log2(math.log(n))


def spread_trajectory_deterministic(n: int, *, max_cycles: int = 200) -> List[float]:
    """Mean-field informed-fraction recurrence for push-pull SEQ gossip.

    With informed fraction x, an uninformed node becomes informed when
    it contacts an informed node (prob. x) or is contacted by at least
    one informed initiator (each informed node picks it w.p. 1/n; for
    large n the number of informed contacts is Poisson(x)), so

        x' = x + (1 − x)·(1 − (1 − x)·e^{−x}).

    Returns fractions until within 1/(2n) of full coverage.
    """
    if n < 2:
        raise ConfigurationError(f"n must be at least 2, got {n}")
    x = 1.0 / n
    trajectory = [x]
    for _ in range(max_cycles):
        if x >= 1.0 - 1.0 / (2 * n):
            break
        x = x + (1.0 - x) * (1.0 - (1.0 - x) * math.exp(-x))
        trajectory.append(min(x, 1.0))
    return trajectory
