"""Aggregate functions (§1.1).

The protocol skeleton of Figure 1 is parameterized by an AGGREGATE
function applied to the two approximations of a communicating pair.
This module implements the functions the paper names:

* :class:`MeanAggregate` — AGGREGATE_AVG, the focus of the analysis.
  Averaging is the universal building block: with it one can compute
  "any moments, the size of the system, the sum of the value set, etc."
* :class:`MaxAggregate` / :class:`MinAggregate` — AGGREGATE_MAX and the
  dual; their spreading behavior "is identical to that of the push-pull
  epidemic broadcast".
* :class:`GeometricMeanAggregate` — averaging in the log domain, useful
  for products / multiplicative quantities.

plus the *derived estimators* built from converged averages: network
size (§4), sums, k-th moments and variance.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, EstimationError


class AggregateFunction(ABC):
    """A symmetric, idempotent-on-agreement pairwise combiner.

    ``combine(x, y)`` is the new approximation adopted by *both* peers
    after an exchange. Symmetry (order independence) is what makes the
    push-pull exchange well defined.
    """

    #: identifier used in reports
    name: str = "abstract"

    @abstractmethod
    def combine(self, x: float, y: float) -> float:
        """The new shared approximation for a pair holding x and y."""

    def combine_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`combine` over aligned value arrays.

        The vectorized kernel backend applies a whole conflict-free
        batch of exchanges through this method. Subclasses override it
        with a closed-form numpy expression that is IEEE-identical to
        the scalar ``combine``; this fallback routes each element
        through the scalar path (correct for any combiner, but slow).
        """
        return np.frompyfunc(self.combine, 2, 1)(x, y).astype(np.float64)

    def __call__(self, x: float, y: float) -> float:
        return self.combine(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class MeanAggregate(AggregateFunction):
    """AGGREGATE_AVG: both peers adopt the arithmetic mean.

    Conserves the sum of approximations across the network — the mass
    conservation property underlying the paper's correctness argument
    ("the algorithm does not introduce any errors").
    """

    name = "mean"

    def combine(self, x: float, y: float) -> float:
        return (x + y) / 2.0

    def combine_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # (x + y) * 0.5 is bitwise equal to (x + y) / 2.0 in IEEE-754
        return (x + y) * 0.5


class MaxAggregate(AggregateFunction):
    """AGGREGATE_MAX: the true maximum spreads epidemically."""

    name = "max"

    def combine(self, x: float, y: float) -> float:
        return x if x >= y else y

    def combine_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # not np.maximum: the scalar path takes y when x is NaN and
        # keeps x on a signed-zero tie, and backend equivalence is
        # bitwise
        return np.where(x >= y, x, y)


class MinAggregate(AggregateFunction):
    """The dual of AGGREGATE_MAX."""

    name = "min"

    def combine(self, x: float, y: float) -> float:
        return x if x <= y else y

    def combine_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # np.where, not np.minimum, to mirror the scalar tie/NaN
        # behavior bitwise (see MaxAggregate)
        return np.where(x <= y, x, y)


class GeometricMeanAggregate(AggregateFunction):
    """Both peers adopt sqrt(x·y); conserves the product of values.

    Requires positive approximations.
    """

    name = "geometric_mean"

    def combine(self, x: float, y: float) -> float:
        if x <= 0 or y <= 0:
            raise ConfigurationError(
                f"geometric mean requires positive values, got ({x}, {y})"
            )
        return math.sqrt(x * y)

    def combine_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if np.any(x <= 0) or np.any(y <= 0):
            raise ConfigurationError(
                "geometric mean requires positive values"
            )
        return np.sqrt(x * y)


# ----------------------------------------------------------------------
# Derived estimators (§1.1, §4)
# ----------------------------------------------------------------------


def estimate_network_size(average_of_indicator: float) -> float:
    """§4: with one node holding 1 and the rest 0, the average is 1/N,
    so N = 1 / average."""
    if average_of_indicator <= 0:
        raise EstimationError(
            f"indicator average must be positive, got {average_of_indicator}"
        )
    return 1.0 / average_of_indicator


def estimate_sum(mean_estimate: float, size_estimate: float) -> float:
    """Sum = mean × N, combining an averaging instance with a counting
    instance (§1.1)."""
    if size_estimate <= 0:
        raise EstimationError(f"size estimate must be positive, got {size_estimate}")
    return mean_estimate * size_estimate


def moment_values(values: Sequence[float], k: int) -> np.ndarray:
    """Initial vector for estimating the k-th raw moment: average the
    k-th powers of the attribute values (§1.1)."""
    if k < 1:
        raise ConfigurationError(f"moment order must be >= 1, got {k}")
    return np.asarray(values, dtype=np.float64) ** k


def estimate_variance_from_moments(first_moment: float, second_moment: float) -> float:
    """Population variance from converged first and second raw moments:
    Var = E[a²] − E[a]².

    Small negative results from numerical noise are clamped to zero;
    anything substantially negative indicates the two instances did not
    converge consistently and raises.
    """
    variance = second_moment - first_moment * first_moment
    if variance < -1e-9 * max(1.0, abs(second_moment)):
        raise EstimationError(
            f"inconsistent moments: E[a^2]={second_moment} < (E[a])^2="
            f"{first_moment * first_moment}"
        )
    return max(variance, 0.0)
