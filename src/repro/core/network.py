"""Binds protocol nodes, topology, transport and engine into a runnable
gossip network.

This is the event-driven deployment of the Figure 1 protocol: the object
a library user constructs to run anti-entropy aggregation "for real"
(asynchronous activations, latency, loss, crashes) as opposed to the
synchronous AVG abstraction of §3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng, spawn_streams
from ..simulator.engine import EventDrivenSimulator
from ..simulator.transport import (
    LatencyModel,
    LossModel,
    Message,
    Transport,
)
from ..topology.base import Topology
from .aggregates import AggregateFunction, MeanAggregate
from .protocol import (
    AggregationNode,
    ConstantWaiting,
    WaitingTimeStrategy,
)


class GossipNetwork:
    """An event-driven network of :class:`AggregationNode` instances.

    Parameters
    ----------
    topology:
        The overlay graph; neighbor selection samples it uniformly.
    values:
        Initial attribute values ``a_i`` (one per node).
    aggregate:
        The AGGREGATE function; defaults to AGGREGATE_AVG.
    waiting:
        GETWAITINGTIME strategy; defaults to constant ∆t = 1.
    latency, loss:
        Transport models (defaults: zero latency, no loss — the §2
        theoretical setting).
    clocks:
        Optional per-node :class:`~repro.simulator.clock.Clock` objects
        (one per node) relaxing the §2 "hardware clock without drift"
        assumption. ``None`` keeps the drift-free model.
    seed:
        Master seed; per-node and transport streams are spawned from it.
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        *,
        aggregate: Optional[AggregateFunction] = None,
        waiting: Optional[WaitingTimeStrategy] = None,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        clocks: Optional[Sequence] = None,
        seed: SeedLike = None,
    ):
        if len(values) != topology.n:
            raise ConfigurationError(
                f"got {len(values)} values for a topology of {topology.n} nodes"
            )
        if clocks is not None and len(clocks) != topology.n:
            raise ConfigurationError(
                f"got {len(clocks)} clocks for a topology of {topology.n} nodes"
            )
        self.topology = topology
        self.aggregate = aggregate if aggregate is not None else MeanAggregate()
        self.waiting = waiting if waiting is not None else ConstantWaiting(1.0)
        self.engine = EventDrivenSimulator()
        streams = spawn_streams(seed, topology.n + 2)
        transport_rng, neighbor_rng = streams[-2], streams[-1]
        self.transport = Transport(
            self.engine,
            self._deliver,
            latency=latency,
            loss=loss,
            seed=transport_rng,
        )
        self._neighbor_rng = neighbor_rng
        self.nodes: List[AggregationNode] = [
            AggregationNode(
                i,
                float(values[i]),
                self.aggregate,
                self,
                streams[i],
                clock=clocks[i] if clocks is not None else None,
            )
            for i in range(topology.n)
        ]
        self._started = False

    # -- engine plumbing --------------------------------------------------

    def _deliver(self, message: Message) -> None:
        self.nodes[message.destination].handle_message(
            message.source, message.payload
        )

    def select_neighbor(
        self, node_id: int, rng: np.random.Generator
    ) -> Optional[int]:
        """A uniformly random *alive* neighbor, or None if none exist.

        Dead neighbors are filtered out, modeling a membership layer
        that eventually removes crashed peers. A bounded number of
        resamples keeps this O(1) on mostly-alive networks.
        """
        for _ in range(16):
            peer = self.topology.random_neighbor(node_id, rng)
            if self.nodes[peer].alive:
                return peer
        alive = [
            int(p) for p in self.topology.neighbors(node_id) if self.nodes[p].alive
        ]
        if not alive:
            return None
        return alive[int(rng.integers(0, len(alive)))]

    # -- control ----------------------------------------------------------

    def start(self) -> None:
        """Start every node's active loop (idempotent)."""
        if self._started:
            return
        for node in self.nodes:
            node.start()
        self._started = True

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` time units."""
        self.start()
        self.engine.run_until(self.engine.now + duration)

    def run_cycles(self, cycles: float) -> None:
        """Advance by ``cycles`` expected cycle lengths ∆t."""
        self.run(cycles * self.waiting.delta_t)

    def crash_nodes(self, node_ids: Iterable[int]) -> None:
        """Crash-stop the given nodes."""
        for node_id in node_ids:
            self.nodes[node_id].crash()

    # -- observation --------------------------------------------------------

    def approximations(self, *, alive_only: bool = True) -> np.ndarray:
        """Current approximations x_i across the network."""
        nodes = [n for n in self.nodes if n.alive or not alive_only]
        return np.asarray([n.approximation for n in nodes])

    def true_mean(self, *, alive_only: bool = True) -> float:
        """The ground-truth average of the attribute values."""
        nodes = [n for n in self.nodes if n.alive or not alive_only]
        return float(np.mean([n.value for n in nodes]))

    def variance(self) -> float:
        """Empirical variance of the alive approximations (eq. 3)."""
        approx = self.approximations()
        if len(approx) < 2:
            return 0.0
        return float(approx.var(ddof=1))

    def max_error(self) -> float:
        """Worst node error |x_i − true mean| among alive nodes."""
        approx = self.approximations()
        return float(np.abs(approx - self.true_mean()).max())
