"""The anti-entropy aggregation protocol of Figure 1.

Each node runs an *active* loop — wait ``getWaitingTime()``, pick a
random neighbor, send the current approximation — and a *passive*
handler that replies with its own (pre-exchange) approximation; both
sides then apply AGGREGATE. This module implements the node state
machine for the event-driven simulator; the synchronous cycle model
lives in :mod:`repro.simulator.cycle_sim`.

``getWaitingTime`` strategies:

* :class:`ConstantWaiting` — the default ∆t of §1.1 (with a uniformly
  random initial phase so nodes are spread over the cycle),
* :class:`ExponentialWaiting` — the §3.3.2 randomization whose pair
  distribution matches GETPAIR_RAND.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from .aggregates import AggregateFunction

if TYPE_CHECKING:  # pragma: no cover
    from .network import GossipNetwork


@dataclass(frozen=True)
class PushMessage:
    """Active-side message carrying the initiator's approximation."""

    approximation: float


@dataclass(frozen=True)
class ReplyMessage:
    """Passive-side reply carrying the responder's pre-exchange
    approximation."""

    approximation: float


class WaitingTimeStrategy(ABC):
    """Implements GETWAITINGTIME of Figure 1."""

    def __init__(self, delta_t: float):
        if delta_t <= 0:
            raise ConfigurationError(f"cycle length must be positive, got {delta_t}")
        self._delta_t = delta_t

    @property
    def delta_t(self) -> float:
        """The (expected) cycle length ∆t."""
        return self._delta_t

    @abstractmethod
    def first_wait(self, rng: np.random.Generator) -> float:
        """Delay before a node's first activation."""

    @abstractmethod
    def next_wait(self, rng: np.random.Generator) -> float:
        """Delay between consecutive activations."""


class ConstantWaiting(WaitingTimeStrategy):
    """GETWAITINGTIME ≡ ∆t, with a random initial phase in [0, ∆t).

    The random phase models autonomous nodes that were not started at
    the same instant; each node still initiates exactly once per cycle,
    which is the GETPAIR_SEQ discipline.
    """

    def first_wait(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(0.0, self._delta_t))

    def next_wait(self, rng: np.random.Generator) -> float:
        return self._delta_t


class ExponentialWaiting(WaitingTimeStrategy):
    """Exponentially distributed waits with mean ∆t (§3.3.2).

    The resulting pair process matches GETPAIR_RAND: node selections
    form a Poisson process, so φ ~ Poisson(2) per cycle.
    """

    def first_wait(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._delta_t))

    def next_wait(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._delta_t))


class AggregationNode:
    """Protocol state machine for one node (Figure 1).

    The node is *driven* by a :class:`~repro.core.network.GossipNetwork`
    which owns the engine, transport and topology; the node only holds
    protocol state and reacts to timer / message events.
    """

    def __init__(
        self,
        node_id: int,
        value: float,
        aggregate: AggregateFunction,
        network: "GossipNetwork",
        rng: np.random.Generator,
        clock=None,
    ):
        self.node_id = node_id
        self.value = float(value)  # the attribute a_i
        self.approximation = float(value)  # the running estimate x_i
        self._aggregate = aggregate
        self._network = network
        self._rng = rng
        self._clock = clock  # None = the §2 drift-free model
        self.alive = True
        self.initiated_count = 0
        self.responded_count = 0
        self._timer = None

    # -- lifecycle ------------------------------------------------------

    def _to_global(self, local_delay: float) -> float:
        """Convert a locally measured wait into global engine time.

        A fast clock (rate > 1) fires early, a slow one late — the §2
        "hardware clock without drift" assumption made optional.
        """
        if self._clock is None:
            return local_delay
        return self._clock.local_duration_to_global(local_delay)

    def start(self) -> None:
        """Schedule the first activation of the active loop."""
        delay = self._network.waiting.first_wait(self._rng)
        self._timer = self._network.engine.schedule_after(
            self._to_global(delay), self._activate
        )

    def crash(self) -> None:
        """Crash-stop: stop initiating and responding."""
        self.alive = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- active side ----------------------------------------------------

    def _activate(self) -> None:
        if not self.alive:
            return
        peer = self._network.select_neighbor(self.node_id, self._rng)
        if peer is not None:
            self.initiated_count += 1
            self._network.transport.send(
                self.node_id, peer, PushMessage(self.approximation)
            )
        delay = self._network.waiting.next_wait(self._rng)
        self._timer = self._network.engine.schedule_after(
            self._to_global(delay), self._activate
        )

    # -- message handling -------------------------------------------------

    def handle_message(self, source: int, payload) -> None:
        """Dispatch an incoming protocol message."""
        if not self.alive:
            return
        if isinstance(payload, PushMessage):
            self._handle_push(source, payload)
        elif isinstance(payload, ReplyMessage):
            self._handle_reply(payload)
        else:
            raise ConfigurationError(
                f"unknown payload type {type(payload).__name__}"
            )

    def _handle_push(self, source: int, message: PushMessage) -> None:
        """Passive side of Figure 1: reply with the *old* x_j, then
        aggregate."""
        self.responded_count += 1
        self._network.transport.send(
            self.node_id, source, ReplyMessage(self.approximation)
        )
        self.approximation = self._aggregate.combine(
            self.approximation, message.approximation
        )

    def _handle_reply(self, message: ReplyMessage) -> None:
        """Active side completion: aggregate with the peer's reply."""
        self.approximation = self._aggregate.combine(
            self.approximation, message.approximation
        )
