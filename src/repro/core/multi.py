"""Running several aggregation instances in one exchange.

§4 notes that "multiple nodes [may] start concurrent instances of the
averaging protocol", each tagged with a unique identifier. More
generally a deployment computes several aggregates at once (mean, max,
min, second moment …) by piggybacking all instance values on the same
push-pull exchange. :class:`MultiAggregateState` is that tagged bundle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Tuple

from ..errors import ConfigurationError
from .aggregates import AggregateFunction


@dataclass
class MultiAggregateState:
    """A node's map of instance id → (aggregate function, value).

    Instances are independent: combining two states applies each
    instance's own AGGREGATE to the pair of values. An instance missing
    on one side is initialized there with ``default`` before combining —
    the §4 rule that nodes reached by a new counting instance "start to
    behave as if they had 0 as initial value".
    """

    functions: Dict[Hashable, AggregateFunction] = field(default_factory=dict)
    values: Dict[Hashable, float] = field(default_factory=dict)
    defaults: Dict[Hashable, float] = field(default_factory=dict)

    def add_instance(
        self,
        instance_id: Hashable,
        function: AggregateFunction,
        value: float,
        *,
        default: float = 0.0,
    ) -> None:
        """Register an aggregation instance on this node."""
        if instance_id in self.functions:
            raise ConfigurationError(f"instance {instance_id!r} already exists")
        self.functions[instance_id] = function
        self.values[instance_id] = float(value)
        self.defaults[instance_id] = float(default)

    def get(self, instance_id: Hashable) -> float:
        """Current value of one instance."""
        try:
            return self.values[instance_id]
        except KeyError:
            raise ConfigurationError(f"no instance {instance_id!r}") from None

    def __contains__(self, instance_id: Hashable) -> bool:
        return instance_id in self.values

    def __len__(self) -> int:
        return len(self.values)


def combine_multi(
    left: MultiAggregateState, right: MultiAggregateState
) -> None:
    """Push-pull exchange over all instances of two states, in place.

    Instances known to only one side are adopted by the other (with that
    instance's default as its pre-exchange value), then combined.
    """
    all_ids = set(left.values) | set(right.values)
    for instance_id in all_ids:
        if instance_id not in left.values:
            owner = right
            left.functions[instance_id] = owner.functions[instance_id]
            left.defaults[instance_id] = owner.defaults[instance_id]
            left.values[instance_id] = owner.defaults[instance_id]
        elif instance_id not in right.values:
            owner = left
            right.functions[instance_id] = owner.functions[instance_id]
            right.defaults[instance_id] = owner.defaults[instance_id]
            right.values[instance_id] = owner.defaults[instance_id]
        function = left.functions[instance_id]
        combined = function.combine(
            left.values[instance_id], right.values[instance_id]
        )
        left.values[instance_id] = combined
        right.values[instance_id] = combined
