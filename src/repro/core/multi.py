"""Running several aggregation instances in one exchange.

§4 notes that "multiple nodes [may] start concurrent instances of the
averaging protocol", each tagged with a unique identifier. More
generally a deployment computes several aggregates at once (mean, max,
min, second moment …) by piggybacking all instance values on the same
push-pull exchange. :class:`MultiAggregateState` is that tagged bundle
for a *single node*; :class:`MultiAggregateSpec` is the network-wide
view of the same idea, laid out the way the gossip kernel executes it —
a fixed column order over an ``(n, k)`` value matrix — and is the
bridge between the per-node object model and the kernel's
structure-of-arrays scale path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .aggregates import AggregateFunction


@dataclass
class MultiAggregateState:
    """A node's map of instance id → (aggregate function, value).

    Instances are independent: combining two states applies each
    instance's own AGGREGATE to the pair of values. An instance missing
    on one side is initialized there with ``default`` before combining —
    the §4 rule that nodes reached by a new counting instance "start to
    behave as if they had 0 as initial value".
    """

    functions: Dict[Hashable, AggregateFunction] = field(default_factory=dict)
    values: Dict[Hashable, float] = field(default_factory=dict)
    defaults: Dict[Hashable, float] = field(default_factory=dict)

    def add_instance(
        self,
        instance_id: Hashable,
        function: AggregateFunction,
        value: float,
        *,
        default: float = 0.0,
    ) -> None:
        """Register an aggregation instance on this node."""
        if instance_id in self.functions:
            raise ConfigurationError(f"instance {instance_id!r} already exists")
        self.functions[instance_id] = function
        self.values[instance_id] = float(value)
        self.defaults[instance_id] = float(default)

    def get(self, instance_id: Hashable) -> float:
        """Current value of one instance."""
        try:
            return self.values[instance_id]
        except KeyError:
            raise ConfigurationError(f"no instance {instance_id!r}") from None

    def __contains__(self, instance_id: Hashable) -> bool:
        return instance_id in self.values

    def __len__(self) -> int:
        return len(self.values)


def combine_multi(
    left: MultiAggregateState, right: MultiAggregateState
) -> None:
    """Push-pull exchange over all instances of two states, in place.

    Instances known to only one side are adopted by the other (with that
    instance's default as its pre-exchange value), then combined.
    """
    all_ids = set(left.values) | set(right.values)
    for instance_id in all_ids:
        if instance_id not in left.values:
            owner = right
            left.functions[instance_id] = owner.functions[instance_id]
            left.defaults[instance_id] = owner.defaults[instance_id]
            left.values[instance_id] = owner.defaults[instance_id]
        elif instance_id not in right.values:
            owner = left
            right.functions[instance_id] = owner.functions[instance_id]
            right.defaults[instance_id] = owner.defaults[instance_id]
            right.values[instance_id] = owner.defaults[instance_id]
        function = left.functions[instance_id]
        combined = function.combine(
            left.values[instance_id], right.values[instance_id]
        )
        left.values[instance_id] = combined
        right.values[instance_id] = combined


@dataclass(frozen=True)
class MultiAggregateSpec:
    """Network-wide declaration of concurrent aggregation instances.

    Where :class:`MultiAggregateState` holds one *node's* tagged values,
    the spec fixes the instance set and column order for the whole
    overlay, which is exactly what the kernel's ``(n, k)`` value matrix
    needs: column ``c`` of the matrix is instance ``names[c]`` on every
    node, combined with ``functions[c]`` on every exchange.
    """

    names: Tuple[Hashable, ...]
    functions: Tuple[AggregateFunction, ...]
    initial: Mapping[Hashable, np.ndarray]

    def __post_init__(self):
        if len(self.names) == 0:
            raise ConfigurationError("spec needs at least one instance")
        if len(self.names) != len(set(self.names)):
            raise ConfigurationError("instance ids must be unique")
        if len(self.functions) != len(self.names):
            raise ConfigurationError(
                f"{len(self.names)} instances but {len(self.functions)} "
                f"functions"
            )
        unknown = set(self.initial) - set(self.names)
        if unknown:
            raise ConfigurationError(
                f"initial vectors for unknown instances: "
                f"{sorted(map(str, unknown))}"
            )

    @classmethod
    def build(
        cls,
        instances: Mapping[Hashable, AggregateFunction],
        *,
        initial: Optional[Mapping[Hashable, Sequence[float]]] = None,
    ) -> "MultiAggregateSpec":
        """Spec from an ordered instance-id → function mapping, with
        optional per-instance initial vectors."""
        return cls(
            names=tuple(instances),
            functions=tuple(instances.values()),
            initial={
                name: np.asarray(column, dtype=np.float64)
                for name, column in (initial or {}).items()
            },
        )

    @property
    def aggregates(self) -> Dict[Hashable, AggregateFunction]:
        """The ordered instance-id → function mapping (the shape
        :class:`~repro.kernel.Scenario` consumes)."""
        return dict(zip(self.names, self.functions))

    def scenario(self, topology, values, **kwargs):
        """Build a kernel :class:`~repro.kernel.Scenario` running every
        instance of this spec in one pass over ``topology``.

        ``values`` seeds instances with no explicit initial vector;
        ``kwargs`` forward to the Scenario (loss, failures, seed,
        backend, cycles).
        """
        from ..kernel.scenario import Scenario

        return Scenario(
            topology,
            values,
            aggregates=self.aggregates,
            initial=self.initial or None,
            **kwargs,
        )

    def node_state(self, matrix: np.ndarray, node: int) -> MultiAggregateState:
        """Materialize one node's :class:`MultiAggregateState` view from
        the kernel's ``(n, k)`` value matrix (the inverse bridge, for
        code that speaks the per-node object model)."""
        state = MultiAggregateState()
        for column, (name, function) in enumerate(
            zip(self.names, self.functions)
        ):
            state.add_instance(name, function, float(matrix[node, column]))
        return state

    def node_states(self, matrix: np.ndarray) -> List[MultiAggregateState]:
        """Per-node state objects for the whole matrix."""
        return [self.node_state(matrix, node) for node in range(len(matrix))]
