"""High-level aggregation service facade.

The library's "batteries included" entry point: given per-node values
and an overlay, :class:`AggregationService` runs all the standard
aggregates (mean, max, min, k-th moments, counting) as concurrent
instances and returns one consolidated report. This is the API shape a
downstream monitoring system would embed; everything underneath is the
paper's protocol.

Since the unified-kernel refactor the service runs **one**
:class:`~repro.kernel.GossipEngine` pass over a five-column value
matrix — every instance piggybacks on the same push-pull exchange, the
§4 multi-instance rule — instead of re-simulating the network once per
aggregate. At monitoring scale pass ``backend="vectorized"`` (or keep
the default ``"auto"``) for the structure-of-arrays execution path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..kernel.engine import GossipEngine
from ..rng import SeedLike, make_rng, spawn_streams
from ..topology.base import Topology
from .aggregates import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    estimate_network_size,
    estimate_sum,
    estimate_variance_from_moments,
    moment_values,
)
from .multi import MultiAggregateSpec


@dataclass(frozen=True)
class AggregationReport:
    """Converged estimates as seen by a single (arbitrary) node.

    All quantities are *estimates* produced by gossip, not oracle reads;
    ``variance_across_nodes`` reports how tightly the network agrees on
    the mean (the convergence diagnostic).
    """

    mean: float
    maximum: float
    minimum: float
    second_moment: float
    network_size: float
    total: float
    value_variance: float
    variance_across_nodes: float
    cycles: int

    def as_dict(self) -> Dict[str, float]:
        """The report as a plain dict (for logging / serialization)."""
        return {
            "mean": self.mean,
            "maximum": self.maximum,
            "minimum": self.minimum,
            "second_moment": self.second_moment,
            "network_size": self.network_size,
            "total": self.total,
            "value_variance": self.value_variance,
            "variance_across_nodes": self.variance_across_nodes,
            "cycles": float(self.cycles),
        }


class AggregationService:
    """Runs the full aggregate suite over one overlay, in one pass.

    Parameters
    ----------
    topology:
        The overlay to gossip on.
    values:
        Per-node attribute values ``a_i``.
    loss_probability:
        Optional symmetric exchange-failure probability.
    seed:
        Master seed (protocol randomness and the counting instance's
        leader draw get independent streams).
    backend:
        Kernel execution backend (``"auto"``, ``"reference"`` or
        ``"vectorized"``).
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        *,
        loss_probability: float = 0.0,
        seed: SeedLike = None,
        backend: str = "auto",
    ):
        if len(values) != topology.n:
            raise ConfigurationError(
                f"got {len(values)} values for a topology of {topology.n} nodes"
            )
        self.topology = topology
        self.values = np.asarray(values, dtype=np.float64)
        self._loss = loss_probability
        self._seed = seed
        self._backend = backend

    def _spec(self, leader_stream) -> MultiAggregateSpec:
        """The standard five-instance suite: mean, second moment, max,
        min, and the §4 counting instance (one random leader holds 1)."""
        n = self.topology.n
        indicator = np.zeros(n)
        indicator[int(make_rng(leader_stream).integers(0, n))] = 1.0
        return MultiAggregateSpec.build(
            {
                "mean": MeanAggregate(),
                "second_moment": MeanAggregate(),
                "maximum": MaxAggregate(),
                "minimum": MinAggregate(),
                "count": MeanAggregate(),
            },
            initial={
                "second_moment": moment_values(self.values, 2),
                "count": indicator,
            },
        )

    def run(self, cycles: int = 30, *, probe_node: int = 0) -> AggregationReport:
        """Gossip for ``cycles`` cycles and report node ``probe_node``'s
        converged view of the network."""
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if not 0 <= probe_node < self.topology.n:
            raise ConfigurationError(
                f"probe_node {probe_node} outside range [0, {self.topology.n})"
            )
        protocol_stream, leader_stream = spawn_streams(self._seed, 2)
        scenario = self._spec(leader_stream).scenario(
            self.topology,
            self.values,
            loss_probability=self._loss,
            seed=protocol_stream,
            backend=self._backend,
            cycles=cycles,
        )
        engine = GossipEngine(scenario)
        engine.run(cycles, record="end")

        probe = {
            name: float(engine.column(name)[probe_node])
            for name in scenario.instance_names
        }
        mean_estimate = probe["mean"]
        second_moment = probe["second_moment"]
        size_estimate = estimate_network_size(max(probe["count"], 1e-300))
        return AggregationReport(
            mean=mean_estimate,
            maximum=probe["maximum"],
            minimum=probe["minimum"],
            second_moment=second_moment,
            network_size=size_estimate,
            total=estimate_sum(mean_estimate, size_estimate),
            value_variance=estimate_variance_from_moments(
                mean_estimate, second_moment
            ),
            variance_across_nodes=engine.variance("mean"),
            cycles=cycles,
        )
