"""High-level aggregation service facade.

The library's "batteries included" entry point: given per-node values
and an overlay, :class:`AggregationService` runs all the standard
aggregates (mean, max, min, k-th moments, counting) as concurrent
instances over the cycle-driven simulator and returns one consolidated
report. This is the API shape a downstream monitoring system would
embed; everything underneath is the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng, spawn_streams
from ..simulator.cycle_sim import CycleSimulator
from ..topology.base import Topology
from .aggregates import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    estimate_network_size,
    estimate_sum,
    estimate_variance_from_moments,
    moment_values,
)


@dataclass(frozen=True)
class AggregationReport:
    """Converged estimates as seen by a single (arbitrary) node.

    All quantities are *estimates* produced by gossip, not oracle reads;
    ``variance_across_nodes`` reports how tightly the network agrees on
    the mean (the convergence diagnostic).
    """

    mean: float
    maximum: float
    minimum: float
    second_moment: float
    network_size: float
    total: float
    value_variance: float
    variance_across_nodes: float
    cycles: int

    def as_dict(self) -> Dict[str, float]:
        """The report as a plain dict (for logging / serialization)."""
        return {
            "mean": self.mean,
            "maximum": self.maximum,
            "minimum": self.minimum,
            "second_moment": self.second_moment,
            "network_size": self.network_size,
            "total": self.total,
            "value_variance": self.value_variance,
            "variance_across_nodes": self.variance_across_nodes,
            "cycles": float(self.cycles),
        }


class AggregationService:
    """Runs the full aggregate suite over one overlay.

    Parameters
    ----------
    topology:
        The overlay to gossip on.
    values:
        Per-node attribute values ``a_i``.
    loss_probability:
        Optional symmetric exchange-failure probability.
    seed:
        Master seed; each protocol instance gets an independent stream.
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        *,
        loss_probability: float = 0.0,
        seed: SeedLike = None,
    ):
        if len(values) != topology.n:
            raise ConfigurationError(
                f"got {len(values)} values for a topology of {topology.n} nodes"
            )
        self.topology = topology
        self.values = np.asarray(values, dtype=np.float64)
        self._loss = loss_probability
        self._seed = seed

    def run(self, cycles: int = 30, *, probe_node: int = 0) -> AggregationReport:
        """Gossip for ``cycles`` cycles and report node ``probe_node``'s
        converged view of the network."""
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if not 0 <= probe_node < self.topology.n:
            raise ConfigurationError(
                f"probe_node {probe_node} outside range [0, {self.topology.n})"
            )
        streams = spawn_streams(self._seed, 5)
        n = self.topology.n

        def simulate(initial, aggregate, rng):
            sim = CycleSimulator(
                self.topology,
                initial,
                aggregate=aggregate,
                loss_probability=self._loss,
                seed=rng,
            )
            sim.run(cycles)
            return sim

        mean_sim = simulate(self.values, MeanAggregate(), streams[0])
        sq_sim = simulate(moment_values(self.values, 2), MeanAggregate(), streams[1])
        max_sim = simulate(self.values, MaxAggregate(), streams[2])
        min_sim = simulate(self.values, MinAggregate(), streams[3])
        indicator = np.zeros(n)
        indicator[int(make_rng(streams[4]).integers(0, n))] = 1.0
        count_sim = simulate(indicator, MeanAggregate(), streams[4])

        mean_estimate = float(mean_sim.all_values[probe_node])
        second_moment = float(sq_sim.all_values[probe_node])
        size_estimate = estimate_network_size(
            max(float(count_sim.all_values[probe_node]), 1e-300)
        )
        return AggregationReport(
            mean=mean_estimate,
            maximum=float(max_sim.all_values[probe_node]),
            minimum=float(min_sim.all_values[probe_node]),
            second_moment=second_moment,
            network_size=size_estimate,
            total=estimate_sum(mean_estimate, size_estimate),
            value_variance=estimate_variance_from_moments(
                mean_estimate, second_moment
            ),
            variance_across_nodes=mean_sim.variance(),
            cycles=cycles,
        )
