"""High-level aggregation service facade.

The library's "batteries included" entry point: given per-node values
and an overlay, :class:`AggregationService` runs all the standard
aggregates (mean, max, min, k-th moments, counting) as concurrent
instances and returns one consolidated report. This is the API shape a
downstream monitoring system would embed; everything underneath is the
paper's protocol.

Since the unified-kernel refactor the service runs **one**
:class:`~repro.kernel.GossipEngine` pass over a five-column value
matrix — every instance piggybacks on the same push-pull exchange, the
§4 multi-instance rule — instead of re-simulating the network once per
aggregate. At monitoring scale pass ``backend="vectorized"`` (or keep
the default ``"auto"``) for the structure-of-arrays execution path.

Continuous monitoring uses the §4 epoch/restart machinery, also hosted
on the kernel: :meth:`AggregationService.run_epochs` declares an
:class:`~repro.kernel.EpochSpec` whose restart hook re-seeds every
instance from the current attribute values (drawing a fresh counting
leader each epoch) in place on the value matrix — nothing is rebuilt
between epochs — and emits one :class:`AggregationReport` per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..kernel.engine import GossipEngine
from ..kernel.lifecycle import EpochSpec
from ..kernel.scenario import Scenario
from ..rng import SeedLike, make_rng, spawn_streams
from ..topology.base import Topology
from .aggregates import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    estimate_network_size,
    estimate_sum,
    estimate_variance_from_moments,
    moment_values,
)
from .multi import MultiAggregateSpec


@dataclass(frozen=True)
class AggregationReport:
    """Converged estimates as seen by a single (arbitrary) node.

    All quantities are *estimates* produced by gossip, not oracle reads;
    ``variance_across_nodes`` reports how tightly the network agrees on
    the mean (the convergence diagnostic).
    """

    mean: float
    maximum: float
    minimum: float
    second_moment: float
    network_size: float
    total: float
    value_variance: float
    variance_across_nodes: float
    cycles: int

    def as_dict(self) -> Dict[str, float]:
        """The report as a plain dict (for logging / serialization)."""
        return {
            "mean": self.mean,
            "maximum": self.maximum,
            "minimum": self.minimum,
            "second_moment": self.second_moment,
            "network_size": self.network_size,
            "total": self.total,
            "value_variance": self.value_variance,
            "variance_across_nodes": self.variance_across_nodes,
            "cycles": float(self.cycles),
        }


#: the standard monitoring suite, in kernel column order
SUITE_NAMES = ("mean", "second_moment", "maximum", "minimum", "count")


def _suite_functions() -> Dict[str, object]:
    """Instance id → AGGREGATE for the standard five-instance suite:
    mean, second moment, max, min, and the §4 counting instance."""
    return {
        "mean": MeanAggregate(),
        "second_moment": MeanAggregate(),
        "maximum": MaxAggregate(),
        "minimum": MinAggregate(),
        "count": MeanAggregate(),
    }


def _assemble_report(
    probe: Dict[str, float], variance_across_nodes: float, cycles: int
) -> AggregationReport:
    """Derive an :class:`AggregationReport` from one node's converged
    per-instance values (shared by the single-pass and epoch-restarted
    entry points so the two can never drift apart)."""
    mean_estimate = probe["mean"]
    second_moment = probe["second_moment"]
    size_estimate = estimate_network_size(max(probe["count"], 1e-300))
    return AggregationReport(
        mean=mean_estimate,
        maximum=probe["maximum"],
        minimum=probe["minimum"],
        second_moment=second_moment,
        network_size=size_estimate,
        total=estimate_sum(mean_estimate, size_estimate),
        value_variance=estimate_variance_from_moments(
            mean_estimate, second_moment
        ),
        variance_across_nodes=variance_across_nodes,
        cycles=cycles,
    )


class AggregationService:
    """Runs the full aggregate suite over one overlay, in one pass.

    Parameters
    ----------
    topology:
        The overlay to gossip on.
    values:
        Per-node attribute values ``a_i``.
    loss_probability:
        Optional symmetric exchange-failure probability.
    seed:
        Master seed (protocol randomness and the counting instance's
        leader draw get independent streams).
    backend:
        Kernel execution backend (``"auto"``, ``"reference"`` or
        ``"vectorized"``).
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        *,
        loss_probability: float = 0.0,
        seed: SeedLike = None,
        backend: str = "auto",
    ):
        if len(values) != topology.n:
            raise ConfigurationError(
                f"got {len(values)} values for a topology of {topology.n} nodes"
            )
        self.topology = topology
        self.values = np.asarray(values, dtype=np.float64)
        self._loss = loss_probability
        self._seed = seed
        self._backend = backend

    def _spec(self, leader_stream) -> MultiAggregateSpec:
        """The standard suite with the counting instance's leader drawn
        (one random leader holds 1)."""
        n = self.topology.n
        indicator = np.zeros(n)
        indicator[int(make_rng(leader_stream).integers(0, n))] = 1.0
        return MultiAggregateSpec.build(
            _suite_functions(),
            initial={
                "second_moment": moment_values(self.values, 2),
                "count": indicator,
            },
        )

    def run(self, cycles: int = 30, *, probe_node: int = 0) -> AggregationReport:
        """Gossip for ``cycles`` cycles and report node ``probe_node``'s
        converged view of the network."""
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if not 0 <= probe_node < self.topology.n:
            raise ConfigurationError(
                f"probe_node {probe_node} outside range [0, {self.topology.n})"
            )
        protocol_stream, leader_stream = spawn_streams(self._seed, 2)
        scenario = self._spec(leader_stream).scenario(
            self.topology,
            self.values,
            loss_probability=self._loss,
            seed=protocol_stream,
            backend=self._backend,
            cycles=cycles,
        )
        with GossipEngine(scenario) as engine:
            engine.run(cycles, record="end")
            probe = {
                name: float(engine.column(name)[probe_node])
                for name in scenario.instance_names
            }
            return _assemble_report(probe, engine.variance("mean"), cycles)

    def run_epochs(
        self,
        epochs: int = 4,
        cycles_per_epoch: int = 30,
        *,
        probe_node: int = 0,
    ) -> List[AggregationReport]:
        """Continuous monitoring via §4 epoch restarts, on the kernel.

        Runs ``epochs`` consecutive epochs of ``cycles_per_epoch``
        cycles each. At every epoch boundary the protocol restarts in
        place: each instance is re-seeded from the node attribute
        values and a fresh counting leader is drawn, so every epoch's
        report reflects a full re-aggregation (this is how a deployed
        monitor keeps estimates current). Returns one
        :class:`AggregationReport` per completed epoch, each describing
        ``probe_node``'s converged view.

        The epoch machinery models the paper's uniform overlay, so the
        service must be built over a
        :class:`~repro.topology.complete.CompleteTopology`.
        """
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if cycles_per_epoch < 1:
            raise ConfigurationError(
                f"cycles_per_epoch must be >= 1, got {cycles_per_epoch}"
            )
        if not 0 <= probe_node < self.topology.n:
            raise ConfigurationError(
                f"probe_node {probe_node} outside range [0, {self.topology.n})"
            )
        values = self.values
        names = SUITE_NAMES
        count_column = names.index("count")
        base = np.column_stack(
            [
                values,
                moment_values(values, 2),
                values,
                values,
                np.zeros(len(values)),
            ]
        )

        def reseed(context):
            rows = base[context.participants].copy()
            leader = int(context.rng.integers(0, len(context.participants)))
            rows[leader, count_column] = 1.0
            return rows

        def finalize(view):
            # view.matrix rows cover surviving participants only; map
            # the probe's slot id to its row (today no node ever leaves
            # a run_epochs scenario, but the mapping keeps this hook
            # correct as a template for churned variants)
            position = int(np.searchsorted(view.participants, probe_node))
            if (
                position >= len(view.participants)
                or view.participants[position] != probe_node
            ):
                return None  # probe departed mid-epoch: nothing to report
            probe = {
                name: float(view.matrix[position, column])
                for column, name in enumerate(names)
            }
            return _assemble_report(
                probe,
                float(view.matrix[:, 0].var(ddof=1)),
                cycles_per_epoch,
            )

        scenario = Scenario(
            self.topology,
            values,
            aggregates=_suite_functions(),
            loss_probability=self._loss,
            epochs=EpochSpec(
                cycles_per_epoch=cycles_per_epoch,
                reseed=reseed,
                finalize=finalize,
            ),
            cycles=epochs * cycles_per_epoch,
            seed=self._seed,
            backend=self._backend,
        )
        with GossipEngine(scenario) as engine:
            return engine.run(epochs * cycles_per_epoch).epoch_results
