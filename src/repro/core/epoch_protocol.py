"""The §4 epoch/restart mechanism on the event-driven simulator.

The cycle-driven implementation (:mod:`repro.core.size_estimation`)
realizes epochs with a global cycle counter. This module implements the
mechanism exactly as the paper *describes* it for a real deployment:

* execution is divided into epochs of ``k`` cycles; protocol messages
  are tagged with a monotone epoch identifier;
* "if a node receives a message with an identifier larger than its
  current one, it switches to the new epoch immediately" — so epoch
  starts spread like an epidemic broadcast and clock stragglers are
  pulled forward;
* a joining node contacts an existing node (out of band), receives "the
  next epoch identifier and the amount of time left until the next run
  starts", and begins participating only then;
* at each epoch start a node re-reads its (possibly changed) attribute,
  which is what makes the aggregate *adaptive*.

Each node records its converged approximation whenever it leaves an
epoch, so the network-level history of per-epoch outputs can be
compared against the ground truth trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, spawn_streams
from ..simulator.engine import EventDrivenSimulator
from ..simulator.transport import (
    LatencyModel,
    LossModel,
    Message,
    Transport,
)
from .aggregates import AggregateFunction, MeanAggregate

#: attribute provider: (node_id, global_time) -> current attribute value
ValueProvider = Callable[[int, float], float]


@dataclass(frozen=True)
class EpochTaggedPush:
    """Active-side message: epoch id + approximation."""

    epoch: int
    approximation: float


@dataclass(frozen=True)
class EpochTaggedReply:
    """Passive-side reply: epoch id + pre-exchange approximation."""

    epoch: int
    approximation: float


@dataclass
class EpochOutput:
    """One node's recorded output for one epoch."""

    node_id: int
    epoch: int
    value: float
    completed: bool  # False when the epoch was cut short by adoption


class EpochAggregationNode:
    """Protocol state machine with epoch tagging and restart."""

    def __init__(
        self,
        node_id: int,
        network: "EpochGossipNetwork",
        rng: np.random.Generator,
        *,
        epoch: int,
        start_time: float,
    ):
        self.node_id = node_id
        self._network = network
        self._rng = rng
        self.epoch = epoch
        self.approximation = network.value_provider(node_id, start_time)
        self.alive = True
        self.outputs: List[EpochOutput] = []
        self._activation_timer = None
        self._boundary_timer = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin gossiping and schedule the first epoch boundary."""
        delta_t = self._network.delta_t
        first = float(self._rng.uniform(0.0, delta_t))
        self._activation_timer = self._network.engine.schedule_after(
            first, self._activate
        )
        self._schedule_boundary()

    def crash(self) -> None:
        """Crash-stop: cancel timers, ignore all future messages."""
        self.alive = False
        for timer in (self._activation_timer, self._boundary_timer):
            if timer is not None:
                timer.cancel()
        self._activation_timer = None
        self._boundary_timer = None

    # -- epoch management -----------------------------------------------------

    def _epoch_end_time(self) -> float:
        """Global end time of the current epoch (epochs are aligned to
        the common reference: epoch e covers [e·T, (e+1)·T))."""
        return (self.epoch + 1) * self._network.epoch_length

    def _schedule_boundary(self) -> None:
        if self._boundary_timer is not None:
            self._boundary_timer.cancel()
        engine = self._network.engine
        end_time = max(self._epoch_end_time(), engine.now)
        self._boundary_timer = engine.schedule_at(end_time, self._on_boundary)

    def _on_boundary(self) -> None:
        if not self.alive:
            return
        self._enter_epoch(self.epoch + 1, completed=True)

    def _enter_epoch(self, new_epoch: int, *, completed: bool) -> None:
        """Record the old epoch's output and restart from the current
        attribute value."""
        self.outputs.append(
            EpochOutput(
                node_id=self.node_id,
                epoch=self.epoch,
                value=self.approximation,
                completed=completed,
            )
        )
        self.epoch = new_epoch
        self.approximation = self._network.value_provider(
            self.node_id, self._network.engine.now
        )
        self._schedule_boundary()

    def _maybe_adopt(self, seen_epoch: int) -> None:
        """The §4 adoption rule: switch immediately to a higher epoch."""
        if seen_epoch > self.epoch:
            self._enter_epoch(seen_epoch, completed=False)

    # -- gossip ---------------------------------------------------------------

    def _activate(self) -> None:
        if not self.alive:
            return
        peer = self._network.select_peer(self.node_id, self._rng)
        if peer is not None:
            self._network.transport.send(
                self.node_id,
                peer,
                EpochTaggedPush(self.epoch, self.approximation),
            )
        self._activation_timer = self._network.engine.schedule_after(
            self._network.delta_t, self._activate
        )

    def handle_message(self, source: int, payload) -> None:
        """Dispatch epoch-tagged protocol messages."""
        if not self.alive:
            return
        if isinstance(payload, EpochTaggedPush):
            self._handle_push(source, payload)
        elif isinstance(payload, EpochTaggedReply):
            self._handle_reply(payload)
        else:
            raise ConfigurationError(
                f"unknown payload type {type(payload).__name__}"
            )

    def _handle_push(self, source: int, message: EpochTaggedPush) -> None:
        self._maybe_adopt(message.epoch)
        if message.epoch < self.epoch:
            # stale push: answer with our epoch so the sender catches up,
            # but do not mix values across epochs
            self._network.transport.send(
                self.node_id, source, EpochTaggedReply(self.epoch, float("nan"))
            )
            return
        self._network.transport.send(
            self.node_id,
            source,
            EpochTaggedReply(self.epoch, self.approximation),
        )
        self.approximation = self._network.aggregate.combine(
            self.approximation, message.approximation
        )

    def _handle_reply(self, message: EpochTaggedReply) -> None:
        self._maybe_adopt(message.epoch)
        if message.epoch != self.epoch or message.approximation != message.approximation:
            return  # stale or catch-up reply (NaN payload): no mixing
        self.approximation = self._network.aggregate.combine(
            self.approximation, message.approximation
        )


class EpochGossipNetwork:
    """Event-driven network running the epoch-tagged protocol.

    Parameters
    ----------
    n:
        Initial number of nodes.
    value_provider:
        ``(node_id, time) -> attribute`` — re-read at every epoch start,
        which is what the restart mechanism makes adaptive.
    cycles_per_epoch:
        Epoch length k in cycles (epoch duration = k·∆t).
    delta_t:
        Cycle length ∆t.
    aggregate, latency, loss, seed:
        As in :class:`~repro.core.network.GossipNetwork`.
    """

    def __init__(
        self,
        n: int,
        value_provider: ValueProvider,
        *,
        cycles_per_epoch: int = 30,
        delta_t: float = 1.0,
        aggregate: Optional[AggregateFunction] = None,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        seed: SeedLike = None,
    ):
        if n < 2:
            raise ConfigurationError(f"need at least two nodes, got {n}")
        if cycles_per_epoch < 1:
            raise ConfigurationError(
                f"cycles_per_epoch must be >= 1, got {cycles_per_epoch}"
            )
        if delta_t <= 0:
            raise ConfigurationError(f"delta_t must be positive, got {delta_t}")
        self.value_provider = value_provider
        self.cycles_per_epoch = cycles_per_epoch
        self.delta_t = delta_t
        self.aggregate = aggregate if aggregate is not None else MeanAggregate()
        self.engine = EventDrivenSimulator()
        streams = spawn_streams(seed, n + 2)
        self.transport = Transport(
            self.engine,
            self._deliver,
            latency=latency,
            loss=loss,
            seed=streams[-2],
        )
        self._spawn_rng = streams[-1]
        self.nodes: Dict[int, EpochAggregationNode] = {}
        self._next_id = 0
        for stream in streams[:n]:
            self._add_node(stream, epoch=0)
        self._started = False

    @property
    def epoch_length(self) -> float:
        """Epoch duration in global time units."""
        return self.cycles_per_epoch * self.delta_t

    # -- membership -----------------------------------------------------------

    def _add_node(self, rng, *, epoch: int) -> EpochAggregationNode:
        node = EpochAggregationNode(
            self._next_id, self, rng, epoch=epoch, start_time=self.engine.now
        )
        self.nodes[self._next_id] = node
        self._next_id += 1
        return node

    def join(self) -> int:
        """A new node joins via the §4 protocol: it learns the next
        epoch id from an existing node and starts participating exactly
        at that epoch's start. Returns the new node id."""
        contact = self._sample_alive(exclude=None)
        if contact is None:
            raise ConfigurationError("no alive node to join through")
        next_epoch = self.nodes[contact].epoch + 1
        stream = np.random.default_rng(
            self._spawn_rng.integers(0, 2**63 - 1)
        )
        node = self._add_node(stream, epoch=next_epoch)
        node.alive = True
        start_at = next_epoch * self.epoch_length

        def begin(node=node):
            if node.alive:
                node.start()

        self.engine.schedule_at(max(start_at, self.engine.now), begin)
        return node.node_id

    def crash_nodes(self, node_ids) -> None:
        """Crash-stop the given nodes."""
        for node_id in node_ids:
            self.nodes[node_id].crash()

    def _sample_alive(self, exclude) -> Optional[int]:
        candidates = [
            node_id
            for node_id, node in self.nodes.items()
            if node.alive and node_id != exclude
        ]
        if not candidates:
            return None
        return candidates[int(self._spawn_rng.integers(0, len(candidates)))]

    def select_peer(self, node_id: int, rng: np.random.Generator) -> Optional[int]:
        """A uniformly random alive peer (complete random overlay)."""
        candidates = [
            other
            for other, node in self.nodes.items()
            if node.alive and other != node_id
        ]
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]

    # -- control / observation ----------------------------------------------

    def _deliver(self, message: Message) -> None:
        node = self.nodes.get(message.destination)
        if node is not None:
            node.handle_message(message.source, message.payload)

    def start(self) -> None:
        """Start all initial nodes (idempotent)."""
        if self._started:
            return
        for node in self.nodes.values():
            node.start()
        self._started = True

    def run_epochs(self, epochs: float) -> None:
        """Advance the simulation by a number of epoch lengths."""
        self.start()
        self.engine.run_until(self.engine.now + epochs * self.epoch_length)

    def epoch_outputs(self, epoch: int) -> List[EpochOutput]:
        """All recorded outputs for one epoch across nodes (including
        crashed nodes' earlier records)."""
        outputs = []
        for node in self.nodes.values():
            outputs.extend(o for o in node.outputs if o.epoch == epoch)
        return outputs

    def epoch_estimates(self, epoch: int) -> np.ndarray:
        """Converged values recorded for ``epoch`` by nodes that
        completed it."""
        return np.asarray(
            [o.value for o in self.epoch_outputs(epoch) if o.completed]
        )
