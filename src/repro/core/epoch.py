"""Epoch / restart machinery (§4).

To make aggregation adaptive the paper divides execution into
consecutive *epochs* of a fixed number of cycles; each epoch restarts
the protocol from the current attribute values and messages are tagged
with a monotonically increasing epoch identifier. Joining nodes receive
the next epoch id and wait for it; any node seeing a higher epoch id
switches immediately (epoch starts spread epidemically).

:class:`EpochSchedule` is the simulator-agnostic bookkeeping shared by
the cycle-driven experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class EpochSchedule:
    """Maps global cycle numbers to epochs.

    Parameters
    ----------
    cycles_per_epoch:
        The epoch length k — chosen from the §3 convergence rates so
        the protocol converges to the required accuracy within an epoch
        (e.g. rate^k below the target error).
    """

    cycles_per_epoch: int

    def __post_init__(self) -> None:
        if self.cycles_per_epoch < 1:
            raise ConfigurationError(
                f"cycles_per_epoch must be >= 1, got {self.cycles_per_epoch}"
            )

    def epoch_of(self, cycle: int) -> int:
        """The epoch id active during global ``cycle`` (0-based)."""
        if cycle < 0:
            raise ConfigurationError(f"cycle must be non-negative, got {cycle}")
        return cycle // self.cycles_per_epoch

    def is_epoch_start(self, cycle: int) -> bool:
        """True when ``cycle`` is the first cycle of an epoch."""
        if cycle < 0:
            raise ConfigurationError(f"cycle must be non-negative, got {cycle}")
        return cycle % self.cycles_per_epoch == 0

    def epoch_start_cycle(self, epoch: int) -> int:
        """First global cycle of ``epoch``."""
        if epoch < 0:
            raise ConfigurationError(f"epoch must be non-negative, got {epoch}")
        return epoch * self.cycles_per_epoch

    def cycles_until_next_epoch(self, cycle: int) -> int:
        """How many cycles remain before the next epoch starts.

        This is the quantity an existing node hands to a joining node
        ("the amount of time left until the next run starts", §4).
        """
        if cycle < 0:
            raise ConfigurationError(f"cycle must be non-negative, got {cycle}")
        return self.cycles_per_epoch - (cycle % self.cycles_per_epoch)

    @staticmethod
    def adopt(current_epoch: int, seen_epoch: int) -> int:
        """Epoch adoption rule: switch immediately to any higher id."""
        return max(current_epoch, seen_epoch)

    def required_epoch_length(self, rate: float, accuracy: float) -> int:
        """Minimum k with ``rate**k <= accuracy`` — the §4 guidance for
        choosing the epoch length from a §3 convergence rate."""
        from ..avg.theory import cycles_to_reduce

        return cycles_to_reduce(accuracy, rate)
