"""The paper's primary contribution: anti-entropy aggregation.

This package implements the protocol of Figure 1 (push-pull exchange of
aggregate approximations), the aggregate functions of §1.1, the
epoch/restart machinery of §4 and the network-size estimation service
built on top of it.
"""

from .aggregates import (
    AggregateFunction,
    MeanAggregate,
    MaxAggregate,
    MinAggregate,
    GeometricMeanAggregate,
    estimate_network_size,
    estimate_sum,
    estimate_variance_from_moments,
    moment_values,
)
from .protocol import (
    AggregationNode,
    PushMessage,
    ReplyMessage,
    WaitingTimeStrategy,
    ConstantWaiting,
    ExponentialWaiting,
)
from .network import GossipNetwork
from .epoch import EpochSchedule
from .size_estimation import (
    SizeEstimationConfig,
    SizeEstimationExperiment,
    EpochReport,
)
from .multi import MultiAggregateSpec, MultiAggregateState, combine_multi
from .broadcast import (
    PushPullBroadcast,
    expected_rounds_push,
    expected_rounds_push_pull,
    spread_trajectory_deterministic,
)
from .service import AggregationReport, AggregationService
from .robust import RobustAverager, RobustRunResult
from .epoch_protocol import (
    EpochGossipNetwork,
    EpochAggregationNode,
    EpochOutput,
)

__all__ = [
    "EpochGossipNetwork",
    "EpochAggregationNode",
    "EpochOutput",
    "RobustAverager",
    "RobustRunResult",
    "PushPullBroadcast",
    "expected_rounds_push",
    "expected_rounds_push_pull",
    "spread_trajectory_deterministic",
    "AggregationReport",
    "AggregationService",
    "AggregateFunction",
    "MeanAggregate",
    "MaxAggregate",
    "MinAggregate",
    "GeometricMeanAggregate",
    "estimate_network_size",
    "estimate_sum",
    "estimate_variance_from_moments",
    "moment_values",
    "AggregationNode",
    "PushMessage",
    "ReplyMessage",
    "WaitingTimeStrategy",
    "ConstantWaiting",
    "ExponentialWaiting",
    "GossipNetwork",
    "EpochSchedule",
    "SizeEstimationConfig",
    "SizeEstimationExperiment",
    "EpochReport",
    "MultiAggregateSpec",
    "MultiAggregateState",
    "combine_multi",
]
