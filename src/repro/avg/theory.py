"""Closed-form convergence theory (§3.2–§3.3 of the paper).

Implements, as executable formulas:

* Lemma 1 — the expected variance reduction of a single elementary step
  on uncorrelated zero-mean values,
* Theorem 1 — ``E(s_{i+1}) = E(2^{-φ}) E(s_i)``, reduced here to
  computing ``E(2^{-φ})`` for a φ distribution,
* the three case studies — eq. (8) for PM, eq. (10) for RAND and
  eq. (12) for SEQ/PMRAND,
* Lemma 2 — optimality of the deterministic φ ≡ 2 among all φ with
  ``E(φ) = 2``, checkable numerically for any candidate distribution,
* the §5 efficiency claim — cycles needed for a target variance
  reduction.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

import numpy as np

from ..errors import ConfigurationError

#: Eq. (8): optimal rate of GETPAIR_PM, E(2^{-φ}) with φ ≡ 2.
RATE_PM: float = 0.25

#: Eq. (10): rate of GETPAIR_RAND, φ ~ Poisson(2) ⇒ E(2^{-φ}) = 1/e.
RATE_RAND: float = 1.0 / math.e

#: Eq. (12): rate of GETPAIR_SEQ ≈ GETPAIR_PMRAND, φ = 1 + Poisson(1)
#: ⇒ E(2^{-φ}) = 1/(2√e).
RATE_SEQ: float = 1.0 / (2.0 * math.sqrt(math.e))

#: Same distribution (and rate) as SEQ by the §3.3.3 argument.
RATE_PMRAND: float = RATE_SEQ

_RATES: Dict[str, float] = {
    "pm": RATE_PM,
    "rand": RATE_RAND,
    "seq": RATE_SEQ,
    "pmrand": RATE_PMRAND,
}


def convergence_rate(selector_name: str) -> float:
    """The paper's predicted per-cycle variance reduction rate for a
    selector name (``"pm"``, ``"rand"``, ``"seq"`` or ``"pmrand"``)."""
    try:
        return _RATES[selector_name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown selector {selector_name!r}; expected one of {sorted(_RATES)}"
        ) from None


def poisson_pmf(k: int, lam: float) -> float:
    """P(X = k) for X ~ Poisson(lam)."""
    if k < 0:
        return 0.0
    if lam < 0:
        raise ConfigurationError(f"Poisson rate must be non-negative, got {lam}")
    return math.exp(k * math.log(lam) - lam - math.lgamma(k + 1)) if lam > 0 else float(k == 0)


def phi_distribution(selector_name: str, *, max_k: int = 64) -> np.ndarray:
    """The pmf of φ (communications per node per cycle) for a selector.

    * PM: point mass at 2 (eq. 8 context).
    * RAND: Poisson(2) (eq. 9).
    * SEQ / PMRAND: shifted Poisson, φ = 1 + Poisson(1) (eq. 11).
    """
    name = selector_name.lower()
    pmf = np.zeros(max_k + 1)
    if name == "pm":
        pmf[2] = 1.0
    elif name == "rand":
        for k in range(max_k + 1):
            pmf[k] = poisson_pmf(k, 2.0)
    elif name in ("seq", "pmrand"):
        for k in range(1, max_k + 1):
            pmf[k] = poisson_pmf(k - 1, 1.0)
    else:
        raise ConfigurationError(f"unknown selector {selector_name!r}")
    return pmf


def expected_two_pow_minus_phi(pmf: Mapping[int, float] | np.ndarray) -> float:
    """``E(2^{-φ})`` for an arbitrary φ distribution (Theorem 1's rate).

    ``pmf`` is either an array indexed by k or a mapping k → probability.
    Probabilities must sum to ~1.
    """
    if isinstance(pmf, np.ndarray):
        items = enumerate(pmf.tolist())
        total = float(np.sum(pmf))
    else:
        items = pmf.items()
        total = float(sum(pmf.values()))
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        raise ConfigurationError(f"pmf sums to {total}, expected 1")
    return float(sum(p * 2.0 ** (-k) for k, p in items))


def expected_reduction_lemma1(
    e_ai_sq: float, e_aj_sq: float, n: int
) -> float:
    """Lemma 1 (eq. 5): expected variance reduction from one elementary
    step replacing a_i, a_j with their average, for uncorrelated
    zero-mean values.

    Returns ``E(σ²_a − σ²_a')``.
    """
    if n < 2:
        raise ConfigurationError("Lemma 1 requires at least two elements")
    return (e_ai_sq + e_aj_sq) / (2.0 * (n - 1))


def cycles_to_reduce(factor: float, rate: float) -> int:
    """Cycles needed so that ``rate**cycles <= factor``.

    Implements the §5 claim: with GETPAIR_RAND (rate 1/e) a 99.9 %
    reduction (factor 10⁻³) needs ``ln 1000 ≈ 7`` cycles.
    """
    if not 0 < factor < 1:
        raise ConfigurationError(f"factor must be in (0, 1), got {factor}")
    if not 0 < rate < 1:
        raise ConfigurationError(f"rate must be in (0, 1), got {rate}")
    return math.ceil(math.log(factor) / math.log(rate))


def rate_seq_with_loss(loss_probability: float) -> float:
    """Predicted SEQ rate when each exchange independently fails with
    probability p (symmetric message loss).

    Under loss, a node's φ is the Bernoulli-thinned SEQ distribution:
    its own initiation survives with probability 1−p and the Poisson(1)
    incoming contacts are thinned to Poisson(1−p), so

        E(2^{-φ}) = (p + (1−p)/2) · exp(−(1−p)/2).

    Reduces to eq. (12)'s 1/(2√e) at p = 0 and to 1 (no convergence)
    at p = 1. This extends the paper's Theorem 1 machinery to the
    lossy-channel setting discussed in §1.4.
    """
    if not 0.0 <= loss_probability <= 1.0:
        raise ConfigurationError(
            f"loss probability must be in [0, 1], got {loss_probability}"
        )
    survive = 1.0 - loss_probability
    return (loss_probability + survive / 2.0) * math.exp(-survive / 2.0)


def verify_lemma2_optimality(
    pmf: Mapping[int, float] | np.ndarray, *, tolerance: float = 1e-9
) -> bool:
    """Check Lemma 2 numerically for a candidate φ distribution.

    Returns True when the candidate has ``E(φ) = 2`` (within tolerance)
    and ``E(2^{-φ}) >= 1/4``, i.e. it does not beat the point mass at 2.
    Raises if the mean constraint is violated, since Lemma 2 only speaks
    about distributions with mean exactly 2.
    """
    if isinstance(pmf, np.ndarray):
        ks = np.arange(len(pmf))
        mean = float((ks * pmf).sum())
    else:
        mean = float(sum(k * p for k, p in pmf.items()))
    if not math.isclose(mean, 2.0, abs_tol=1e-6):
        raise ConfigurationError(
            f"Lemma 2 applies to distributions with E(φ)=2, got {mean}"
        )
    return expected_two_pow_minus_phi(pmf) >= RATE_PM - tolerance
