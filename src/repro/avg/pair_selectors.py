"""GETPAIR implementations (§3.3 of the paper).

Algorithm AVG (Figure 2) performs ``N`` elementary variance-reduction
steps per cycle, with pairs supplied by a selector:

* :class:`GetPairPerfectMatching` — §3.3.1, the optimal but artificial
  strategy: two disjoint perfect matchings per cycle, ``φ ≡ 2``,
  rate 1/4.
* :class:`GetPairRand` — §3.3.2, a uniformly random edge per call,
  ``φ ~ Poisson(2)``, rate 1/e.
* :class:`GetPairSeq` — §3.3.3, the practical protocol: iterate nodes in
  a fixed order, each picking a random neighbor, ``φ = 1 + Poisson(1)``
  (via the PMRAND argument), rate 1/(2√e).
* :class:`GetPairPMRand` — the analysis device of §3.3.3 that combines a
  PM half-cycle with a RAND half-cycle and has the same φ distribution
  as SEQ.

All selectors are *value-blind*: the pair sequence of a whole cycle can
be (and is) generated up front, which enables the vectorized draws used
at paper scale. Each selector exposes :meth:`cycle_pairs` returning an
``(N, 2)`` array of index pairs — one cycle's worth of GETPAIR calls.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import PairSelectionError
from ..topology.base import AdjacencyTopology, Topology
from ..topology.complete import CompleteTopology


class PairSelector(ABC):
    """Produces the per-cycle pair sequence consumed by algorithm AVG."""

    #: short identifier used in experiment reports
    name: str = "abstract"

    def __init__(self, topology: Topology):
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """The overlay the pairs are drawn from."""
        return self._topology

    @property
    def n(self) -> int:
        """Network size."""
        return self._topology.n

    @abstractmethod
    def cycle_pairs(self, rng: np.random.Generator) -> np.ndarray:
        """The ``(calls, 2)`` pair sequence for one cycle of AVG.

        Every row is an ``(i, j)`` pair with ``i != j`` and, for sparse
        topologies, ``(i, j)`` an edge of the overlay. The number of
        calls per cycle is ``N`` for every selector in the paper.
        """

    def phi_counts(self, pairs: np.ndarray) -> np.ndarray:
        """Per-node selection counts φ_k for a cycle's pair sequence."""
        counts = np.bincount(pairs.ravel(), minlength=self.n)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


def _two_disjoint_matchings(n: int, rng: np.random.Generator) -> np.ndarray:
    """Two edge-disjoint perfect matchings over ``n`` (even) labels.

    A random permutation ``p`` yields matching 1 as consecutive pairs
    ``(p[0],p[1]), (p[2],p[3]) …`` and matching 2 as the shifted pairs
    ``(p[1],p[2]), …, (p[n-1],p[0])`` — the two alternating edge classes
    of a Hamiltonian cycle, hence disjoint by construction.
    """
    p = rng.permutation(n)
    first = p.reshape(-1, 2)
    second = np.column_stack((p[1::2], np.concatenate((p[2::2], p[:1]))))
    return np.vstack((first, second))


class GetPairPerfectMatching(PairSelector):
    """GETPAIR_PM (§3.3.1): two disjoint perfect matchings per cycle.

    Only supported on the complete topology: the strategy "requires
    global knowledge of the system" and serves purely as the optimal
    reference. ``N`` must be even so a perfect matching exists.
    """

    name = "pm"

    def __init__(self, topology: Topology):
        super().__init__(topology)
        if not isinstance(topology, CompleteTopology):
            raise PairSelectionError(
                "GETPAIR_PM requires the complete topology (global knowledge)"
            )
        if topology.n % 2 != 0:
            raise PairSelectionError(
                f"perfect matching needs an even node count, got {topology.n}"
            )

    def cycle_pairs(self, rng: np.random.Generator) -> np.ndarray:
        return _two_disjoint_matchings(self.n, rng)


class GetPairRand(PairSelector):
    """GETPAIR_RAND (§3.3.2): each call returns a uniformly random edge.

    On the complete graph this is a uniform distinct pair; on sparse
    overlays a uniform draw from the edge list. φ is (approximately)
    Poisson with parameter 2.
    """

    name = "rand"

    def cycle_pairs(self, rng: np.random.Generator) -> np.ndarray:
        n = self.n
        if isinstance(self._topology, CompleteTopology):
            first = rng.integers(0, n, size=n)
            offset = rng.integers(0, n - 1, size=n)
            second = offset + (offset >= first)
            return np.column_stack((first, second))
        if isinstance(self._topology, AdjacencyTopology):
            edge_array = self._topology.edge_array()
            if len(edge_array) == 0:
                raise PairSelectionError("topology has no edges to sample")
            picks = rng.integers(0, len(edge_array), size=n)
            return edge_array[picks].copy()
        pairs = np.empty((n, 2), dtype=np.int64)
        for call in range(n):
            pairs[call] = self._topology.random_edge(rng)
        return pairs


class GetPairSeq(PairSelector):
    """GETPAIR_SEQ (§3.3.3): iterate the node set in a fixed order, each
    node picking a uniformly random neighbor.

    This is the selector that maps onto the practical distributed
    protocol of Figure 1: every node initiates exactly once per cycle,
    so ``φ = 1 + φ'`` with ``φ' ≈ Poisson(1)``.
    """

    name = "seq"

    def cycle_pairs(self, rng: np.random.Generator) -> np.ndarray:
        initiators = np.arange(self.n, dtype=np.int64)
        partners = self._topology.random_neighbor_array(initiators, rng)
        return np.column_stack((initiators, partners))


class GetPairPMRand(PairSelector):
    """GETPAIR_PMRAND (§3.3.3): PM for the first N/2 calls of a cycle,
    RAND for the remaining N/2.

    A non-practical analysis device: it satisfies Theorem 1's
    assumptions while sharing SEQ's φ distribution (1 + Poisson(1)),
    which is how the paper derives SEQ's 1/(2√e) rate. Requires the
    complete topology and even N, like PM.
    """

    name = "pmrand"

    def __init__(self, topology: Topology):
        super().__init__(topology)
        if not isinstance(topology, CompleteTopology):
            raise PairSelectionError(
                "GETPAIR_PMRAND requires the complete topology"
            )
        if topology.n % 2 != 0:
            raise PairSelectionError(
                f"perfect matching needs an even node count, got {topology.n}"
            )

    def cycle_pairs(self, rng: np.random.Generator) -> np.ndarray:
        n = self.n
        p = rng.permutation(n)
        matching = p.reshape(-1, 2)  # N/2 PM calls
        first = rng.integers(0, n, size=n - n // 2)
        offset = rng.integers(0, n - 1, size=n - n // 2)
        second = offset + (offset >= first)
        random_half = np.column_stack((first, second))
        return np.vstack((matching, random_half))
