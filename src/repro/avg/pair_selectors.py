"""GETPAIR implementations (§3.3 of the paper).

Algorithm AVG (Figure 2) performs ``N`` elementary variance-reduction
steps per cycle, with pairs supplied by a selector:

* :class:`GetPairPerfectMatching` — §3.3.1, the optimal but artificial
  strategy: two disjoint perfect matchings per cycle, ``φ ≡ 2``,
  rate 1/4.
* :class:`GetPairRand` — §3.3.2, a uniformly random edge per call,
  ``φ ~ Poisson(2)``, rate 1/e.
* :class:`GetPairSeq` — §3.3.3, the practical protocol: iterate nodes in
  a fixed order, each picking a random neighbor, ``φ = 1 + Poisson(1)``
  (via the PMRAND argument), rate 1/(2√e).
* :class:`GetPairPMRand` — the analysis device of §3.3.3 that combines a
  PM half-cycle with a RAND half-cycle and has the same φ distribution
  as SEQ.

All selectors are *value-blind*: the pair sequence of a whole cycle can
be (and is) generated up front, which enables the vectorized draws used
at paper scale. Each selector exposes :meth:`cycle_pairs` returning an
``(N, 2)`` array of index pairs — one cycle's worth of GETPAIR calls.

Since the pair-mode kernel refactor the sequence generation itself is
hosted in :mod:`repro.kernel.pairs` — the same draws the
:class:`~repro.kernel.engine.GossipEngine` makes when a scenario
declares a :class:`~repro.kernel.pairs.PairProtocolSpec` — and these
classes are thin, API-stable shells binding a selector name to a
topology.
"""

from __future__ import annotations

from abc import ABC

import numpy as np

from ..kernel.pairs import (
    pairs_pm,
    pairs_pmrand,
    pairs_rand,
    pairs_seq,
    validate_pair_topology,
)
from ..topology.base import Topology


class PairSelector(ABC):
    """Produces the per-cycle pair sequence consumed by algorithm AVG.

    The built-in subclasses set :attr:`name` (the kernel's selector id)
    and :attr:`_generator` and inherit everything else: construction
    validates the topology preconditions and :meth:`cycle_pairs`
    delegates to the kernel generator. User-defined strategies remain
    supported the pre-kernel way — subclass, pick a distinct ``name``,
    and override :meth:`cycle_pairs`; :class:`AvgAlgorithm` runs such
    selectors on the kernel through a custom
    :attr:`~repro.kernel.pairs.PairProtocolSpec.generator`.
    """

    #: short identifier used in experiment reports; for the built-in
    #: strategies it doubles as the kernel's
    #: :attr:`~repro.kernel.pairs.PairProtocolSpec.selector`
    name: str = "abstract"

    #: the kernel pair generator backing this selector (None for
    #: user-defined subclasses, which override :meth:`cycle_pairs`)
    _generator = None

    def __init__(self, topology: Topology):
        if type(self)._generator is not None:
            validate_pair_topology(self.name, topology)
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """The overlay the pairs are drawn from."""
        return self._topology

    @property
    def n(self) -> int:
        """Network size."""
        return self._topology.n

    def cycle_pairs(self, rng: np.random.Generator) -> np.ndarray:
        """The ``(calls, 2)`` pair sequence for one cycle of AVG.

        Every row is an ``(i, j)`` pair with ``i != j`` and, for sparse
        topologies, ``(i, j)`` an edge of the overlay. The number of
        calls per cycle is ``N`` for every selector in the paper.
        """
        generator = type(self)._generator
        if generator is None:
            raise NotImplementedError(
                "user-defined PairSelector subclasses must override "
                "cycle_pairs"
            )
        return generator(self._topology, rng)

    def phi_counts(self, pairs: np.ndarray) -> np.ndarray:
        """Per-node selection counts φ_k for a cycle's pair sequence."""
        counts = np.bincount(pairs.ravel(), minlength=self.n)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class GetPairPerfectMatching(PairSelector):
    """GETPAIR_PM (§3.3.1): two disjoint perfect matchings per cycle.

    Only supported on the complete topology: the strategy "requires
    global knowledge of the system" and serves purely as the optimal
    reference. ``N`` must be even so a perfect matching exists.
    """

    name = "pm"
    _generator = staticmethod(pairs_pm)


class GetPairRand(PairSelector):
    """GETPAIR_RAND (§3.3.2): each call returns a uniformly random edge.

    On the complete graph this is a uniform distinct pair; on sparse
    overlays a uniform draw from the edge list. φ is (approximately)
    Poisson with parameter 2.
    """

    name = "rand"
    _generator = staticmethod(pairs_rand)


class GetPairSeq(PairSelector):
    """GETPAIR_SEQ (§3.3.3): iterate the node set in a fixed order, each
    node picking a uniformly random neighbor.

    This is the selector that maps onto the practical distributed
    protocol of Figure 1: every node initiates exactly once per cycle,
    so ``φ = 1 + φ'`` with ``φ' ≈ Poisson(1)``.
    """

    name = "seq"
    _generator = staticmethod(pairs_seq)


class GetPairPMRand(PairSelector):
    """GETPAIR_PMRAND (§3.3.3): PM for the first N/2 calls of a cycle,
    RAND for the remaining N/2.

    A non-practical analysis device: it satisfies Theorem 1's
    assumptions while sharing SEQ's φ distribution (1 + Poisson(1)),
    which is how the paper derives SEQ's 1/(2√e) rate. Requires the
    complete topology and even N, like PM.
    """

    name = "pmrand"
    _generator = staticmethod(pairs_pmrand)
