"""Empirical convergence analysis.

Turns AVG trajectories (or any variance series) into the quantities the
paper's figures report: per-cycle reduction ratios, fitted geometric
rates and cycles-to-threshold counts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


def empirical_reduction_rates(variances: Sequence[float]) -> np.ndarray:
    """Per-cycle ratios σ²ᵢ/σ²ᵢ₋₁ from a variance trajectory.

    Ratios where the previous variance is zero are reported as ``nan``
    (the run already converged exactly).
    """
    variances = np.asarray(variances, dtype=np.float64)
    if variances.ndim != 1 or len(variances) < 2:
        raise ConfigurationError("need a 1-D trajectory with at least two points")
    previous = variances[:-1]
    ratios = np.full(len(variances) - 1, np.nan)
    nonzero = previous > 0
    ratios[nonzero] = variances[1:][nonzero] / previous[nonzero]
    return ratios


def fit_geometric_rate(variances: Sequence[float]) -> float:
    """Least-squares geometric rate of a variance trajectory.

    Fits ``log σ²ᵢ = log σ²₀ + i·log r`` and returns ``r``. This is the
    statistically robust way to extract the per-cycle rate the theory
    predicts (E(2^{-φ})) from a noisy simulated trajectory.
    """
    variances = np.asarray(variances, dtype=np.float64)
    if variances.ndim != 1 or len(variances) < 2:
        raise ConfigurationError("need a 1-D trajectory with at least two points")
    if np.any(variances <= 0):
        variances = variances[variances > 0]
        if len(variances) < 2:
            raise ConfigurationError("trajectory collapsed to zero too early to fit")
    cycles = np.arange(len(variances), dtype=np.float64)
    slope = np.polyfit(cycles, np.log(variances), 1)[0]
    return float(np.exp(slope))


def cycles_until_threshold(
    variances: Sequence[float], threshold_ratio: float
) -> int:
    """First cycle index i with σ²ᵢ/σ²₀ ≤ ``threshold_ratio``.

    Returns −1 when the trajectory never reaches the threshold.
    Used to check the §5 claim (99.9 % reduction in ≈ 7 cycles for
    GETPAIR_RAND).
    """
    if not 0 < threshold_ratio < 1:
        raise ConfigurationError(
            f"threshold_ratio must be in (0, 1), got {threshold_ratio}"
        )
    variances = np.asarray(variances, dtype=np.float64)
    if len(variances) == 0 or variances[0] <= 0:
        raise ConfigurationError("need a trajectory with positive initial variance")
    target = variances[0] * threshold_ratio
    hits = np.nonzero(variances <= target)[0]
    return int(hits[0]) if len(hits) else -1
