"""Value vectors and the empirical statistics of eqs. (2)–(3).

The paper analyzes anti-entropy averaging as variance reduction over a
vector ``a = (a_1 .. a_N)``. :class:`ValueVector` wraps such a vector
and exposes exactly the statistics the paper tracks:

* ``mean`` — the empirical average (eq. 2), conserved by every
  elementary step, and
* ``variance`` — the unbiased empirical variance (eq. 3), which the
  convergence theorems drive to zero.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng


def empirical_mean(values: np.ndarray) -> float:
    """Empirical average, eq. (2)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("mean of an empty vector is undefined")
    return float(values.mean())


def empirical_variance(values: np.ndarray) -> float:
    """Unbiased empirical variance with the paper's 1/(N−1) factor, eq. (3)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        raise ConfigurationError("variance needs at least two values")
    return float(values.var(ddof=1))


class ValueVector:
    """A mutable vector of node values with paper-faithful statistics.

    The vector owns a float64 numpy array. Elementary steps mutate it in
    place (mirroring Figure 2's in-place AVG); ``snapshot`` returns a
    defensive copy for recording trajectories.
    """

    def __init__(self, values: Union[np.ndarray, Iterable[float]]):
        array = np.array(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=np.float64)
        if array.ndim != 1:
            raise ConfigurationError(f"value vector must be 1-D, got shape {array.shape}")
        if array.size == 0:
            raise ConfigurationError("value vector must be non-empty")
        self._values = array

    # ------------------------------------------------------------------
    # constructors for the paper's initial distributions
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, n: int, *, low: float = 0.0, high: float = 1.0,
                seed: SeedLike = None) -> "ValueVector":
        """IID uniform initial values (the generic §3 setting)."""
        rng = make_rng(seed)
        return cls(rng.uniform(low, high, size=n))

    @classmethod
    def gaussian(cls, n: int, *, mean: float = 0.0, std: float = 1.0,
                 seed: SeedLike = None) -> "ValueVector":
        """IID normal initial values with the given mean and std."""
        rng = make_rng(seed)
        return cls(rng.normal(mean, std, size=n))

    @classmethod
    def peak(cls, n: int, *, peak_value: float = 1.0,
             peak_index: int = 0) -> "ValueVector":
        """The counting initializer of §4: one node holds ``peak_value``
        (the leader's 1), everyone else holds 0. The true average is
        ``peak_value / n``, so the converged estimate yields ``n``.
        """
        if not 0 <= peak_index < n:
            raise ConfigurationError(
                f"peak_index {peak_index} outside range [0, {n})"
            )
        values = np.zeros(n, dtype=np.float64)
        values[peak_index] = peak_value
        return cls(values)

    @classmethod
    def constant(cls, n: int, value: float) -> "ValueVector":
        """All nodes share ``value`` — zero variance from the start."""
        return cls(np.full(n, value, dtype=np.float64))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Vector length (network size N)."""
        return self._values.size

    @property
    def values(self) -> np.ndarray:
        """The underlying array (mutable — this is the live state)."""
        return self._values

    def snapshot(self) -> np.ndarray:
        """An independent copy of the current values."""
        return self._values.copy()

    @property
    def mean(self) -> float:
        """Empirical average, eq. (2)."""
        return empirical_mean(self._values)

    @property
    def variance(self) -> float:
        """Unbiased empirical variance, eq. (3)."""
        return empirical_variance(self._values)

    @property
    def total(self) -> float:
        """Sum of all values — the conserved 'mass'."""
        return float(self._values.sum())

    def max_error(self) -> float:
        """Largest absolute deviation of any node from the true average."""
        return float(np.abs(self._values - self._values.mean()).max())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def elementary_step(self, i: int, j: int) -> None:
        """The elementary variance reduction step of Figure 2:
        ``a_i = a_j = (a_i + a_j) / 2``."""
        if i == j:
            raise ConfigurationError("elementary step requires two distinct indices")
        midpoint = (self._values[i] + self._values[j]) * 0.5
        self._values[i] = midpoint
        self._values[j] = midpoint

    def copy(self) -> "ValueVector":
        """Deep copy of this vector."""
        return ValueVector(self._values.copy())

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ValueVector(n={self.n}, mean={self.mean:.6g}, "
            f"variance={self.variance:.6g})"
        )
