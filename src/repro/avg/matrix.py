"""Linear-algebra view of algorithm AVG.

Each elementary step ``a_i = a_j = (a_i + a_j)/2`` is multiplication by
the elementary averaging matrix ``W(i,j)`` (identity except rows/cols
i, j, where it is the 2×2 block of 1/2s); a whole cycle is the product
of its N step matrices. This module materializes those matrices for
*small* networks so tests can verify, independently of the stochastic
machinery, that

* every cycle matrix is doubly stochastic (mass conservation +
  stability),
* the variance reduction of a cycle equals the induced contraction of
  the centered subspace, and
* the expected spectral behavior matches Theorem 1's E(2^{-φ}) on
  average.

This is deliberately O(N²) — a verification tool, not a simulation
path.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


def elementary_matrix(n: int, i: int, j: int) -> np.ndarray:
    """The averaging matrix W(i,j) of one elementary step."""
    if not (0 <= i < n and 0 <= j < n):
        raise ConfigurationError(f"indices ({i}, {j}) outside range [0, {n})")
    if i == j:
        raise ConfigurationError("elementary matrix needs distinct indices")
    matrix = np.eye(n)
    matrix[i, i] = matrix[j, j] = 0.5
    matrix[i, j] = matrix[j, i] = 0.5
    return matrix


def cycle_matrix(n: int, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """The product matrix of a whole cycle's pair sequence.

    Applying pairs in order p₁, p₂, …, p_N to a vector equals
    ``W(p_N) ··· W(p_1) · a``, so later steps multiply on the left.
    """
    matrix = np.eye(n)
    for i, j in pairs:
        matrix = elementary_matrix(n, int(i), int(j)) @ matrix
    return matrix


def is_doubly_stochastic(matrix: np.ndarray, *, tolerance: float = 1e-9) -> bool:
    """Rows and columns sum to 1 and entries are non-negative."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError("expected a square matrix")
    if np.any(matrix < -tolerance):
        return False
    ones = np.ones(matrix.shape[0])
    return bool(
        np.allclose(matrix @ ones, ones, atol=tolerance)
        and np.allclose(matrix.T @ ones, ones, atol=tolerance)
    )


def contraction_coefficient(matrix: np.ndarray) -> float:
    """Worst-case variance contraction of one cycle matrix.

    For doubly stochastic W the empirical variance of ``W a`` is at most
    ``λ²`` times that of ``a``, where λ is the second-largest singular
    value of W (the largest on the centered subspace ``1⊥``). Returns λ².
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError("expected a square matrix")
    n = matrix.shape[0]
    centering = np.eye(n) - np.ones((n, n)) / n
    centered = centering @ matrix @ centering
    singular_values = np.linalg.svd(centered, compute_uv=False)
    return float(singular_values[0] ** 2)


def realized_reduction(matrix: np.ndarray, vector: np.ndarray) -> float:
    """The actual σ²(W a)/σ²(a) for one concrete vector."""
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1 or len(vector) != matrix.shape[0]:
        raise ConfigurationError("vector length must match matrix size")
    before = vector.var(ddof=1)
    if before == 0:
        raise ConfigurationError("input vector has zero variance")
    after = (matrix @ vector).var(ddof=1)
    return float(after / before)
