"""The theoretical AVG layer (Section 3 of the paper).

This package models one cycle of anti-entropy averaging as the AVG
algorithm of Figure 2: ``N`` elementary variance-reduction steps
``a_i = a_j = (a_i + a_j) / 2`` driven by a pluggable pair selector.
It contains the pair selectors analyzed in §3.3, the instrumented
algorithm runner, and the closed-form convergence theory.
"""

from .vector import ValueVector, empirical_mean, empirical_variance
from .pair_selectors import (
    PairSelector,
    GetPairPerfectMatching,
    GetPairRand,
    GetPairSeq,
    GetPairPMRand,
)
from .algorithm import AvgAlgorithm, CycleStats, RunResult, run_avg
from .theory import (
    RATE_PM,
    RATE_RAND,
    RATE_SEQ,
    convergence_rate,
    expected_reduction_lemma1,
    expected_two_pow_minus_phi,
    phi_distribution,
    poisson_pmf,
    cycles_to_reduce,
    rate_seq_with_loss,
    verify_lemma2_optimality,
)
from .convergence import (
    empirical_reduction_rates,
    fit_geometric_rate,
    cycles_until_threshold,
)

__all__ = [
    "ValueVector",
    "empirical_mean",
    "empirical_variance",
    "PairSelector",
    "GetPairPerfectMatching",
    "GetPairRand",
    "GetPairSeq",
    "GetPairPMRand",
    "AvgAlgorithm",
    "CycleStats",
    "RunResult",
    "run_avg",
    "RATE_PM",
    "RATE_RAND",
    "RATE_SEQ",
    "convergence_rate",
    "expected_reduction_lemma1",
    "expected_two_pow_minus_phi",
    "phi_distribution",
    "poisson_pmf",
    "cycles_to_reduce",
    "rate_seq_with_loss",
    "verify_lemma2_optimality",
    "empirical_reduction_rates",
    "fit_geometric_rate",
    "cycles_until_threshold",
]
