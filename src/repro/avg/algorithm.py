"""Algorithm AVG (Figure 2) — the instrumented cycle runner.

One *cycle* of anti-entropy averaging is modeled as ``N`` elementary
variance-reduction steps driven by a pair selector. This module executes
cycles and records exactly the quantities the paper's figures plot:

* per-cycle empirical variance σ²ᵢ and the reduction ratio σ²ᵢ/σ²ᵢ₋₁
  (Figure 3),
* per-node communication counts φ (Theorem 1), and
* optionally the parallel ``s`` vector of Theorem 1's proof
  (``s_i = s_j = (s_i + s_j)/4``), which lets tests verify
  ``E(s_{i+1}) = E(2^{-φ}) · E(s_i)`` directly.

Since the pair-mode kernel refactor :class:`AvgAlgorithm` is a thin
shell over :class:`~repro.kernel.engine.GossipEngine`: it declares a
:class:`~repro.kernel.pairs.PairProtocolSpec` on a
:class:`~repro.kernel.scenario.Scenario` and reads the trajectory back
out of the kernel result. That is what gives every GETPAIR selector —
not just SEQ — the vectorized backend's conflict-free batched
execution at paper scale (``backend="vectorized"`` or the default
``"auto"``), with reference/vectorized trajectories bitwise-equal.
Per-cycle variance is measured once per boundary (cycle *i*'s
``variance_after`` IS cycle *i+1*'s ``variance_before``), which both
halves the O(N) reduction passes and removes a float-drift source
between the two measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..kernel.engine import GossipEngine
from ..kernel.pairs import PairProtocolSpec
from ..kernel.scenario import Scenario
from ..rng import SeedLike
from .pair_selectors import PairSelector
from .vector import ValueVector


@dataclass(frozen=True)
class CycleStats:
    """Measurements for a single cycle of AVG."""

    cycle: int
    variance_before: float
    variance_after: float
    phi: np.ndarray
    s_mean: Optional[float] = None

    @property
    def reduction(self) -> float:
        """The per-cycle variance reduction ratio σ²ᵢ/σ²ᵢ₋₁.

        Returns ``nan`` once the variance has hit exact zero (converged).
        """
        if self.variance_before == 0.0:
            return float("nan")
        return self.variance_after / self.variance_before

    @property
    def mean_phi(self) -> float:
        """Average number of communications per node this cycle (≈ 2)."""
        return float(self.phi.mean())


@dataclass
class RunResult:
    """Full trajectory of a multi-cycle AVG run."""

    initial_variance: float
    initial_mean: float
    cycles: List[CycleStats] = field(default_factory=list)

    @property
    def variances(self) -> np.ndarray:
        """σ²₀, σ²₁, …, σ²_T."""
        return np.asarray(
            [self.initial_variance] + [c.variance_after for c in self.cycles]
        )

    @property
    def reductions(self) -> np.ndarray:
        """Per-cycle ratios σ²ᵢ/σ²ᵢ₋₁ for i = 1..T."""
        return np.asarray([c.reduction for c in self.cycles])

    @property
    def overall_reduction(self) -> float:
        """σ²_T / σ²₀ across the whole run."""
        if self.initial_variance == 0.0:
            return float("nan")
        return float(self.variances[-1] / self.initial_variance)

    def geometric_mean_reduction(self) -> float:
        """Geometric mean of the per-cycle ratios (the empirical rate).

        Cycles at or past exact convergence contribute nothing to the
        empirical rate: a ``0.0`` ratio (the converging cycle) or a
        ``nan`` ratio (every cycle after it) is dropped, so a run that
        converges exactly mid-way still reports its pre-convergence
        rate instead of ``nan``.
        """
        ratios = self.reductions
        ratios = ratios[np.isfinite(ratios) & (ratios > 0)]
        if len(ratios) == 0:
            return float("nan")
        return float(np.exp(np.log(ratios).mean()))


class AvgAlgorithm:
    """Executes algorithm AVG over a :class:`ValueVector`.

    Parameters
    ----------
    selector:
        The GETPAIR implementation (determines convergence rate).
    track_s:
        When true, co-evolve the ``s`` vector of Theorem 1 starting from
        ``s_0 = a_0²`` and record its mean each cycle.
    backend:
        Kernel execution backend: ``"reference"`` (sequential elementary
        steps, the semantic oracle), ``"vectorized"`` (conflict-free
        batched scatter updates) or ``"auto"`` (default; picks by
        network size). The backends are bitwise-equal, so this is
        purely a speed choice.
    """

    def __init__(
        self,
        selector: PairSelector,
        *,
        track_s: bool = False,
        backend: str = "auto",
    ):
        self._selector = selector
        self._track_s = track_s
        self._backend = backend

    @property
    def selector(self) -> PairSelector:
        """The pair selector in use."""
        return self._selector

    def _protocol_spec(self) -> PairProtocolSpec:
        """The kernel declaration for this selector: built-in selectors
        go by name (and get conflict-free segmentation plans);
        user-defined subclasses ride a custom generator wrapping their
        ``cycle_pairs`` override."""
        selector = self._selector
        if type(selector).cycle_pairs is PairSelector.cycle_pairs:
            return PairProtocolSpec(
                selector=selector.name, track_s=self._track_s
            )
        return PairProtocolSpec(
            selector=selector.name,
            track_s=self._track_s,
            generator=lambda topology, rng: selector.cycle_pairs(rng),
        )

    def run(
        self,
        vector: ValueVector,
        cycles: int,
        *,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run ``cycles`` cycles of AVG, mutating ``vector`` in place."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        if vector.n != self._selector.n:
            raise ConfigurationError(
                f"vector length {vector.n} does not match selector size "
                f"{self._selector.n}"
            )
        scenario = Scenario(
            topology=self._selector.topology,
            values=vector.values,
            pair_protocol=self._protocol_spec(),
            cycles=cycles,
            seed=seed,
            backend=self._backend,
        )
        with GossipEngine(scenario) as engine:
            kernel_result = engine.run(cycles)
        variances = kernel_result.variance_array("avg")
        result = RunResult(
            initial_variance=float(variances[0]),
            initial_mean=float(kernel_result.mean_array("avg")[0]),
        )
        s_means = (
            kernel_result.mean_array("s") if self._track_s else None
        )
        for cycle in range(1, cycles + 1):
            result.cycles.append(
                CycleStats(
                    cycle=cycle,
                    variance_before=float(variances[cycle - 1]),
                    variance_after=float(variances[cycle]),
                    phi=kernel_result.phi_counts[cycle - 1],
                    s_mean=(
                        float(s_means[cycle]) if s_means is not None else None
                    ),
                )
            )
        vector.values[:] = engine.alive_column("avg")
        return result


def run_avg(
    vector: ValueVector,
    selector: PairSelector,
    cycles: int,
    *,
    seed: SeedLike = None,
    track_s: bool = False,
    backend: str = "auto",
) -> RunResult:
    """Convenience wrapper: run AVG for ``cycles`` cycles.

    Equivalent to
    ``AvgAlgorithm(selector, track_s=track_s, backend=backend).run(...)``.
    """
    return AvgAlgorithm(selector, track_s=track_s, backend=backend).run(
        vector, cycles, seed=seed
    )
