"""Algorithm AVG (Figure 2) — the instrumented cycle runner.

One *cycle* of anti-entropy averaging is modeled as ``N`` elementary
variance-reduction steps driven by a pair selector. This module executes
cycles and records exactly the quantities the paper's figures plot:

* per-cycle empirical variance σ²ᵢ and the reduction ratio σ²ᵢ/σ²ᵢ₋₁
  (Figure 3),
* per-node communication counts φ (Theorem 1), and
* optionally the parallel ``s`` vector of Theorem 1's proof
  (``s_i = s_j = (s_i + s_j)/4``), which lets tests verify
  ``E(s_{i+1}) = E(2^{-φ}) · E(s_i)`` directly.

The elementary-step loop is intentionally a tight pure-Python loop over
lists: the steps are sequentially dependent (a node's value changes
between steps), so vectorization cannot be applied across steps, and
list indexing beats numpy scalar indexing by ~5×.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .pair_selectors import PairSelector
from .vector import ValueVector, empirical_variance


@dataclass(frozen=True)
class CycleStats:
    """Measurements for a single cycle of AVG."""

    cycle: int
    variance_before: float
    variance_after: float
    phi: np.ndarray
    s_mean: Optional[float] = None

    @property
    def reduction(self) -> float:
        """The per-cycle variance reduction ratio σ²ᵢ/σ²ᵢ₋₁.

        Returns ``nan`` once the variance has hit exact zero (converged).
        """
        if self.variance_before == 0.0:
            return float("nan")
        return self.variance_after / self.variance_before

    @property
    def mean_phi(self) -> float:
        """Average number of communications per node this cycle (≈ 2)."""
        return float(self.phi.mean())


@dataclass
class RunResult:
    """Full trajectory of a multi-cycle AVG run."""

    initial_variance: float
    initial_mean: float
    cycles: List[CycleStats] = field(default_factory=list)

    @property
    def variances(self) -> np.ndarray:
        """σ²₀, σ²₁, …, σ²_T."""
        return np.asarray(
            [self.initial_variance] + [c.variance_after for c in self.cycles]
        )

    @property
    def reductions(self) -> np.ndarray:
        """Per-cycle ratios σ²ᵢ/σ²ᵢ₋₁ for i = 1..T."""
        return np.asarray([c.reduction for c in self.cycles])

    @property
    def overall_reduction(self) -> float:
        """σ²_T / σ²₀ across the whole run."""
        if self.initial_variance == 0.0:
            return float("nan")
        return float(self.variances[-1] / self.initial_variance)

    def geometric_mean_reduction(self) -> float:
        """Geometric mean of the per-cycle ratios (the empirical rate)."""
        ratios = self.reductions
        ratios = ratios[~np.isnan(ratios)]
        if len(ratios) == 0 or np.any(ratios <= 0):
            return float("nan")
        return float(np.exp(np.log(ratios).mean()))


class AvgAlgorithm:
    """Executes algorithm AVG over a :class:`ValueVector`.

    Parameters
    ----------
    selector:
        The GETPAIR implementation (determines convergence rate).
    track_s:
        When true, co-evolve the ``s`` vector of Theorem 1 starting from
        ``s_0 = a_0²`` and record its mean each cycle.
    """

    def __init__(self, selector: PairSelector, *, track_s: bool = False):
        self._selector = selector
        self._track_s = track_s

    @property
    def selector(self) -> PairSelector:
        """The pair selector in use."""
        return self._selector

    def run(
        self,
        vector: ValueVector,
        cycles: int,
        *,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run ``cycles`` cycles of AVG, mutating ``vector`` in place."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        if vector.n != self._selector.n:
            raise ConfigurationError(
                f"vector length {vector.n} does not match selector size "
                f"{self._selector.n}"
            )
        rng = make_rng(seed)
        result = RunResult(
            initial_variance=vector.variance, initial_mean=vector.mean
        )
        values = vector.values.tolist()
        s_values = (
            [v * v for v in values] if self._track_s else None
        )
        for cycle in range(1, cycles + 1):
            variance_before = empirical_variance(np.asarray(values))
            pairs = self._selector.cycle_pairs(rng)
            phi = self._selector.phi_counts(pairs)
            self._run_cycle(values, s_values, pairs)
            variance_after = empirical_variance(np.asarray(values))
            s_mean = (
                float(np.mean(s_values)) if s_values is not None else None
            )
            result.cycles.append(
                CycleStats(
                    cycle=cycle,
                    variance_before=variance_before,
                    variance_after=variance_after,
                    phi=phi,
                    s_mean=s_mean,
                )
            )
        vector.values[:] = values
        return result

    @staticmethod
    def _run_cycle(values: list, s_values: Optional[list], pairs: np.ndarray) -> None:
        """Apply one cycle's elementary steps in place.

        Hot loop: sequential dependence between steps forbids
        vectorization, so this is a plain-Python loop over a
        pre-materialized pair list.
        """
        pair_list = pairs.tolist()
        if s_values is None:
            for i, j in pair_list:
                midpoint = (values[i] + values[j]) * 0.5
                values[i] = midpoint
                values[j] = midpoint
        else:
            for i, j in pair_list:
                midpoint = (values[i] + values[j]) * 0.5
                values[i] = midpoint
                values[j] = midpoint
                s_quarter = (s_values[i] + s_values[j]) * 0.25
                s_values[i] = s_quarter
                s_values[j] = s_quarter


def run_avg(
    vector: ValueVector,
    selector: PairSelector,
    cycles: int,
    *,
    seed: SeedLike = None,
    track_s: bool = False,
) -> RunResult:
    """Convenience wrapper: run AVG for ``cycles`` cycles.

    Equivalent to ``AvgAlgorithm(selector, track_s=track_s).run(...)``.
    """
    return AvgAlgorithm(selector, track_s=track_s).run(vector, cycles, seed=seed)
