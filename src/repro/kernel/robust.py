"""Kernel-hosted robust estimation: reductions over per-node reports.

The seed's :class:`~repro.core.robust.RobustAverager` ran ``t``
independently seeded pure-Python protocol copies and took a median
across instances. On the kernel the same defenses become *reductions*
over what the network reports — cheap numpy passes over
:meth:`~repro.kernel.engine.GossipEngine.reported_column` — so they
compose with every backend, every failure model and every
:class:`~repro.kernel.adversary.AdversarySpec`:

* **median / trimmed mean** over per-node reports: exact against
  report-time (byzantine) contamination below the breakdown point
  (50 % for the median, the trim fraction per tail for the trimmed
  mean), while the plain mean is dragged arbitrarily far by a single
  liar;
* **median-of-runs**: the UBLCS-2003-16 trick — independent runs (or
  concurrent instances) fail independently, so a median across their
  estimates discards unlucky outliers;
* **count-capped MIN/MAX size estimation**: ``k`` extreme-value
  instances seeded U(0,1); the minimum of ``N`` uniforms is
  approximately Exp(``N``), so ``(k-1)/Σ minima`` estimates ``N``
  (unbiased under the exponential approximation), and capping each
  implied count at a deployment bound keeps an adversary who injects
  ``0`` from driving the estimate to infinity.

:class:`MultiAggregateSpec` bundles the §4 multi-instance layout
(values + aggregate columns + initial vectors) with the reduction that
turns reports into one estimate, and builds the matching
:class:`~repro.kernel.scenario.Scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional

import numpy as np

from ..core.aggregates import (
    AggregateFunction,
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
)
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..topology.base import Topology
from .scenario import Scenario

#: accepted reduction names for :func:`robust_reduce`
ROBUST_REDUCTIONS = ("mean", "median", "trimmed")

#: default trim fraction per tail — robust to one-sided contamination
#: of up to 25 % of the reports
DEFAULT_TRIM = 0.25


def _as_reports(reports) -> np.ndarray:
    arr = np.asarray(reports, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ConfigurationError("cannot reduce an empty report set")
    return arr


def trimmed_mean(reports, trim: float = DEFAULT_TRIM) -> float:
    """Mean of the reports with the ``trim`` fraction of each tail
    discarded (symmetric trimming; ``trim=0`` degenerates to the plain
    mean). Robust to up to ``trim`` one-sided contamination."""
    arr = _as_reports(reports)
    if not 0.0 <= trim < 0.5:
        raise ConfigurationError(
            f"trim fraction must be in [0, 0.5), got {trim}"
        )
    cut = int(trim * arr.size)
    if 2 * cut >= arr.size:
        return float(np.median(arr))
    arr = np.sort(arr)
    return float(arr[cut:arr.size - cut].mean())


def robust_reduce(
    reports, method: str, *, trim: float = DEFAULT_TRIM
) -> float:
    """Reduce per-node reports to one estimate: ``"mean"`` (the paper's
    baseline, no robustness), ``"median"`` or ``"trimmed"``."""
    arr = _as_reports(reports)
    if method == "mean":
        return float(arr.mean())
    if method == "median":
        return float(np.median(arr))
    if method == "trimmed":
        return trimmed_mean(arr, trim)
    raise ConfigurationError(
        f"unknown reduction {method!r}; expected one of {ROBUST_REDUCTIONS}"
    )


def median_of_runs(estimates) -> float:
    """Median across independent run (or instance) estimates — each run
    is damaged independently, so the median discards unlucky runs."""
    return float(np.median(_as_reports(estimates)))


def size_from_count(reduced_count: float, *, cap: Optional[float] = None) -> float:
    """Network size implied by a reduced counting-instance report
    (§4: the leader holds 1, everyone else 0, so the average is 1/N).
    Non-positive or non-finite reductions map to ``cap`` (or ``inf``):
    an adversary can destroy the estimate but not crash the reader."""
    if not np.isfinite(reduced_count) or reduced_count <= 0.0:
        return float(cap) if cap is not None else float("inf")
    estimate = 1.0 / reduced_count
    if cap is not None:
        return float(min(estimate, cap))
    return float(estimate)


def min_size_estimate(minima, *, cap: Optional[float] = None) -> float:
    """Count-capped extreme-value size estimation from ``k`` MIN
    instances seeded U(0,1).

    Each converged instance holds the minimum of ``N`` uniforms,
    approximately Exp(``N``) for large ``N``; the sum of ``k``
    independent minima is Gamma(``k``, 1/``N``), making
    ``(k-1) / Σ minima`` the unbiased inverse-Gamma estimator of ``N``.
    ``cap`` bounds each instance's implied count at a deployment-chosen
    maximum (minima are clipped to ``1/cap``), so injected zeros
    saturate at ``cap`` instead of producing an infinite size.
    """
    arr = _as_reports(minima)
    if arr.size < 2:
        raise ConfigurationError(
            f"min/max size estimation needs >= 2 instances, got {arr.size}"
        )
    if cap is not None:
        if cap <= 0:
            raise ConfigurationError(f"cap must be positive, got {cap}")
        arr = np.clip(arr, 1.0 / cap, None)
    total = float(arr.sum())
    if total <= 0.0:
        return float(cap) if cap is not None else float("inf")
    estimate = (arr.size - 1) / total
    if cap is not None:
        estimate = min(estimate, float(cap))
    return float(estimate)


def max_size_estimate(maxima, *, cap: Optional[float] = None) -> float:
    """The MAX dual of :func:`min_size_estimate`: instances seeded
    U(0,1) converge to the maximum of ``N`` uniforms, and ``1 - max``
    is distributed like the minimum."""
    return min_size_estimate(1.0 - _as_reports(maxima), cap=cap)


@dataclass(frozen=True)
class MultiAggregateSpec:
    """A §4 multi-instance bundle plus its report reduction.

    Carries everything needed to piggyback ``k`` concurrent aggregation
    instances on one exchange stream (per-node base ``values``, the
    instance-id → :class:`AggregateFunction` mapping, optional
    per-instance ``initial`` vectors) together with the robust
    ``reduction`` applied to each instance's per-node reports. Use
    :meth:`scenario` to build the matching
    :class:`~repro.kernel.scenario.Scenario` and :meth:`estimates` to
    reduce a finished engine's reports.
    """

    values: np.ndarray
    aggregates: Mapping[Hashable, AggregateFunction] = field(
        default_factory=lambda: {"mean": MeanAggregate()}
    )
    initial: Optional[Mapping[Hashable, np.ndarray]] = None
    reduction: str = "median"
    trim: float = DEFAULT_TRIM

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise ConfigurationError(
                f"values must be one-dimensional, got shape {values.shape}"
            )
        object.__setattr__(self, "values", values)
        if not self.aggregates:
            raise ConfigurationError("spec needs at least one aggregate")
        for instance_id, function in self.aggregates.items():
            if not isinstance(function, AggregateFunction):
                raise ConfigurationError(
                    f"aggregate {instance_id!r} is not an AggregateFunction"
                )
        if self.reduction not in ROBUST_REDUCTIONS:
            raise ConfigurationError(
                f"unknown reduction {self.reduction!r}; expected one of "
                f"{ROBUST_REDUCTIONS}"
            )
        if not 0.0 <= self.trim < 0.5:
            raise ConfigurationError(
                f"trim fraction must be in [0, 0.5), got {self.trim}"
            )

    @property
    def n(self) -> int:
        """Network size the spec was built for."""
        return len(self.values)

    def scenario(self, topology: Topology, **kwargs) -> Scenario:
        """The :class:`Scenario` running this bundle on ``topology``
        (remaining scenario fields — adversary, churn, seed, backend,
        … — pass through as keyword arguments)."""
        return Scenario(
            topology=topology,
            values=self.values,
            aggregates=dict(self.aggregates),
            initial=self.initial,
            **kwargs,
        )

    def reduce_reports(self, reports) -> float:
        """Apply this spec's reduction to one instance's reports."""
        return robust_reduce(reports, self.reduction, trim=self.trim)

    def estimates(self, engine) -> Dict[Hashable, float]:
        """Reduced estimate per instance from a (running or finished)
        engine's reported view — lies included, which is the point."""
        return {
            name: self.reduce_reports(engine.reported_column(name))
            for name in self.aggregates
        }

    # -- canonical bundles ----------------------------------------------

    @classmethod
    def counting(
        cls,
        n: int,
        *,
        leader: int = 0,
        reduction: str = "median",
        trim: float = DEFAULT_TRIM,
    ) -> "MultiAggregateSpec":
        """The §4 COUNT bundle: one AVG instance over the leader
        indicator (node ``leader`` starts at 1, everyone else 0);
        network size is :func:`size_from_count` of the reduced report."""
        if not 0 <= leader < n:
            raise ConfigurationError(
                f"leader {leader} out of range for {n} nodes"
            )
        indicator = np.zeros(n, dtype=np.float64)
        indicator[leader] = 1.0
        return cls(
            values=indicator,
            aggregates={"count": MeanAggregate()},
            reduction=reduction,
            trim=trim,
        )

    @classmethod
    def extrema(
        cls,
        n: int,
        *,
        instances: int = 16,
        kind: str = "min",
        seed: SeedLike = None,
        reduction: str = "median",
        trim: float = DEFAULT_TRIM,
    ) -> "MultiAggregateSpec":
        """The extreme-value size bundle: ``instances`` MIN (or MAX)
        columns independently seeded U(0,1); feed the per-instance
        reduced reports to :func:`min_size_estimate` /
        :func:`max_size_estimate`."""
        if instances < 2:
            raise ConfigurationError(
                f"extreme-value estimation needs >= 2 instances, "
                f"got {instances}"
            )
        if kind not in ("min", "max"):
            raise ConfigurationError(
                f"kind must be 'min' or 'max', got {kind!r}"
            )
        rng = make_rng(seed)
        function_type = MinAggregate if kind == "min" else MaxAggregate
        names = tuple(f"{kind}{index}" for index in range(instances))
        initial = {name: rng.random(n) for name in names}
        return cls(
            values=np.zeros(n, dtype=np.float64),
            aggregates={name: function_type() for name in names},
            initial=initial,
            reduction=reduction,
            trim=trim,
        )
