"""Message-level fault model for kernel scenarios.

The paper's practical-issues discussion is explicit that the clean §3
analysis assumes atomic push-pull: an exchange either happens at both
endpoints or at neither. Deployment breaks that in an *asymmetric* way
— the request and the reply travel on different link directions, and
losing them has very different consequences:

* a lost **request** silently cancels the exchange (neither endpoint
  changes; the initiator wasted a cycle),
* a lost **reply** executes the *partial* exchange the paper worries
  about: the partner already applied ``AGGREGATE(x_i, x_j)`` when it
  serviced the request, but the initiator never hears back and keeps
  its old value. For AGGREGATE_AVG this moves total system mass by
  ``(x_i - x_j) / 2`` per event — the mass-conservation invariant of
  §3 is violated and the converged estimate drifts off the true
  aggregate,
* a **duplicated** request re-applies a stale payload at the partner
  (the network delivered the datagram twice): one more one-sided
  combine, again moving mass.

:class:`MessageFaultSpec` declares these three fault processes with
independent probabilities — independent request/reply rates are what
makes the link *asymmetric* — plus optional per-cycle schedules (the
same ``cycle -> probability`` callables :attr:`Scenario.loss_schedule`
uses; :func:`constant_loss` and :func:`burst_loss` are the canonical
factories). Like :class:`~repro.kernel.adversary.AdversarySpec`, the
spec is applied entirely by :class:`~repro.kernel.engine.GossipEngine`:
fault coins come from the engine RNG, partial exchanges and duplicate
deliveries are engine-side matrix writes, and execution backends never
see the spec — so reference/vectorized/sharded stay bitwise-equal
under any fault configuration.

:class:`RetrySpec` adds the recovery protocol: timeout detection in
cycle units, retransmission (or a fresh partner draw through the
:class:`~repro.kernel.membership.PartnerProvider` layer), exponential
backoff under a retry budget, and a guarded push-only fallback that
trades convergence factor for mass safety. The retransmit mode repairs
mass *exactly*: the partner caches the combined value it computed when
it serviced the original request, a node with an outstanding exchange
neither initiates nor accepts new exchanges (its value is frozen), so
a successful retransmission delivers exactly the cached reply and the
pair ends the episode in the same state an atomic exchange would have
produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigurationError

#: a schedule maps a cycle number to that cycle's loss probability
LossSchedule = Callable[[int], float]

#: accepted :attr:`RetrySpec.mode` values
RETRY_MODES = ("retransmit", "redraw")

#: accepted :attr:`RetrySpec.fallback` values
RETRY_FALLBACKS = ("accept", "push_only")


def constant_loss(p: float) -> LossSchedule:
    """A schedule that always returns ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(
            f"loss probability must be in [0, 1], got {p}"
        )

    def schedule(cycle: int) -> float:
        return p

    return schedule


def burst_loss(p_background: float, p_burst: float, burst_start: int,
               burst_end: int) -> LossSchedule:
    """Background loss with a heavier burst during
    ``[burst_start, burst_end)``."""
    for name, value in (("p_background", p_background),
                        ("p_burst", p_burst)):
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"{name} must be in [0, 1], got {value}"
            )
    if burst_start > burst_end:
        raise ConfigurationError("burst_start must not exceed burst_end")

    def schedule(cycle: int) -> float:
        return p_burst if burst_start <= cycle < burst_end else p_background

    return schedule


def _validate_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must be in [0, 1], got {value}"
        )


def _schedule_value(name: str, schedule: LossSchedule, cycle: int) -> float:
    p = float(schedule(cycle))
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(
            f"{name} schedule returned {p} at cycle {cycle}"
        )
    return p


@dataclass(frozen=True)
class MessageFaultSpec:
    """One message-fault configuration, fully specified.

    Parameters
    ----------
    request_loss:
        Probability that an exchange's request datagram is lost. A lost
        request cancels the exchange silently; with a
        :class:`RetrySpec` the initiator times out and retries.
    reply_loss:
        Probability that the reply is lost *after* the partner applied
        the request — the partial exchange. The partner keeps the
        combined value, the initiator keeps its old one, and total mass
        drifts by the difference.
    duplication:
        Probability that a delivered request is delivered *twice*. The
        duplicate carries the same stale payload (the initiator's value
        when the request was sent, i.e. at the start of the cycle) and
        is serviced after the cycle's regular exchanges — one more
        one-sided combine at the partner.
    request_schedule, reply_schedule:
        Optional ``cycle -> probability`` overrides for the two loss
        rates (:func:`constant_loss` / :func:`burst_loss` are the
        factories); ``duplication`` is a constant rate.
    start, end:
        Half-open active cycle window ``[start, end)``; ``end=None``
        means the faults never stop. Outside the window no fault coin
        is drawn at all, so a spec with an empty effective window is
        bitwise-inert.

    A probability of exactly ``0.0`` (and no schedule) consumes no RNG
    for that fault process, so adding an all-zero spec leaves a run's
    trajectory bitwise-identical to the same scenario without one.
    """

    request_loss: float = 0.0
    reply_loss: float = 0.0
    duplication: float = 0.0
    request_schedule: Optional[LossSchedule] = None
    reply_schedule: Optional[LossSchedule] = None
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        _validate_probability("request_loss", self.request_loss)
        _validate_probability("reply_loss", self.reply_loss)
        _validate_probability("duplication", self.duplication)
        for name, schedule in (
            ("request_schedule", self.request_schedule),
            ("reply_schedule", self.reply_schedule),
        ):
            if schedule is not None and not callable(schedule):
                raise ConfigurationError(
                    f"{name} must be callable (cycle -> probability), "
                    f"got {type(schedule).__name__}"
                )
        if self.start < 0:
            raise ConfigurationError(
                f"message-fault start cycle must be >= 0, got {self.start}"
            )
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError(
                f"message-fault window [{self.start}, {self.end}) is empty"
            )

    def active_at(self, cycle: int) -> bool:
        """Whether any fault coin is drawn at ``cycle``."""
        if cycle < self.start:
            return False
        return self.end is None or cycle < self.end

    def request_loss_at(self, cycle: int) -> float:
        """Effective request-loss probability at ``cycle``."""
        if not self.active_at(cycle):
            return 0.0
        if self.request_schedule is not None:
            return _schedule_value(
                "request_loss", self.request_schedule, cycle
            )
        return self.request_loss

    def reply_loss_at(self, cycle: int) -> float:
        """Effective reply-loss probability at ``cycle``."""
        if not self.active_at(cycle):
            return 0.0
        if self.reply_schedule is not None:
            return _schedule_value("reply_loss", self.reply_schedule, cycle)
        return self.reply_loss

    def duplication_at(self, cycle: int) -> float:
        """Effective duplication probability at ``cycle``."""
        if not self.active_at(cycle):
            return 0.0
        return self.duplication


@dataclass(frozen=True)
class RetrySpec:
    """The recovery protocol for timed-out exchanges.

    An initiator whose exchange produced no reply (request lost, reply
    lost, or the partner was busy with its own outstanding exchange)
    becomes *pending*: it stops initiating and refuses partnership —
    its value is frozen — until the episode resolves. After ``timeout``
    cycles it retries; each failed attempt multiplies the next delay by
    ``backoff``; after ``budget`` failed retries it gives up via
    ``fallback``.

    Parameters
    ----------
    timeout:
        Cycles the initiator waits before the first retry (>= 1 — the
        synchronous model cannot detect a loss faster than the next
        cycle).
    budget:
        Maximum number of retries before the fallback applies. A budget
        of 0 falls back immediately after the first timeout.
    backoff:
        Exponential backoff multiplier (>= 1): retry ``a`` fires
        ``ceil(timeout * backoff**a)`` cycles after attempt ``a`` failed.
    mode:
        ``"retransmit"`` (default) resends to the *same* partner. The
        partner deduplicates: if it already serviced the original
        request it resends the cached combined value, so a delivered
        retransmission repairs the partial exchange's mass drift
        exactly. ``"redraw"`` draws a *fresh* partner through the
        engine's :class:`~repro.kernel.membership.PartnerProvider` and
        starts a new exchange — this restores convergence speed but
        never repairs mass a lost reply already drifted.
    fallback:
        What a node does when the budget is exhausted: ``"accept"``
        (default) unblocks and rejoins the protocol, accepting the
        residual drift; ``"push_only"`` permanently stops *initiating*
        (it still responds to others) — the guarded mode that trades
        its own convergence contribution for never again risking a
        partial exchange it initiated.
    """

    timeout: int = 1
    budget: int = 3
    backoff: float = 2.0
    mode: str = "retransmit"
    fallback: str = "accept"

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise ConfigurationError(
                f"retry timeout must be >= 1 cycle, got {self.timeout}"
            )
        if self.budget < 0:
            raise ConfigurationError(
                f"retry budget must be >= 0, got {self.budget}"
            )
        if not self.backoff >= 1.0:
            raise ConfigurationError(
                f"retry backoff must be >= 1, got {self.backoff}"
            )
        if self.mode not in RETRY_MODES:
            raise ConfigurationError(
                f"unknown retry mode {self.mode!r}; expected one of "
                f"{RETRY_MODES}"
            )
        if self.fallback not in RETRY_FALLBACKS:
            raise ConfigurationError(
                f"unknown retry fallback {self.fallback!r}; expected one "
                f"of {RETRY_FALLBACKS}"
            )

    def delay(self, attempt: int) -> int:
        """Cycles until the next retry after ``attempt`` failures."""
        return max(1, int(math.ceil(self.timeout * self.backoff ** attempt)))
