"""The single-process numpy scale path."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ...core.aggregates import AggregateFunction
from ...errors import SimulationError
from .base import (
    GREEDY_TAIL,
    SEGMENT_SEQUENTIAL,
    ExecutionBackend,
    apply_disjoint_batch,
    apply_sequential,
    iter_greedy_segments,
    merge_views_batch,
    merge_views_sequential,
    resolve_chunk,
)


class VectorizedBackend(ExecutionBackend):
    """Batched structure-of-arrays execution — the scale path.

    Processes exchanges in conflict-free batches via numpy
    gather/scatter. Batches are selected by first-occurrence of each
    endpoint among the pending exchanges, which preserves per-node
    exchange order; exchanges that share no node commute exactly, so
    the result is **bitwise identical** to the sequential reference
    execution (the cross-backend equivalence suite asserts this).
    """

    name = "vectorized"

    def __init__(self, *, chunk: Optional[int] = None):
        self._scratch: Optional[np.ndarray] = None
        self._flat: Optional[np.ndarray] = None
        self._slots: Optional[np.ndarray] = None
        self._chunk = resolve_chunk(chunk)

    def _position_scratch(self, n: int) -> np.ndarray:
        if self._scratch is None or len(self._scratch) < n:
            self._scratch = np.empty(n, dtype=np.int32)
        return self._scratch

    def _chunk_buffers(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reused interleave/slot-number buffers for one greedy window."""
        if self._flat is None or len(self._flat) < size:
            self._flat = np.empty(size, dtype=np.int32)
            self._slots = np.arange(size, dtype=np.int32)
        return self._flat, self._slots

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the vectorized backend does not support exchange tracing; "
                "use backend='reference'"
            )
        pending_i = np.ascontiguousarray(exch_i, dtype=np.int32)
        pending_j = np.ascontiguousarray(exch_j, dtype=np.int32)
        if len(pending_i) == 0:
            return
        # same chunked order-preserving greedy segmentation as the pair
        # path, with the interleave/slot buffers reused across windows
        # and cycles (this loop used to allocate fresh flat/slots
        # arrays on every batch iteration)
        self._apply_greedy(
            matrix, functions, pending_i, pending_j, self._chunk,
        )

    # -- pair mode --------------------------------------------------------

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        chunk: Optional[int] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Pair-mode fast path.

        Conflict-free segments of the plan (PM's matching halves) are
        applied as single scatter batches with no segmentation scan;
        everything else goes through :meth:`_apply_greedy`, the chunked
        order-preserving greedy segmentation. Bitwise-identical to the
        sequential reference execution either way.
        """
        if trace is not None:
            raise SimulationError(
                "the vectorized backend does not support exchange tracing; "
                "use backend='reference'"
            )
        pi = np.ascontiguousarray(pairs_i, dtype=np.int32)
        pj = np.ascontiguousarray(pairs_j, dtype=np.int32)
        window = self._chunk if chunk is None else resolve_chunk(chunk)
        if plan is None:
            plan = ((0, len(pi), False),)
        for start, end, conflict_free in plan:
            if conflict_free:
                apply_disjoint_batch(
                    matrix, functions, pi[start:end], pj[start:end]
                )
            else:
                self._apply_greedy(
                    matrix, functions, pi[start:end], pj[start:end], window,
                )

    def apply_view_exchanges(
        self,
        views: np.ndarray,
        exch_i: np.ndarray,
        exch_j: np.ndarray,
    ) -> None:
        """Newscast view merges through the same chunked greedy
        segmentation as value exchanges — node-disjoint batches via
        :func:`~.base.merge_views_batch`, conflicted window tails via
        :func:`~.base.merge_views_sequential` — which is what keeps the
        view matrix bitwise-identical to the sequential reference
        execution."""
        pending_i = np.ascontiguousarray(exch_i, dtype=np.int32)
        pending_j = np.ascontiguousarray(exch_j, dtype=np.int32)
        if len(pending_i) == 0:
            return
        position = self._position_scratch(views.shape[0])
        flat_buffer, slot_numbers = self._chunk_buffers(2 * self._chunk)
        for kind, chunk_i, chunk_j in iter_greedy_segments(
            pending_i, pending_j, position, flat_buffer, slot_numbers,
            self._chunk, GREEDY_TAIL,
        ):
            if kind == SEGMENT_SEQUENTIAL:
                merge_views_sequential(views, chunk_i, chunk_j)
            else:
                merge_views_batch(views, chunk_i, chunk_j)

    def _apply_greedy(
        self, matrix, functions, pending_i, pending_j, window
    ) -> None:
        """Chunked greedy segmentation over an arbitrary exchange/pair
        sequence.

        The segmentation itself lives in
        :func:`~.base.iter_greedy_segments` — a pure plan the sharded
        backend's parent also consumes (writing segments out instead
        of applying them). Here each segment is applied the moment it
        is planned, which keeps the scans cache-resident: contiguous
        ``window``-step stretches executed to completion in order
        (preserving global step order for free), first-occurrence
        batches peeled with the scatter/gather trick, the interleave
        and slot-number buffers reused across iterations, and each
        window's last few conflicted steps (:data:`GREEDY_TAIL`) run
        sequentially — batch sizes decay geometrically, so the tail
        would otherwise burn one full scan per handful of steps.
        """
        position = self._position_scratch(matrix.shape[0])
        flat_buffer, slot_numbers = self._chunk_buffers(2 * window)
        for kind, chunk_i, chunk_j in iter_greedy_segments(
            pending_i, pending_j, position, flat_buffer, slot_numbers,
            window, GREEDY_TAIL,
        ):
            if kind == SEGMENT_SEQUENTIAL:
                apply_sequential(matrix, functions, chunk_i, chunk_j)
            else:
                apply_disjoint_batch(matrix, functions, chunk_i, chunk_j)
