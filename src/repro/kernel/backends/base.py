"""Backend contract and the shared batched-execution primitives.

A backend's job is small and precisely bounded: given the kernel's
``(n, k)`` value matrix (one column per aggregation instance) and one
cycle's worth of *successful* exchanges — endpoint index arrays, in
step order — apply every exchange's AGGREGATE to both endpoints.
Everything stochastic (neighbor draws, loss coins, crash schedules,
pair-mode GETPAIR sequences) already happened in the engine, so
backends are deterministic functions of their inputs and can be
swapped freely.

Beyond the abstract contract this module hosts the primitives every
batched backend builds on:

* :func:`first_occurrence_ready` — the O(m) conflict scan: which of the
  pending steps touch only nodes not seen earlier in the window (and so
  commute bitwise with each other),
* :func:`apply_disjoint_batch` — one node-disjoint batch applied through
  the ``combine_array`` IEEE path,
* :func:`apply_sequential` — a short run of (possibly conflicting)
  steps applied in step order through the scalar ``combine`` path.

``combine_array`` is IEEE-identical to the scalar ``combine`` (the
:class:`~repro.core.aggregates.AggregateFunction` contract), so any
mix of the two appliers over an order-preserving segmentation is
**bitwise identical** to the sequential reference execution.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from ...core.aggregates import AggregateFunction
from ...errors import ConfigurationError

#: default number of contiguous steps per greedy-segmentation window in
#: the vectorized backend. Executing each window to completion before
#: the next trivially preserves global step order, and within a few
#: thousand steps node collisions are rare (1–3 batches instead of
#: ~max φ), so the first-occurrence scans touch far fewer elements and
#: stay cache-resident. Tunable per machine via the ``REPRO_PAIR_CHUNK``
#: environment variable or per run via
#: :attr:`~repro.kernel.pairs.PairProtocolSpec.chunk`.
PAIR_CHUNK = 4096

#: once a greedy window has this few pending steps left, finish it
#: sequentially: batch sizes decay geometrically, so the tail of the
#: peel loop pays a full first-occurrence scan (a dozen numpy calls)
#: per handful of steps. Purely a constant-factor knob — results stay
#: bitwise-identical.
GREEDY_TAIL = 48

#: segment kinds yielded by :func:`iter_greedy_segments` (and used in
#: the sharded backend's published schedules)
SEGMENT_BATCH = 0
SEGMENT_SEQUENTIAL = 1


def resolve_chunk(
    chunk: Optional[int] = None,
    *,
    env_var: str = "REPRO_PAIR_CHUNK",
    default: int = PAIR_CHUNK,
) -> int:
    """The effective greedy-segmentation window size.

    Precedence: an explicit ``chunk`` (e.g. from
    :attr:`PairProtocolSpec.chunk`), then the ``env_var`` environment
    variable, then ``default``. The sharded backend resolves its own,
    larger window through the same rules (``REPRO_SHARD_CHUNK``).
    Raises :class:`ConfigurationError` on non-positive or non-integer
    values.
    """
    if chunk is None:
        env = os.environ.get(env_var, "").strip()
        if not env:
            return default
        try:
            chunk = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{env_var} must be a positive integer, got {env!r}"
            ) from None
    if isinstance(chunk, bool) or not isinstance(chunk, (int, np.integer)):
        raise ConfigurationError(
            f"pair chunk must be a positive integer, got {chunk!r}"
        )
    if chunk < 1:
        raise ConfigurationError(
            f"pair chunk must be a positive integer, got {chunk}"
        )
    return int(chunk)


def first_occurrence_ready(
    chunk_i: np.ndarray,
    chunk_j: np.ndarray,
    position: np.ndarray,
    flat_buffer: np.ndarray,
    slot_numbers: np.ndarray,
) -> np.ndarray:
    """Which pending steps are first occurrences of *both* endpoints.

    The test is O(m) with no sorting: a scatter of slot numbers into an
    ``n``-sized ``position`` scratch (last write wins, so writing the
    interleaved endpoints in reverse leaves the *first* occurrence)
    followed by one gather. ``flat_buffer`` and ``slot_numbers`` are
    caller-owned reusable arrays of at least ``2 * len(chunk_i)``
    entries; ``slot_numbers`` must hold ``0, 1, 2, …`` (an arange).
    """
    m = len(chunk_i)
    flat = flat_buffer[:2 * m]
    flat[0::2] = chunk_i
    flat[1::2] = chunk_j
    slots = slot_numbers[:2 * m]
    position[flat[::-1]] = slots[::-1]
    first = position[flat] == slots
    return first[0::2] & first[1::2]


def iter_greedy_segments(
    pending_i: np.ndarray,
    pending_j: np.ndarray,
    position: np.ndarray,
    flat_buffer: np.ndarray,
    slot_numbers: np.ndarray,
    window: int,
    tail: int,
):
    """The chunked order-preserving greedy segmentation as a pure plan.

    Yields ``(kind, chunk_i, chunk_j)`` in execution order, where
    ``kind`` is :data:`SEGMENT_BATCH` (the steps are node-disjoint and
    may be applied through ``combine_array`` in any partition) or
    :data:`SEGMENT_SEQUENTIAL` (a conflicted window tail that must run
    one step at a time, in order). Executing the yielded segments in
    order through :func:`apply_disjoint_batch` /
    :func:`apply_sequential` is bitwise-identical to the sequential
    reference execution — segmentation depends only on indices, never
    on values, which is what lets the sharded backend *plan* a call
    completely before (or while) the workers apply it.

    ``position``, ``flat_buffer`` and ``slot_numbers`` are the
    caller-owned scratch arrays of :func:`first_occurrence_ready`
    (``flat_buffer``/``slot_numbers`` at least ``2 * window`` long).
    """
    for lo in range(0, len(pending_i), window):
        chunk_i = pending_i[lo:lo + window]
        chunk_j = pending_j[lo:lo + window]
        while True:
            size = len(chunk_i)
            if size <= tail:
                if size:
                    yield SEGMENT_SEQUENTIAL, chunk_i, chunk_j
                break
            ready = first_occurrence_ready(
                chunk_i, chunk_j, position, flat_buffer, slot_numbers
            )
            if ready.all():
                yield SEGMENT_BATCH, chunk_i, chunk_j
                break
            yield SEGMENT_BATCH, chunk_i[ready], chunk_j[ready]
            keep = ~ready
            chunk_i = chunk_i[keep]
            chunk_j = chunk_j[keep]


def apply_disjoint_batch(
    matrix: np.ndarray,
    functions: Sequence[AggregateFunction],
    batch_i: np.ndarray,
    batch_j: np.ndarray,
) -> None:
    """Apply one node-disjoint batch of exchanges via ``combine_array``."""
    if len(batch_i) == 0:
        return
    if matrix.shape[1] == 1:
        column = matrix[:, 0]
        combined = functions[0].combine_array(
            column[batch_i], column[batch_j]
        )
        column[batch_i] = combined
        column[batch_j] = combined
        return
    rows_i = matrix[batch_i]
    rows_j = matrix[batch_j]
    combined_rows = np.empty_like(rows_i)
    for c, function in enumerate(functions):
        combined_rows[:, c] = function.combine_array(
            rows_i[:, c], rows_j[:, c]
        )
    matrix[batch_i] = combined_rows
    matrix[batch_j] = combined_rows


def apply_sequential(
    matrix: np.ndarray,
    functions: Sequence[AggregateFunction],
    steps_i: np.ndarray,
    steps_j: np.ndarray,
) -> None:
    """Apply steps one at a time, in step order, via scalar ``combine``.

    Used for the conflicted tail of a greedy window; switching to the
    scalar path mid-window keeps the result bitwise-equal to the
    batched execution (the combine/combine_array IEEE contract).
    """
    if len(steps_i) == 0:
        return
    steps = zip(steps_i.tolist(), steps_j.tolist())
    if matrix.shape[1] == 1:
        column = matrix[:, 0]
        combine = functions[0].combine
        for i, j in steps:
            combined = combine(column[i], column[j])
            column[i] = combined
            column[j] = combined
        return
    for i, j in steps:
        for c, function in enumerate(functions):
            combined = function.combine(matrix[i, c], matrix[j, c])
            matrix[i, c] = combined
            matrix[j, c] = combined


def _first_distinct_batch(candidates: np.ndarray, view_size: int) -> np.ndarray:
    """Per row: the first ``view_size`` distinct entries in candidate
    order, padded with the remaining duplicates (in order) when fewer
    distinct values exist. Vectorized as two argsorts: one by value to
    flag repeat occurrences, one by the flag to stably partition first
    occurrences ahead of repeats. The value sort composes (value,
    column) into one int64 key so a plain quicksort yields the stable
    order — numpy's stable radix path is ~4x slower at this row width.
    """
    width = candidates.shape[1]
    keys = candidates.astype(np.int64) * width + np.arange(width)
    order = np.argsort(keys, axis=1)
    ranked = np.take_along_axis(candidates, order, axis=1)
    dup_ranked = np.zeros(candidates.shape, dtype=bool)
    dup_ranked[:, 1:] = ranked[:, 1:] == ranked[:, :-1]
    dup = np.empty_like(dup_ranked)
    np.put_along_axis(dup, order, dup_ranked, axis=1)
    keep = np.argsort(dup, axis=1, kind="stable")[:, :view_size]
    return np.take_along_axis(candidates, keep, axis=1)


def _first_distinct_row(candidates: list, view_size: int) -> list:
    """Scalar counterpart of :func:`_first_distinct_batch`: first
    occurrences in order, then duplicates in order, truncated."""
    seen = set()
    firsts = []
    repeats = []
    for entry in candidates:
        if entry in seen:
            repeats.append(entry)
        else:
            seen.add(entry)
            firsts.append(entry)
    firsts += repeats
    return firsts[:view_size]


def merge_views_batch(
    views: np.ndarray,
    batch_a: np.ndarray,
    batch_b: np.ndarray,
) -> None:
    """Apply one node-disjoint batch of Newscast view exchanges.

    For each pair ``(a, b)`` both rows of ``views`` (recency-ordered,
    youngest first) are rebuilt from the candidate sequence
    ``[partner, own[0], partner's[0], own[1], partner's[1], …]`` with
    self-entries rewritten to the partner, keeping the first
    ``view_size`` *distinct* candidates (duplicates only pad the tail
    if the two views overlap so much that distinct candidates run out).
    The dedup is what keeps views diverse — without it repeated
    exchanges between acquainted nodes collapse views onto a handful of
    peers. Pure integer column ops — the int32 analogue of
    :func:`apply_disjoint_batch` — so batching versus one-at-a-time
    application is trivially bitwise-identical.
    """
    if len(batch_a) == 0:
        return
    view_size = views.shape[1]
    m = len(batch_a)
    rows_a = views[batch_a]
    rows_b = views[batch_b]
    cand_a = np.empty((m, 2 * view_size + 1), dtype=views.dtype)
    cand_b = np.empty((m, 2 * view_size + 1), dtype=views.dtype)
    cand_a[:, 0] = batch_b
    cand_b[:, 0] = batch_a
    cand_a[:, 1::2] = rows_a
    cand_a[:, 2::2] = rows_b
    cand_b[:, 1::2] = rows_b
    cand_b[:, 2::2] = rows_a
    col_a = np.asarray(batch_a, dtype=views.dtype)[:, None]
    col_b = np.asarray(batch_b, dtype=views.dtype)[:, None]
    np.copyto(cand_a, col_b, where=cand_a == col_a)
    np.copyto(cand_b, col_a, where=cand_b == col_b)
    views[batch_a] = _first_distinct_batch(cand_a, view_size)
    views[batch_b] = _first_distinct_batch(cand_b, view_size)


def merge_views_sequential(
    views: np.ndarray,
    steps_a: np.ndarray,
    steps_b: np.ndarray,
) -> None:
    """Apply view exchanges one at a time, in step order.

    The scalar counterpart of :func:`merge_views_batch` for conflicted
    window tails, computed over plain Python lists (per-row numpy calls
    cost more than the merge itself). The interleave, the self-rewrite
    and the first-distinct selection replicate the batch arithmetic
    exactly, so mixing the two over an order-preserving segmentation
    stays bitwise-identical to sequential execution — integer ops need
    no IEEE caveat.
    """
    view_size = views.shape[1]
    for a, b in zip(steps_a.tolist(), steps_b.tolist()):
        row_a = views[a].tolist()
        row_b = views[b].tolist()
        cand_a = [b]
        cand_b = [a]
        for src in range(view_size):
            cand_a.append(row_a[src])
            cand_a.append(row_b[src])
            cand_b.append(row_b[src])
            cand_b.append(row_a[src])
        views[a] = _first_distinct_row(
            [b if x == a else x for x in cand_a], view_size
        )
        views[b] = _first_distinct_row(
            [a if x == b else x for x in cand_b], view_size
        )


class ExecutionBackend(ABC):
    """Applies one cycle's successful exchanges to the value matrix."""

    #: identifier used in Scenario.backend and reports
    name: str = "abstract"

    @abstractmethod
    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Apply exchanges ``(exch_i[t], exch_j[t])`` for t = 0..m-1, in
        order, to ``matrix`` in place.

        ``matrix`` is the ``(n, k)`` structure-of-arrays node state;
        ``functions`` holds the per-column AGGREGATE. ``trace`` is an
        optional :class:`~repro.simulator.trace.ExchangeTrace` (only the
        reference backend supports it, and only for k = 1).
        """

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        chunk: Optional[int] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Apply one pair-mode cycle's elementary steps, in step order.

        Semantically identical to :meth:`apply_exchanges`; ``plan`` is
        an optional tuple of ``(start, end, conflict_free)`` segments
        covering the sequence, marking stretches that are node-disjoint
        *by construction* (PM's matching halves). Sequential backends
        may ignore it; batched backends apply a conflict-free segment
        as a single batch with no segmentation scan. ``chunk``
        optionally overrides the greedy-segmentation window size
        (:func:`resolve_chunk`); it never changes results, only batch
        shapes.
        """
        self.apply_exchanges(
            matrix, functions, pairs_i, pairs_j, cycle=cycle, trace=trace
        )

    def apply_view_exchanges(
        self,
        views: np.ndarray,
        exch_i: np.ndarray,
        exch_j: np.ndarray,
    ) -> None:
        """Apply one cycle's Newscast view exchanges, in step order.

        ``views`` is the membership layer's int32 ``(capacity,
        view_size)`` partial-view matrix — engine-hosted state like the
        alive mask, never aliased with the backend's value matrix.
        That separation makes this call ``sync()``-safe: the sharded
        backend may merge views in the parent while a pipelined value
        cycle is still in flight on its workers. The base
        implementation is the sequential reference semantics; batched
        backends re-segment through the same node-disjoint primitives
        as value exchanges and stay bitwise-identical.
        """
        merge_views_sequential(views, exch_i, exch_j)

    def adopt_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Engine hand-off hook: take ownership of storing ``matrix``.

        The engine calls this once at construction and again whenever it
        reallocates the value matrix (capacity growth under churn, an
        epoch restart that changes the instance count), then uses the
        returned array as its matrix from that point on. In-process
        backends return the array unchanged; the sharded backend copies
        it into a :mod:`multiprocessing.shared_memory` segment and
        returns the shared view so every subsequent engine mutation —
        epoch reseeds, joiner admissions, crash recycling — is visible
        to the worker processes with no per-cycle copying.
        """
        return matrix

    def grow_matrix(self, matrix: np.ndarray, rows: int) -> np.ndarray:
        """Grow an adopted matrix to ``rows`` slots, preserving content.

        The engine calls this on churn capacity growth instead of
        vstacking into a heap array and re-adopting — that pair costs
        two full matrix copies where one suffices. The contract: the
        returned ``(rows, k)`` array holds ``matrix`` in its leading
        rows, zeros below, is owned by the backend exactly like an
        adopted matrix, and is produced with **at most one** copy of
        the old content (the sharded backend copies the old shared
        view directly into the freshly mapped larger segment; the
        in-process default copies into a fresh heap array).
        """
        grown = np.zeros((rows, matrix.shape[1]), dtype=np.float64)
        grown[:matrix.shape[0]] = matrix
        return grown

    def allocate_matrix(self, rows: int, k: int) -> np.ndarray:
        """A zeroed backend-owned ``(rows, k)`` matrix (epoch rebuilds
        that change the instance count start from zeros, so routing the
        allocation through the backend avoids a heap array that
        :meth:`adopt_matrix` would immediately copy and discard — the
        sharded backend maps a fresh segment and returns its view,
        zero-filled by the OS for free)."""
        return np.zeros((rows, k), dtype=np.float64)

    def restore_matrix(
        self, matrix: np.ndarray, saved: np.ndarray
    ) -> np.ndarray:
        """Replace an adopted matrix's content with checkpointed state.

        Called by :meth:`GossipEngine.restore
        <repro.kernel.engine.GossipEngine.restore>` after ordinary
        construction already adopted a freshly built matrix: when the
        checkpoint has the same shape the content is copied in place
        (one pass, the adopted storage — shared segment or heap array —
        is reused); a shape change (churn grew the capacity, an epoch
        rebuild changed the instance count) routes through
        :meth:`allocate_matrix` so backend-owned storage is resized the
        same way a live run would resize it.
        """
        if matrix.shape == saved.shape:
            self.sync()
            np.copyto(matrix, saved)
            return matrix
        fresh = self.allocate_matrix(*saved.shape)
        np.copyto(fresh, saved)
        return fresh

    def sync(self) -> None:
        """Block until every previously submitted apply call has fully
        landed in the matrix.

        In-process backends apply synchronously, so this is a no-op.
        The pipelined sharded backend returns from ``apply_*`` with the
        work still in flight on its workers (that overlap is the whole
        point); the engine calls :meth:`sync` before every matrix
        *read* (variance/mean observers, epoch finalize) and every
        engine-side matrix *write* (churn admissions, epoch reseeds) so
        no consumer ever sees a half-applied cycle.
        """

    def release_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Counterpart of :meth:`adopt_matrix` at shutdown: return a
        matrix that stays valid after :meth:`close`.

        In-process backends return the array unchanged. The sharded
        backend returns a private heap copy of its shared view —
        numpy's ``buffer=`` interface does not hold a buffer export,
        so closing the shared segment unmaps it out from under any
        remaining views; the engine swaps in the copy before closing
        so post-close observers (``matrix``, ``variance``, …) keep
        working.
        """
        return matrix

    def close(self) -> None:
        """Release backend-owned resources (worker pools, shared
        memory). In-process backends hold none; idempotent."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
