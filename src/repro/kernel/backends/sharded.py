"""The multi-process scale path: shared-memory sharded execution.

At N = 10⁶ a cycle is a long sequence of gather/combine/scatter passes
over an ~8 MB-per-column value matrix with random int32 indices —
memory-bound work that one core's load/store ports serialize.
:class:`ShardedBackend` splits that work across a persistent pool of
worker processes:

* **Storage.** The value matrix lives in one
  :mod:`multiprocessing.shared_memory` segment, followed by **two
  banks** of int32 step buffers carved from the same segment. The
  engine hands its matrix over through
  :meth:`~.base.ExecutionBackend.adopt_matrix` and works on the shared
  view from then on, so churn admissions, epoch reseeds and crash
  recycling are ordinary in-place writes that every worker sees — zero
  per-cycle copying. Capacity growth goes through
  :meth:`~.base.ExecutionBackend.grow_matrix`: the old shared view is
  copied **once**, directly into the freshly mapped larger segment
  (the engine used to vstack into a heap array and re-adopt — two full
  copies per growth); epoch rebuilds that change the instance count
  allocate a zero-filled segment outright
  (:meth:`~.base.ExecutionBackend.allocate_matrix`, no copy at all).

* **Scheduling.** The parent computes the *schedule* for each call up
  front — the same chunked first-occurrence greedy segmentation the
  vectorized backend uses (:func:`~.base.iter_greedy_segments`), but
  as a pure plan: steps are rewritten into execution order in one
  bank's step buffers and described as a list of ``(start, end,
  kind)`` segments. Conflict-free plan segments from pair mode (PM's
  matching halves) become single batch segments with no scan at all.
  Segmentation depends only on indices, never on values, which is what
  makes plan-then-execute — and plan-*ahead* — possible.

* **Pipelined execution (the default).** ``apply_*`` publishes the
  schedule to the workers and **returns immediately**: batch segments
  are applied by the workers in equal contiguous slices, conflicted
  sequential tails by worker 0, a workers-only barrier ordering the
  segments, and each worker posts one ``applied`` acknowledgement per
  schedule. The two banks turn that into a pipeline: while the workers
  apply cycle ``t`` from bank A, the parent is already drawing cycle
  ``t+1``'s randomness, running its mask pass and planning its
  segmentation into bank B. The handoff is two-phase — before planning
  into a bank the parent drains that bank's outstanding
  acknowledgement, so a schedule is never overwritten while in flight,
  and the engine calls :meth:`sync` before every matrix read or
  engine-side write (observers, churn admissions, epoch reseeds) so no
  consumer sees a half-applied cycle. Setting
  ``REPRO_SHARD_PIPELINE=0`` (or ``pipelined=False``) falls back to
  the synchronous mode — a ``workers + 1`` barrier per segment, the
  parent applying sequential tails itself — which is what
  ``bench_shard.py``'s ablation measures the pipeline against.

* **Bitwise equality.** The schedule preserves per-node step order,
  disjoint steps commute exactly, and ``combine_array`` matches scalar
  ``combine`` bit for bit, so the result is identical to the
  sequential reference execution for any worker count in either mode;
  pipelining changes *when* a planned segment is applied, never *what*
  is applied. Slicing each batch — rather than assigning steps by the
  row-shard of their initiator — is deliberate: exchange-mode
  initiators arrive sorted, so a greedy window's initiators span one
  narrow row range and row-ownership would hand the whole window to a
  single worker; a contiguous slice of a sorted window *is* a row
  range, keeping the locality while balancing the work exactly.

Workers never draw randomness and never see the overlay (CSR partner
draws stay engine-side), so backend swaps keep the engine's RNG stream
untouched. ``workers="auto"`` resolves one worker per schedulable core
(``os.sched_getaffinity``, capped at 8) and falls back to *inline*
in-process execution below :data:`SHARD_INLINE` rows — at degenerate
sizes the pool's spawn and IPC costs cannot be amortized, so ``auto``
is never slower than the vectorized backend there. The pool is spawned
lazily on first use — fork where the platform has it, spawn otherwise
— and torn down by :meth:`ShardedBackend.close` (also hooked to
garbage collection, and workers are daemonic as a last resort). Pool
failures — a worker killed mid-segment, a barrier timeout, a missing
acknowledgement — surface as :class:`repro.errors.ShardPoolError`
naming the stalled worker and protocol phase.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import sys
import time
import traceback
import weakref
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Deque, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...core.aggregates import AggregateFunction
from ...errors import ConfigurationError, ShardPoolError, SimulationError
from ..faults import BACKEND_FAULT_KINDS, FaultSpec
from .base import (
    SEGMENT_BATCH,
    SEGMENT_SEQUENTIAL,
    ExecutionBackend,
    apply_disjoint_batch,
    apply_sequential,
    iter_greedy_segments,
    resolve_chunk,
)
from .vectorized import VectorizedBackend

#: default greedy-segmentation window for the sharded backend. Larger
#: than the in-process :data:`~.base.PAIR_CHUNK`: every peeled batch
#: costs one pool barrier, so the window is sized for few, fat batches
#: (at N = 10⁶ a 64k window peels in 2–3 batches) rather than
#: cache-resident scans. Tunable via ``REPRO_SHARD_CHUNK``.
SHARD_CHUNK = 65536

#: sequential-tail threshold for the sharded planner — larger than the
#: in-process :data:`~.base.GREEDY_TAIL` because here a batch costs a
#: barrier round-trip on top of the first-occurrence scan.
SHARD_TAIL = 192

#: below this many matrix rows, ``workers="auto"`` skips the pool
#: entirely and applies in-process (the vectorized path): a worker
#: pool cannot amortize its spawn/IPC costs on sub-cache matrices, so
#: ``sharded:auto`` is never slower than ``vectorized`` at degenerate
#: sizes. Tunable via ``REPRO_SHARD_INLINE``.
SHARD_INLINE = 65536

#: default seconds a barrier/acknowledgement wait may block before the
#: pool is declared dead (override via ``REPRO_SHARD_TIMEOUT``)
_DEFAULT_TIMEOUT = 120.0

#: what a pool failure does: ``raise`` surfaces a ShardPoolError (the
#: historical fail-fast behavior), ``respawn`` replays the in-flight
#: schedule inline and restarts the workers (up to ``max_respawns``
#: times, then degrades), ``inline`` degrades to in-process vectorized
#: execution immediately — the run always finishes.
POOL_FAILURE_MODES = ("raise", "respawn", "inline")

#: default respawn budget before a ``respawn`` pool degrades to inline
_DEFAULT_MAX_RESPAWNS = 2

#: first respawn backoff; doubles per attempt, capped at 1 s
_RESPAWN_BACKOFF = 0.05


def _barrier_timeout() -> float:
    """The pool liveness timeout, resolved at backend construction so a
    malformed ``REPRO_SHARD_TIMEOUT`` raises a typed error from the
    component that uses it, not an import-time crash."""
    env = os.environ.get("REPRO_SHARD_TIMEOUT", "").strip()
    if not env:
        return _DEFAULT_TIMEOUT
    try:
        value = float(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SHARD_TIMEOUT must be a number of seconds, got {env!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"REPRO_SHARD_TIMEOUT must be positive, got {value}"
        )
    return value


def _pipelined_default() -> bool:
    """The pipeline mode flag from ``REPRO_SHARD_PIPELINE`` (default
    on; ``0``/``false``/``no`` select the synchronous barrier mode the
    ablation benchmark measures against)."""
    env = os.environ.get("REPRO_SHARD_PIPELINE", "").strip().lower()
    if not env:
        return True
    if env in ("1", "true", "yes", "on"):
        return True
    if env in ("0", "false", "no", "off"):
        return False
    raise ConfigurationError(
        f"REPRO_SHARD_PIPELINE must be a boolean flag (0/1), got {env!r}"
    )


def _on_failure_default() -> str:
    """The pool failure policy from ``REPRO_SHARD_ON_FAILURE``
    (default ``"raise"``; see :data:`POOL_FAILURE_MODES`)."""
    env = os.environ.get("REPRO_SHARD_ON_FAILURE", "").strip().lower()
    if not env:
        return "raise"
    if env in POOL_FAILURE_MODES:
        return env
    raise ConfigurationError(
        f"REPRO_SHARD_ON_FAILURE must be one of {POOL_FAILURE_MODES}, "
        f"got {env!r}"
    )


def _max_respawns_default() -> int:
    """The respawn budget from ``REPRO_SHARD_MAX_RESPAWNS`` (default
    :data:`_DEFAULT_MAX_RESPAWNS`)."""
    env = os.environ.get("REPRO_SHARD_MAX_RESPAWNS", "").strip()
    if not env:
        return _DEFAULT_MAX_RESPAWNS
    try:
        value = int(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SHARD_MAX_RESPAWNS must be a non-negative integer, "
            f"got {env!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"REPRO_SHARD_MAX_RESPAWNS must be non-negative, got {value}"
        )
    return value


class _PoolFailure(Exception):
    """Internal signal a detection site raises under a self-healing
    failure policy instead of aborting the pool: the recovery
    boundaries (:meth:`ShardedBackend.sync`, ``_apply``, ``_map``)
    catch it and decide between replay-and-respawn and degrading.
    Never escapes the backend."""

    def __init__(self, phase: str, worker: Optional[int], failure: str):
        super().__init__(phase)
        self.phase = phase
        self.worker = worker
        self.failure = failure


@dataclass(frozen=True)
class PoolHealthReport:
    """What happened to a sharded pool over its lifetime.

    ``events`` carries one dict per detected failure (``phase``,
    ``worker``, ``action`` taken, whether an in-flight schedule was
    ``replayed`` inline, recovery ``seconds``, worker diagnostics).
    A report with no events is a run the pool survived untouched.
    """

    on_failure: str
    workers: int
    respawns: int
    degraded: bool
    events: Tuple[dict, ...] = field(default_factory=tuple)

    @property
    def recovery_seconds(self) -> float:
        """Total wall-clock spent inside failure recovery."""
        return float(sum(e.get("seconds", 0.0) for e in self.events))


def _inline_threshold() -> int:
    """The ``workers='auto'`` inline-fallback row threshold
    (``REPRO_SHARD_INLINE``, default :data:`SHARD_INLINE`)."""
    env = os.environ.get("REPRO_SHARD_INLINE", "").strip()
    if not env:
        return SHARD_INLINE
    try:
        value = int(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SHARD_INLINE must be a non-negative integer, "
            f"got {env!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"REPRO_SHARD_INLINE must be non-negative, got {value}"
        )
    return value


#: segment kinds in a schedule (shared with the greedy planner)
_BATCH = SEGMENT_BATCH
_SEQUENTIAL = SEGMENT_SEQUENTIAL

Segment = Tuple[int, int, int]


def default_workers() -> int:
    """Worker count when none is requested: one per *schedulable* core
    (cpusets/affinity masks in containers often expose fewer cores
    than ``os.cpu_count`` reports), capped — the exchange path
    saturates memory bandwidth before it runs out of arithmetic, so
    very wide pools only add barrier traffic."""
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(8, cores))


def _carve(
    shm: shared_memory.SharedMemory, rows: int, k: int, steps_cap: int
) -> Tuple[np.ndarray, Tuple[Tuple[np.ndarray, np.ndarray], ...]]:
    """The views carved from one shared segment: the ``(rows, k)``
    float64 value matrix followed by two banks of int32 step buffers
    (``(step_i, step_j)`` per bank). Bank B exists so the parent can
    plan schedule ``t+1`` while the workers apply ``t`` from bank A;
    the untouched bank costs address space, not resident pages."""
    matrix_bytes = rows * k * 8
    view = np.ndarray((rows, k), dtype=np.float64, buffer=shm.buf)
    banks = []
    for bank in range(2):
        base = matrix_bytes + bank * steps_cap * 8
        step_i = np.ndarray(
            (steps_cap,), dtype=np.int32, buffer=shm.buf, offset=base
        )
        step_j = np.ndarray(
            (steps_cap,), dtype=np.int32, buffer=shm.buf,
            offset=base + steps_cap * 4,
        )
        banks.append((step_i, step_j))
    return view, tuple(banks)


def _worker_slice(start: int, end: int, index: int, workers: int) -> slice:
    """Worker ``index``'s contiguous slice of a batch segment."""
    span = end - start
    base, remainder = divmod(span, workers)
    lo = start + index * base + min(index, remainder)
    return slice(lo, lo + base + (1 if index < remainder else 0))


def _worker_main(
    conn, barrier, index: int, workers: int, timeout: float,
    pipelined: bool,
) -> None:
    """Worker loop: remap / functions / apply / quit commands.

    In pipelined mode the barrier has ``workers`` parties (the parent
    is off planning the next schedule), worker 0 applies the
    conflicted sequential tails, and each worker acknowledges every
    completed schedule with ``("applied", bank)``. In barrier mode the
    parent is the extra barrier party and applies the tails itself.
    """
    shm: Optional[shared_memory.SharedMemory] = None
    view = None
    banks: Tuple = ()
    functions: Tuple[AggregateFunction, ...] = ()
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "quit":
                break
            if command == "remap":
                _, name, rows, k, steps_cap = message
                view = None
                banks = ()
                if shm is not None:
                    shm.close()
                # NOTE: attaching registers the name with the resource
                # tracker again (bpo-38119), but parent and workers
                # share one tracker process, whose name set dedups the
                # double registration; the parent's unlink clears it.
                shm = shared_memory.SharedMemory(name=name)
                view, banks = _carve(shm, rows, k, steps_cap)
                # the parent keeps the *previous* segment linked until
                # every worker has confirmed the switch (attaching a
                # name that a faster remap already unlinked would fail)
                conn.send(("remapped", name))
            elif command == "functions":
                functions = message[1]
            elif command == "sleep":
                # the delay_ack fault: stall this worker's command
                # stream (a sleep past the pool timeout is how the
                # fault harness turns a worker into a detected hang)
                time.sleep(message[1])
            elif command == "apply":
                _, bank, segments = message
                step_i, step_j = banks[bank]
                for start, end, kind in segments:
                    if kind == _BATCH:
                        sl = _worker_slice(start, end, index, workers)
                        apply_disjoint_batch(
                            view, functions, step_i[sl], step_j[sl]
                        )
                    elif pipelined and index == 0:
                        # conflicted tails run in step order on one
                        # applier; in pipelined mode that is worker 0
                        # (the parent is busy planning the next cycle)
                        apply_sequential(
                            view, functions,
                            step_i[start:end], step_j[start:end],
                        )
                    barrier.wait(timeout)
                if pipelined:
                    conn.send(("applied", bank))
    except (EOFError, KeyboardInterrupt):
        # the parent closed the command pipe (shutdown) — exit quietly
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
        barrier.abort()
    finally:
        view = None
        banks = ()
        if shm is not None:
            shm.close()


def _unlink(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def _stop_pool(procs, pipes) -> None:
    """Stop the worker processes and close the command pipes."""
    for pipe in pipes:
        try:
            pipe.send(("quit",))
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - crash path
            proc.terminate()
            proc.join(timeout=5)
    for pipe in pipes:
        try:
            pipe.close()
        except OSError:
            pass
    procs.clear()
    pipes.clear()


def _shutdown(procs, pipes, shm_holder, parked) -> None:
    """Full teardown; module-level so ``weakref.finalize`` holds no
    reference back to the backend.

    Closing a segment unmaps it even while numpy views exist (numpy's
    ``buffer=`` interface holds no buffer export), so this must only
    run when no live view can still be read: the orderly path detaches
    the engine's matrix first (:meth:`ExecutionBackend.release_matrix`),
    and the GC path implies the engine is unreachable.
    """
    _stop_pool(procs, pipes)
    for shm in shm_holder + parked:
        _unlink(shm)
        shm.close()
    shm_holder.clear()
    parked.clear()


class ShardedBackend(ExecutionBackend):
    """Shared-memory multi-process execution — the million-node path."""

    name = "sharded"

    def __init__(
        self,
        workers: Optional[Union[int, str]] = None,
        *,
        chunk: Optional[int] = None,
        pipelined: Optional[bool] = None,
        inline_below: Optional[int] = None,
        on_failure: Optional[str] = None,
        max_respawns: Optional[int] = None,
    ):
        self._auto = workers == "auto"
        if workers is None or self._auto:
            workers = default_workers()
        if (
            isinstance(workers, bool)
            or not isinstance(workers, (int, np.integer))
            or workers < 1
        ):
            raise ConfigurationError(
                f"sharded worker count must be a positive integer or "
                f"'auto', got {workers!r}"
            )
        self.workers = int(workers)
        self._chunk = resolve_chunk(
            chunk, env_var="REPRO_SHARD_CHUNK", default=SHARD_CHUNK
        )
        self._timeout = _barrier_timeout()
        self._pipelined = (
            _pipelined_default() if pipelined is None else bool(pipelined)
        )
        self._inline_below = (
            _inline_threshold() if inline_below is None else int(inline_below)
        )
        if on_failure is None:
            on_failure = _on_failure_default()
        if on_failure not in POOL_FAILURE_MODES:
            raise ConfigurationError(
                f"on_failure must be one of {POOL_FAILURE_MODES}, "
                f"got {on_failure!r}"
            )
        self._on_failure = on_failure
        if max_respawns is None:
            max_respawns = _max_respawns_default()
        if max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be non-negative, got {max_respawns}"
            )
        self._max_respawns = int(max_respawns)
        # self-healing state: respawn budget spent, degraded-to-inline
        # flag (sticky — it records that the pool was lost), the
        # failure event log behind health_report(), and the armed
        # fault injections with the apply-call counter they key on
        self._respawns_used = 0
        self._degraded = False
        self._events: List[dict] = []
        self._faults: List[FaultSpec] = []
        self._apply_calls = 0
        # healing journal: a pre-publish snapshot of the value matrix
        # plus a heap copy of the scheduled steps, enough to replay
        # the one in-flight schedule inline after the pool died
        self._snapshot: Optional[np.ndarray] = None
        self._journal: Optional[Tuple] = None
        self._journal_pending = False
        #: parent-side wall-clock breakdown, accumulated across calls:
        #: ``plan`` = segmentation + bank writes + publish, ``apply`` =
        #: parent-applied work (sequential tails in barrier mode,
        #: inline fallback), ``sync`` = time blocked on worker barriers
        #: and acknowledgements. ``bench_shard.py`` archives these.
        self.phase_seconds = {"plan": 0.0, "apply": 0.0, "sync": 0.0}
        #: full value-matrix copies performed by adopt/grow hand-offs —
        #: the churn-growth regression test pins this to exactly one
        #: copy per growth (it used to be two: engine vstack + adopt)
        self.adopt_copies = 0
        # fork only where it is actually safe: macOS has fork available
        # but CPython switched its default to spawn for a reason (forked
        # children inherit Objective-C/Accelerate state and can abort in
        # the first BLAS call). The worker entry point is module-level
        # and all state travels over the pipes, so spawn works anywhere.
        start_method = (
            "fork"
            if sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(start_method)
        self._procs: List = []
        self._pipes: List = []
        self._barrier = None
        # current segment (held in a one-element list so the finalizer
        # can see replacements) + parked segments: the most recent
        # superseded segment (and any failure-orphaned one) whose
        # parent-side mapping is kept open because a stale numpy view
        # (an old engine matrix mid-remap, a matrix read after a pool
        # failure) would otherwise dangle — numpy's ``buffer=`` holds
        # no export, so closing unmaps unconditionally. Names are
        # unlinked eagerly; each remap releases the generation before
        # last (no older view can be live once the engine re-adopted),
        # so at most previous + current stay mapped (≈ 2x the live
        # segment), freed entirely at close()/GC.
        self._shm_holder: List[shared_memory.SharedMemory] = []
        self._parked: List[shared_memory.SharedMemory] = []
        self._view: Optional[np.ndarray] = None
        self._banks: Tuple = ()
        self._steps_cap = 0
        self._adopted = False
        self._inline = False
        self._vector: Optional[VectorizedBackend] = None
        self._sent_functions: Optional[Tuple] = None
        # pipelined-mode state: which bank the next schedule plans
        # into, and the banks of schedules still in flight (FIFO; at
        # most two — one per bank)
        self._next_bank = 0
        self._inflight: Deque[int] = deque()
        # planner scratch (parent-side greedy segmentation)
        self._position: Optional[np.ndarray] = None
        self._flat: Optional[np.ndarray] = None
        self._slots: Optional[np.ndarray] = None
        self._finalizer = weakref.finalize(
            self, _shutdown,
            self._procs, self._pipes, self._shm_holder, self._parked,
        )

    # -- lifecycle --------------------------------------------------------

    @property
    def active_workers(self) -> int:
        """Live worker processes (0 before first use / after close,
        and always 0 in the ``auto`` inline fallback)."""
        return sum(1 for proc in self._procs if proc.is_alive())

    @property
    def pipelined(self) -> bool:
        """Whether apply calls overlap worker execution with parent
        planning (the default) or barrier every segment."""
        return self._pipelined

    @property
    def inline(self) -> bool:
        """Whether the ``auto`` small-matrix fallback is active (the
        adopted matrix stayed in-process; no pool, no segment)."""
        return self._inline

    @property
    def on_failure(self) -> str:
        """The pool failure policy (see :data:`POOL_FAILURE_MODES`)."""
        return self._on_failure

    @property
    def degraded(self) -> bool:
        """Whether the pool was lost and execution fell back to the
        in-process vectorized path (sticky for the backend's life)."""
        return self._degraded

    def inject_faults(self, specs: Sequence[FaultSpec]) -> None:
        """Arm the backend with fault injections (the test harness).

        Each spec fires once, right before the apply call its
        ``at_call`` names publishes its schedule; see
        :class:`~repro.kernel.faults.FaultSpec`. Only backend-side
        kinds are accepted (``parent_kill`` is orchestrated by
        :func:`~repro.kernel.faults.spawn_and_kill`)."""
        armed = []
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"inject_faults takes FaultSpec instances, got "
                    f"{type(spec).__name__}"
                )
            if spec.kind not in BACKEND_FAULT_KINDS:
                raise ConfigurationError(
                    f"fault kind {spec.kind!r} cannot be injected into "
                    f"a backend; use the external harness "
                    f"(spawn_and_kill) instead"
                )
            if spec.kind in ("kill_worker", "delay_ack") and (
                spec.worker >= self.workers
            ):
                raise ConfigurationError(
                    f"fault targets worker {spec.worker} but the pool "
                    f"has {self.workers} workers"
                )
            armed.append(spec)
        self._faults.extend(armed)

    def health_report(self) -> PoolHealthReport:
        """The pool's failure/recovery history (empty events for an
        undisturbed run). Survives :meth:`close`, so it can be read
        after the engine released the backend."""
        return PoolHealthReport(
            on_failure=self._on_failure,
            workers=self.workers,
            respawns=self._respawns_used,
            degraded=self._degraded,
            events=tuple(dict(event) for event in self._events),
        )

    def release_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """A heap copy of the shared view, safe to read after
        :meth:`close` (see the base-class contract). Drains any
        in-flight schedules first so the copy is the final state."""
        if matrix is self._view:
            self.sync()
            return matrix.copy()
        return matrix

    def close(self) -> None:
        """Shut the worker pool down and release the shared segments.

        Callers reading the matrix afterwards must hold the detached
        copy from :meth:`release_matrix` (engines do this in
        ``GossipEngine.close``), not a view into the segment.
        """
        try:
            self.sync()
        except ShardPoolError:
            # the pool died with work in flight; _abort already parked
            # the segments — proceed with the teardown below
            pass
        self._view = None
        self._banks = ()
        self._steps_cap = 0
        self._adopted = False
        self._inline = False
        self._sent_functions = None
        self._barrier = None
        self._inflight.clear()
        self._next_bank = 0
        # the healing journal dies with the run; _degraded and the
        # event log survive close() so health_report() still tells
        # the story after the engine released the backend
        self._snapshot = None
        self._journal = None
        self._journal_pending = False
        self._faults = []
        if self._finalizer.alive:
            self._finalizer()
        self._finalizer = weakref.finalize(
            self, _shutdown,
            self._procs, self._pipes, self._shm_holder, self._parked,
        )

    def _abort(self) -> str:
        """Tear the pool down after a failure, *parking* the segments:
        the caller's engine may still read its matrix view before (or
        instead of) an orderly close. Returns worker diagnostics."""
        detail = self._pool_error()
        _stop_pool(self._procs, self._pipes)
        for shm in self._shm_holder:
            self._parked.append(shm)
        self._shm_holder.clear()
        try:
            # every parked mapping stays open for stale views, but no
            # name may survive the abort: a failure during a remap
            # round-trip parks the previous generation *before* its
            # name is unlinked, and close()/GC only unlink what is
            # still in the holder — without this sweep that name would
            # leak in /dev/shm for the life of the machine. _unlink is
            # idempotent, so re-sweeping already-unlinked parks is free.
            for shm in self._parked:
                _unlink(shm)
        finally:
            self._barrier = None
            self._sent_functions = None
            self._inflight.clear()
            self._journal_pending = False
        return detail

    def _fail(self, phase: str, worker: Optional[int], failure: str):
        """Route a detected pool failure: under a self-healing policy
        raise the internal recovery signal (the pool is torn down by
        the recovery boundary, which still holds the journal); under
        ``raise`` abort the pool and raise the typed error naming the
        stalled worker and the protocol phase that broke."""
        if self._on_failure != "raise":
            raise _PoolFailure(phase, worker, failure)
        prefix = "" if worker is None else f"worker {worker}: {failure}\n"
        detail = f"{prefix}{self._abort()}"
        raise ShardPoolError(phase, worker=worker, detail=detail)

    def _first_dead_worker(self) -> Optional[int]:
        for index, proc in enumerate(self._procs):
            if not proc.is_alive():
                return index
        return None

    def _inline_eligible(self, rows: int) -> bool:
        """Whether ``auto`` should apply in-process for a matrix of
        ``rows``: below the inline threshold the pool cannot amortize
        its IPC, and with a single schedulable core (``auto`` resolved
        to one worker) it cannot win at *any* size — there is no
        second core to overlap with, so the pool would only add IPC
        and scheduling overhead on top of the same serial work."""
        return self._auto and (
            rows < self._inline_below or self.workers == 1
        )

    def _ensure_pool(self) -> None:
        if self._procs or self._degraded:
            return
        # make sure the resource-tracker process exists *before* the
        # workers fork, so they inherit its pipe and share it: a worker
        # that forks tracker-less would lazily spawn a private tracker
        # on its first segment attach and warn about "leaked" segments
        # it does not own at exit
        try:  # pragma: no cover - interpreter plumbing
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        # pipelined: the workers order segments among themselves and
        # the parent stays out of the execution path entirely; barrier
        # mode: the parent is the extra party and applies the tails
        parties = self.workers + (0 if self._pipelined else 1)
        self._barrier = self._ctx.Barrier(parties)
        for index in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._barrier, index, self.workers,
                      self._timeout, self._pipelined),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)

    def _broadcast(self, message) -> None:
        try:
            for pipe in self._pipes:
                pipe.send(message)
        except OSError as error:
            # a dead worker (OOM kill, crash) broke the pipe: surface
            # its diagnostics and stop the survivors — they would
            # otherwise sit blocked on recv() until close/GC
            self._fail("command", self._first_dead_worker(),
                       f"pipe broke ({error})")
        except (pickle.PicklingError, AttributeError, TypeError,
                ValueError) as error:
            raise SimulationError(
                f"sharded backend could not serialize a command "
                f"({error}); unpicklable aggregate functions are the "
                f"usual cause — use module-level AggregateFunction "
                f"classes with the sharded backend"
            ) from error

    def _pool_error(self) -> str:
        reports = []
        for index, pipe in enumerate(self._pipes):
            try:
                while pipe.poll():
                    message = pipe.recv()
                    if message and message[0] == "error":
                        reports.append(
                            f"worker {index}:\n{message[1]}"
                        )
            except (EOFError, OSError):
                reports.append(f"worker {index}: exited")
        return "\n".join(reports) or "no worker diagnostics available"

    def _wait(self) -> None:
        """Barrier-mode segment wait (the parent is a barrier party)."""
        started = time.perf_counter()
        try:
            self._barrier.wait(self._timeout)
        except Exception:
            self.phase_seconds["sync"] += time.perf_counter() - started
            self._fail("barrier", self._first_dead_worker(),
                       "barrier broken")
        self.phase_seconds["sync"] += time.perf_counter() - started

    def _poll_with_liveness(self, index: int, pipe) -> bool:
        """Poll a worker's pipe in growing slices, checking process
        liveness between slices: a SIGKILLed worker is detected in
        tens of milliseconds instead of blocking the full pool
        timeout (recovery latency is a benchmarked metric, and the
        fail-fast ``raise`` mode reports just as quickly)."""
        deadline = time.perf_counter() + self._timeout
        slice_seconds = 0.01
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return pipe.poll(0)
            if pipe.poll(min(slice_seconds, remaining)):
                return True
            if not self._procs[index].is_alive():
                # one grace poll: the worker may have sent its reply
                # (or an error report) in its dying moments
                return pipe.poll(0.25)
            slice_seconds = min(slice_seconds * 2, 0.5)

    def _await_acks(self, expected: str, phase: str,
                    payload=None) -> None:
        """One confirmation message from every worker, in pool order."""
        for index, pipe in enumerate(self._pipes):
            failure = None
            try:
                if self._poll_with_liveness(index, pipe):
                    message = pipe.recv()
                    if (
                        message
                        and message[0] == expected
                        and (payload is None or message[1] == payload)
                    ):
                        continue
                    failure = (
                        message[1] if message and message[0] == "error"
                        else f"unexpected reply {message!r}"
                    )
                elif not self._procs[index].is_alive():
                    failure = f"died before its {expected!r} reply"
                else:
                    failure = f"no {expected!r} reply within timeout"
            except (EOFError, OSError):
                failure = "exited"
            self._fail(phase, index, failure)

    def _drain_oldest(self) -> None:
        """Receive the ``applied`` acknowledgement set for the oldest
        in-flight schedule."""
        bank = self._inflight[0]
        self._await_acks("applied", "apply", payload=bank)
        self._inflight.popleft()
        if not self._inflight:
            # everything published is applied: the healing journal has
            # nothing left to replay (healing mode keeps at most one
            # schedule in flight, so this fires after every drain)
            self._journal_pending = False

    def _drain_bank(self, bank: int) -> None:
        """Phase one of the bank handoff: the parent may only plan
        into a bank whose previous schedule has been acknowledged."""
        while bank in self._inflight:
            self._drain_oldest()

    def sync(self) -> None:
        """Block until every published schedule has been applied (the
        engine calls this before matrix reads and engine-side writes;
        a no-op for barrier mode, inline mode and idle pools). Under a
        self-healing failure policy a pool death detected here is
        recovered in place: the journaled schedule is replayed inline,
        so the matrix the caller is about to read is exactly the state
        the dead pool was asked to produce."""
        if not self._inflight:
            return
        started = time.perf_counter()
        try:
            while self._inflight:
                try:
                    self._drain_oldest()
                except _PoolFailure as failure:
                    self._recover(failure)
        finally:
            self.phase_seconds["sync"] += time.perf_counter() - started

    # -- self-healing -----------------------------------------------------

    def _journal_schedule(self, bank: int, segments: List[Segment],
                          functions: Tuple) -> None:
        """Snapshot the value matrix and copy the scheduled steps to
        the heap before the schedule is published: if the pool dies
        mid-apply, restore + inline replay reproduces the post-apply
        state bit for bit. The copies are taken *before* any fault can
        corrupt the shared bank, so replay is always from clean state.
        """
        rows, k = self._view.shape
        if self._snapshot is None or self._snapshot.shape != (rows, k):
            self._snapshot = np.empty((rows, k), dtype=np.float64)
        np.copyto(self._snapshot, self._view)
        step_i, step_j = self._banks[bank]
        cursor = segments[-1][1] if segments else 0
        self._journal = (
            functions,
            step_i[:cursor].copy(),
            step_j[:cursor].copy(),
            list(segments),
        )
        self._journal_pending = True

    def _replay_journal(self) -> None:
        """Restore the pre-publish snapshot and apply the journaled
        schedule inline, in schedule order — the exact work the dead
        pool owed, with the same segmentation, so the result is
        bitwise what the workers would have produced."""
        functions, step_i, step_j, segments = self._journal
        np.copyto(self._view, self._snapshot)
        for start, end, kind in segments:
            if kind == _BATCH:
                apply_disjoint_batch(
                    self._view, functions,
                    step_i[start:end], step_j[start:end],
                )
            else:
                apply_sequential(
                    self._view, functions,
                    step_i[start:end], step_j[start:end],
                )
        self._journal_pending = False

    def _respawn_pool(self) -> None:
        """Bring a fresh worker pool up on the *current* segment:
        spawn, remap, and leave the functions to be re-sent by the
        next apply (``_sent_functions`` was invalidated)."""
        self._ensure_pool()
        if self._view is not None:
            rows, k = self._view.shape
            name = self._shm_holder[0].name
            self._broadcast(("remap", name, rows, k, self._steps_cap))
            self._await_acks("remapped", "remap", payload=name)

    def _recover(self, failure: _PoolFailure) -> bool:
        """The self-healing boundary: tear the dead pool down, replay
        any journaled in-flight schedule inline, then respawn (within
        the ``max_respawns`` budget) or degrade to in-process
        vectorized execution for the rest of the run. Returns whether
        a journaled schedule was replayed — ``True`` means the failed
        apply call's work is already complete."""
        started = time.perf_counter()
        detail = self._pool_error()
        if self._barrier is not None:
            try:
                # wake workers blocked on the barrier so _stop_pool
                # joins them in milliseconds, not join-timeouts
                self._barrier.abort()
            except Exception:  # pragma: no cover - teardown race
                pass
        _stop_pool(self._procs, self._pipes)
        self._barrier = None
        self._sent_functions = None
        self._inflight.clear()
        replayed = False
        if self._journal_pending:
            self._replay_journal()
            replayed = True
        event = {
            "phase": failure.phase,
            "worker": failure.worker,
            "failure": failure.failure,
            "detail": detail[:2000],
            "replayed": replayed,
        }
        while True:
            if (
                self._on_failure == "respawn"
                and self._respawns_used < self._max_respawns
            ):
                self._respawns_used += 1
                time.sleep(min(
                    _RESPAWN_BACKOFF * 2 ** (self._respawns_used - 1),
                    1.0,
                ))
                try:
                    self._respawn_pool()
                except _PoolFailure as again:  # pragma: no cover
                    # the respawned pool died during its own remap:
                    # burn another respawn credit (or fall through to
                    # degrade) rather than surfacing the failure
                    self._events.append({
                        "phase": again.phase,
                        "worker": again.worker,
                        "failure": again.failure,
                        "detail": self._pool_error()[:2000],
                        "replayed": False,
                        "action": "respawn-failed",
                        "seconds": 0.0,
                    })
                    _stop_pool(self._procs, self._pipes)
                    self._barrier = None
                    continue
                event["action"] = "respawn"
            else:
                # budget exhausted (or on_failure="inline"): the rest
                # of the run executes in-process on the same memory —
                # slower, never wrong, and it always finishes
                self._degraded = True
                event["action"] = "inline"
            break
        event["seconds"] = time.perf_counter() - started
        self._events.append(event)
        return replayed

    def _fire_faults(self, bank: int, call: int) -> None:
        """Fire armed fault injections keyed to this apply call.

        Runs after the schedule is journaled and before it is
        published, so every fault hits a pool with a clean replay
        journal — exactly the window a real mid-apply crash lands in.
        """
        if not self._faults:
            return
        remaining = []
        for spec in self._faults:
            if spec.at_call != call:
                remaining.append(spec)
                continue
            if spec.kind == "kill_worker":
                proc = self._procs[spec.worker]
                if proc.pid is not None and proc.is_alive():
                    os.kill(proc.pid, signal.SIGKILL)
            elif spec.kind == "delay_ack":
                try:
                    self._pipes[spec.worker].send(("sleep", spec.delay))
                except OSError:  # pragma: no cover - already dead
                    pass
            elif spec.kind == "corrupt_bank":
                # out-of-range rows: the first worker to touch the
                # segment IndexErrors, reports, and aborts the pool
                step_i, _ = self._banks[bank]
                rows = self._view.shape[0]
                step_i[:max(1, min(8, self._steps_cap))] = rows * 7 + 3
        self._faults = remaining

    # -- shared-memory mapping --------------------------------------------

    def _map(self, rows: int, k: int, steps_cap: int) -> None:
        """(Re)create the shared segment and switch the pool over.

        In a degraded (pool-lost) backend the segment is still mapped
        — it is plain memory to the inline path — but no pool is
        spawned and no remap round-trip happens."""
        self.sync()
        if not self._degraded:
            self._ensure_pool()
        nbytes = max(rows * k * 8 + steps_cap * 16, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        view, banks = _carve(shm, rows, k, steps_cap)
        previous = list(self._shm_holder)
        self._shm_holder.clear()
        self._shm_holder.append(shm)
        self._view, self._banks = view, banks
        self._steps_cap = steps_cap
        # park the previous generation *before* the remap round-trip so
        # a failure mid-remap leaves it reachable for close()/_shutdown
        # (its name is still linked at this point; _unlink is tolerant)
        older = list(self._parked)
        self._parked.extend(previous)
        try:
            if not self._degraded:
                try:
                    self._broadcast(
                        ("remap", shm.name, rows, k, steps_cap)
                    )
                    # wait until every worker confirms it attached the
                    # new segment: unlinking the previous name before a
                    # slow worker processed an *earlier* remap command
                    # would make that attach fail
                    self._await_acks("remapped", "remap",
                                     payload=shm.name)
                except _PoolFailure as failure:
                    # self-healing: recovery either respawned the pool
                    # (remapping the current segment itself, acks and
                    # all) or degraded to inline (the fresh mapping is
                    # plain memory) — the switch-over is complete
                    # either way
                    self._recover(failure)
        finally:
            # previous-generation *names* must never outlive the
            # switch-over, success or failure: their parent mappings
            # stay parked for stale views, but a leaked name would
            # pin the segment in /dev/shm forever (_unlink tolerates
            # the abort path having swept them already)
            for old in previous:
                _unlink(old)
        # grandparent generations can go: the engine re-adopted the
        # *previous* segment's replacement synchronously, so no live
        # view of anything older can remain (keeping them all would
        # grow linearly with epoch instance-count rebuilds, which remap
        # on nearly every epoch of the Figure 4 workload). The previous
        # segment keeps its parent-side mapping — an engine matrix may
        # still view it until re-adoption lands — but loses its name
        # (workers closed their mappings on remap).
        for stale in older:
            stale.close()
        self._parked[:] = previous

    def adopt_matrix(self, matrix: np.ndarray) -> np.ndarray:
        source = np.ascontiguousarray(matrix, dtype=np.float64)
        rows, k = source.shape
        if self._inline_eligible(rows) and not self._procs:
            # degenerate case: stay in-process (no segment, no pool);
            # a later growth past the threshold promotes to the pool
            self._inline = True
            self._adopted = True
            return source
        self._inline = False
        self._map(rows, k, steps_cap=max(rows, 1))
        self._view[:] = source
        self.adopt_copies += 1
        self._adopted = True
        return self._view

    def grow_matrix(self, matrix: np.ndarray, rows: int) -> np.ndarray:
        """Single-copy capacity growth: map the larger segment, copy
        the old (shared or inline) matrix straight into it. The old
        segment is parked by :meth:`_map`, so its view stays readable
        for the copy; the grown tail is the fresh segment's zero
        pages — no zero-fill pass, no intermediate heap array."""
        k = matrix.shape[1]
        if self._inline and self._inline_eligible(rows):
            # still degenerate: grow on the heap (one copy)
            self.adopt_copies += 1
            return super().grow_matrix(matrix, rows)
        old_rows = min(matrix.shape[0], rows)
        self._map(rows, k, steps_cap=max(rows, 1))
        self._view[:old_rows] = matrix[:old_rows]
        self.adopt_copies += 1
        self._inline = False
        self._adopted = True
        return self._view

    def allocate_matrix(self, rows: int, k: int) -> np.ndarray:
        """Zero-copy epoch rebuild: a fresh segment's pages are
        zero-filled by the OS, so the rebuilt matrix costs no copy and
        no zero-fill pass at all (the heap-zeros-then-adopt path wrote
        every byte twice)."""
        if self._inline and self._inline_eligible(rows):
            return super().allocate_matrix(rows, k)
        self._map(rows, k, steps_cap=max(rows, 1))
        self._inline = False
        self._adopted = True
        return self._view

    def _ensure_functions(
        self, functions: Sequence[AggregateFunction]
    ) -> None:
        if functions is self._sent_functions:
            return
        payload = tuple(functions)
        self._broadcast(("functions", payload))
        self._sent_functions = functions

    def _ensure_vector(self) -> VectorizedBackend:
        if self._vector is None:
            self._vector = VectorizedBackend(chunk=self._chunk)
        return self._vector

    def apply_view_exchanges(
        self,
        views: np.ndarray,
        exch_i: np.ndarray,
        exch_j: np.ndarray,
    ) -> None:
        """Newscast view merges, applied parent-side.

        The view matrix is engine-hosted state like the alive mask —
        workers never draw randomness and never see the overlay, and
        that does not change when the overlay is gossip-maintained.
        Merging in the parent shares no storage with the shared value
        segment, so it is ``sync()``-safe and overlaps a pipelined
        value cycle still in flight on the workers for free. The
        greedy-segmented vectorized path keeps the matrix
        bitwise-identical across backends and worker counts."""
        self._ensure_vector().apply_view_exchanges(views, exch_i, exch_j)

    # -- the backend contract ---------------------------------------------

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the sharded backend does not support exchange tracing; "
                "use backend='reference'"
            )
        def fallback() -> None:
            started = time.perf_counter()
            self._ensure_vector().apply_exchanges(
                matrix, functions, exch_i, exch_j, cycle=cycle
            )
            self.phase_seconds["apply"] += time.perf_counter() - started

        if self._inline or self._degraded or (
            not self._adopted and self._inline_eligible(matrix.shape[0])
        ):
            fallback()
            return
        self._apply(matrix, functions, exch_i, exch_j, None, self._chunk,
                    fallback)

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        chunk: Optional[int] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the sharded backend does not support exchange tracing; "
                "use backend='reference'"
            )
        def fallback() -> None:
            started = time.perf_counter()
            self._ensure_vector().apply_pairs(
                matrix, functions, pairs_i, pairs_j,
                plan=plan, chunk=chunk, cycle=cycle,
            )
            self.phase_seconds["apply"] += time.perf_counter() - started

        if self._inline or self._degraded or (
            not self._adopted and self._inline_eligible(matrix.shape[0])
        ):
            fallback()
            return
        window = self._chunk if chunk is None else resolve_chunk(chunk)
        self._apply(matrix, functions, pairs_i, pairs_j, plan, window,
                    fallback)

    def _apply(self, matrix, functions, raw_i, raw_j, plan, window,
               fallback) -> None:
        planned = time.perf_counter()
        pending_i = np.ascontiguousarray(raw_i, dtype=np.int32)
        pending_j = np.ascontiguousarray(raw_j, dtype=np.int32)
        m = len(pending_i)
        if m == 0:
            return
        healing = self._on_failure != "raise"
        borrowed = matrix is not self._view
        if borrowed:
            if self._adopted:
                # an engine owns this backend's segment; staging a
                # different matrix would overwrite (or desync) the
                # engine's live state — direct use needs its own backend
                raise SimulationError(
                    "this ShardedBackend is adopted by an engine; "
                    "create a separate backend for direct apply calls"
                )
            # direct use outside an engine (tests, ad-hoc callers):
            # stage the caller's matrix in shared memory for this call
            rows, k = matrix.shape
            if (
                self._view is None
                or self._view.shape != (rows, k)
                or self._steps_cap < m
            ):
                self._map(rows, k, steps_cap=max(rows, m))
            self.sync()
            self._view[:] = matrix
        elif m > self._steps_cap:  # pragma: no cover - engine sizes it
            # remapping here would desync the engine (its matrix still
            # views the old segment and only the engine can re-adopt);
            # adopt_matrix sizes steps_cap = rows and every engine path
            # emits <= rows steps per call, so this is a contract bug
            raise SimulationError(
                f"sharded backend got {m} steps for a step buffer of "
                f"{self._steps_cap} — the adopted matrix must be "
                f"re-adopted (engine hand-off) before applying more "
                f"steps than rows"
            )
        if healing:
            # serialize the pipeline to at most one schedule in
            # flight: the journal then describes exactly the work a
            # dead pool owes. The _map/sync above may already have
            # recovered by degrading — route this call inline then.
            self.sync()
            if self._degraded:
                fallback()
                return
        call_index = self._apply_calls
        self._apply_calls += 1
        while True:
            try:
                self._ensure_functions(functions)
                bank = self._next_bank
                # two-phase bank handoff, phase one: this bank's
                # previous schedule must be acknowledged before its
                # buffers are reused (phase two is the publish below).
                # The *other* bank may still be in flight — that is
                # the overlap. Time the wait as "sync", not "plan":
                # it is worker-apply latency, not parent CPU.
                drain_started = time.perf_counter()
                self._drain_bank(bank)
                drain_seconds = time.perf_counter() - drain_started
                self.phase_seconds["sync"] += drain_seconds
                segments = self._schedule(
                    pending_i, pending_j, plan, window, bank
                )
                self.phase_seconds["plan"] += (
                    time.perf_counter() - planned - drain_seconds
                )
                if healing:
                    self._journal_schedule(bank, segments,
                                           tuple(functions))
                self._fire_faults(bank, call_index)
                self._broadcast(("apply", bank, segments))
                if self._pipelined:
                    self._inflight.append(bank)
                    self._next_bank = bank ^ 1
                    if borrowed:
                        # direct use has no engine to call sync()
                        # before its reads — drain in-call and hand
                        # the result back
                        self.sync()
                        np.copyto(matrix, self._view)
                    return
                step_i, step_j = self._banks[bank]
                for start, end, kind in segments:
                    if kind == _SEQUENTIAL:
                        applied = time.perf_counter()
                        apply_sequential(
                            self._view, functions,
                            step_i[start:end], step_j[start:end],
                        )
                        self.phase_seconds["apply"] += (
                            time.perf_counter() - applied
                        )
                    self._wait()
                self._journal_pending = False
                if borrowed:
                    np.copyto(matrix, self._view)
                return
            except _PoolFailure as failure:
                if self._recover(failure):
                    # the journaled schedule was replayed inline:
                    # this call's work is complete
                    if borrowed:
                        np.copyto(matrix, self._view)
                    return
                if self._degraded:
                    # the failure hit before this schedule was
                    # journaled — nothing was lost; apply in-process
                    fallback()
                    return
                # pool respawned with nothing published: retry
                planned = time.perf_counter()

    # -- the planner ------------------------------------------------------

    def _planner_scratch(self, rows: int, window: int):
        if self._position is None or len(self._position) < rows:
            self._position = np.empty(rows, dtype=np.int32)
        if self._flat is None or len(self._flat) < 2 * window:
            self._flat = np.empty(2 * window, dtype=np.int32)
            self._slots = np.arange(2 * window, dtype=np.int32)
        return self._position, self._flat, self._slots

    def _schedule(
        self,
        pending_i: np.ndarray,
        pending_j: np.ndarray,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]],
        window: int,
        bank: int,
    ) -> List[Segment]:
        """Rewrite the step sequence into execution order in ``bank``'s
        shared step buffers and describe it as ``(start, end, kind)``
        segments.

        The order is exactly the one the in-process greedy execution
        applies (:func:`~.base.iter_greedy_segments`), so the result is
        bitwise-equal to the sequential oracle; only *who* applies each
        stretch — and, pipelined, *when* — differs.
        """
        out_i, out_j = self._banks[bank]
        position, flat, slots = self._planner_scratch(
            self._view.shape[0], window
        )
        segments: List[Segment] = []
        cursor = 0
        if plan is None:
            plan = ((0, len(pending_i), False),)
        for start, end, conflict_free in plan:
            if end <= start:
                continue
            if conflict_free:
                size = end - start
                out_i[cursor:cursor + size] = pending_i[start:end]
                out_j[cursor:cursor + size] = pending_j[start:end]
                segments.append((cursor, cursor + size, _BATCH))
                cursor += size
                continue
            for kind, chunk_i, chunk_j in iter_greedy_segments(
                pending_i[start:end], pending_j[start:end],
                position, flat, slots, window, SHARD_TAIL,
            ):
                size = len(chunk_i)
                out_i[cursor:cursor + size] = chunk_i
                out_j[cursor:cursor + size] = chunk_j
                segments.append((cursor, cursor + size, kind))
                cursor += size
        return segments

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "pipelined" if self._pipelined else "barrier"
        return f"ShardedBackend(workers={self.workers}, {mode})"
