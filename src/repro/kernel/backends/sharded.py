"""The multi-process scale path: shared-memory sharded execution.

At N = 10⁶ a cycle is a long sequence of gather/combine/scatter passes
over an ~8 MB-per-column value matrix with random int32 indices —
memory-bound work that one core's load/store ports serialize.
:class:`ShardedBackend` splits that work across a persistent pool of
worker processes:

* **Storage.** The value matrix lives in one
  :mod:`multiprocessing.shared_memory` segment (plus two int32 step
  buffers carved from the same segment). The engine hands its matrix
  over through :meth:`~.base.ExecutionBackend.adopt_matrix` and works
  on the shared view from then on, so churn admissions, epoch reseeds
  and crash recycling are ordinary in-place writes that every worker
  sees — zero per-cycle copying. Capacity growth re-adopts (the engine
  already grows geometrically, so remaps are O(log) per run).

* **Scheduling.** The parent computes the *schedule* for each call up
  front — the same chunked first-occurrence greedy segmentation the
  vectorized backend uses, but as a pure plan: steps are rewritten into
  execution order in the shared step buffers and described as a list of
  ``(start, end, kind)`` segments. Conflict-free plan segments from
  pair mode (PM's matching halves) become single batch segments with no
  scan at all. Segmentation depends only on indices, never on values,
  which is what makes plan-then-execute possible.

* **Execution.** Each *batch* segment is node-disjoint, so **any**
  partition of its steps is race-free; every worker takes an equal
  contiguous slice and applies it through the shared ``combine_array``
  IEEE path, gathering and scattering both endpoints directly in the
  shared segment (the degenerate boundary-batch exchange: the int32
  index + float64 value blocks travel through shared memory instead of
  a socket). A barrier between segments enforces the global order.
  *Sequential* segments (the conflicted window tails) are applied by
  the parent in step order while the workers hold at the barrier.

  Slicing each batch — rather than assigning steps by the row-shard of
  their initiator — is deliberate: exchange-mode initiators arrive
  sorted, so a greedy window's initiators span one narrow row range
  and row-ownership would hand the whole window to a single worker.
  Contiguous slices keep that locality (a slice of a sorted window *is*
  a row range) while balancing the work exactly.

The result is **bitwise identical** to the sequential reference
execution for the same reason the vectorized backend is: the schedule
preserves per-node step order, disjoint steps commute exactly, and
``combine_array`` matches scalar ``combine`` bit for bit.

Workers never draw randomness and never see the overlay (CSR partner
draws stay engine-side), so backend swaps keep the engine's RNG stream
untouched. The pool is spawned lazily on first use — fork where the
platform has it, spawn otherwise — and torn down by
:meth:`ShardedBackend.close` (also hooked to garbage collection, and
workers are daemonic as a last resort).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import traceback
import weakref
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.aggregates import AggregateFunction
from ...errors import ConfigurationError, SimulationError
from .base import (
    ExecutionBackend,
    apply_disjoint_batch,
    apply_sequential,
    first_occurrence_ready,
    resolve_chunk,
)

#: default greedy-segmentation window for the sharded backend. Larger
#: than the in-process :data:`~.base.PAIR_CHUNK`: every peeled batch
#: costs one pool barrier, so the window is sized for few, fat batches
#: (at N = 10⁶ a 64k window peels in 2–3 batches) rather than
#: cache-resident scans. Tunable via ``REPRO_SHARD_CHUNK``.
SHARD_CHUNK = 65536

#: sequential-tail threshold for the sharded planner — larger than the
#: in-process :data:`~.base.GREEDY_TAIL` because here a batch costs a
#: barrier round-trip on top of the first-occurrence scan.
SHARD_TAIL = 192

#: default seconds a barrier wait may block before the pool is declared
#: dead (override via ``REPRO_SHARD_TIMEOUT``)
_DEFAULT_TIMEOUT = 120.0


def _barrier_timeout() -> float:
    """The pool liveness timeout, resolved at backend construction so a
    malformed ``REPRO_SHARD_TIMEOUT`` raises a typed error from the
    component that uses it, not an import-time crash."""
    env = os.environ.get("REPRO_SHARD_TIMEOUT", "").strip()
    if not env:
        return _DEFAULT_TIMEOUT
    try:
        value = float(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SHARD_TIMEOUT must be a number of seconds, got {env!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"REPRO_SHARD_TIMEOUT must be positive, got {value}"
        )
    return value

#: segment kinds in a schedule
_BATCH = 0
_SEQUENTIAL = 1

Segment = Tuple[int, int, int]


def default_workers() -> int:
    """Worker count when none is requested: one per core, capped — the
    exchange path saturates memory bandwidth before it runs out of
    arithmetic, so very wide pools only add barrier traffic."""
    return max(1, min(8, os.cpu_count() or 1))


def _carve(
    shm: shared_memory.SharedMemory, rows: int, k: int, steps_cap: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three views carved from one shared segment: the ``(rows, k)``
    float64 value matrix followed by two int32 step buffers."""
    matrix_bytes = rows * k * 8
    view = np.ndarray((rows, k), dtype=np.float64, buffer=shm.buf)
    step_i = np.ndarray(
        (steps_cap,), dtype=np.int32, buffer=shm.buf, offset=matrix_bytes
    )
    step_j = np.ndarray(
        (steps_cap,), dtype=np.int32, buffer=shm.buf,
        offset=matrix_bytes + steps_cap * 4,
    )
    return view, step_i, step_j


def _worker_slice(start: int, end: int, index: int, workers: int) -> slice:
    """Worker ``index``'s contiguous slice of a batch segment."""
    span = end - start
    base, remainder = divmod(span, workers)
    lo = start + index * base + min(index, remainder)
    return slice(lo, lo + base + (1 if index < remainder else 0))


def _worker_main(
    conn, barrier, index: int, workers: int, timeout: float
) -> None:
    """Worker loop: remap / functions / apply / quit commands."""
    shm: Optional[shared_memory.SharedMemory] = None
    view = step_i = step_j = None
    functions: Tuple[AggregateFunction, ...] = ()
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "quit":
                break
            if command == "remap":
                _, name, rows, k, steps_cap = message
                view = step_i = step_j = None
                if shm is not None:
                    shm.close()
                # NOTE: attaching registers the name with the resource
                # tracker again (bpo-38119), but parent and workers
                # share one tracker process, whose name set dedups the
                # double registration; the parent's unlink clears it.
                shm = shared_memory.SharedMemory(name=name)
                view, step_i, step_j = _carve(shm, rows, k, steps_cap)
                # the parent keeps the *previous* segment linked until
                # every worker has confirmed the switch (attaching a
                # name that a faster remap already unlinked would fail)
                conn.send(("remapped", name))
            elif command == "functions":
                functions = message[1]
            elif command == "apply":
                for start, end, kind in message[1]:
                    if kind == _BATCH:
                        sl = _worker_slice(start, end, index, workers)
                        apply_disjoint_batch(
                            view, functions, step_i[sl], step_j[sl]
                        )
                    barrier.wait(timeout)
    except (EOFError, KeyboardInterrupt):
        # the parent closed the command pipe (shutdown) — exit quietly
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
        barrier.abort()
    finally:
        view = step_i = step_j = None
        if shm is not None:
            shm.close()


def _unlink(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def _stop_pool(procs, pipes) -> None:
    """Stop the worker processes and close the command pipes."""
    for pipe in pipes:
        try:
            pipe.send(("quit",))
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - crash path
            proc.terminate()
            proc.join(timeout=5)
    for pipe in pipes:
        try:
            pipe.close()
        except OSError:
            pass
    procs.clear()
    pipes.clear()


def _shutdown(procs, pipes, shm_holder, parked) -> None:
    """Full teardown; module-level so ``weakref.finalize`` holds no
    reference back to the backend.

    Closing a segment unmaps it even while numpy views exist (numpy's
    ``buffer=`` interface holds no buffer export), so this must only
    run when no live view can still be read: the orderly path detaches
    the engine's matrix first (:meth:`ExecutionBackend.release_matrix`),
    and the GC path implies the engine is unreachable.
    """
    _stop_pool(procs, pipes)
    for shm in shm_holder + parked:
        _unlink(shm)
        shm.close()
    shm_holder.clear()
    parked.clear()


class ShardedBackend(ExecutionBackend):
    """Shared-memory multi-process execution — the million-node path."""

    name = "sharded"

    def __init__(
        self, workers: Optional[int] = None, *, chunk: Optional[int] = None
    ):
        if workers is None:
            workers = default_workers()
        if (
            isinstance(workers, bool)
            or not isinstance(workers, (int, np.integer))
            or workers < 1
        ):
            raise ConfigurationError(
                f"sharded worker count must be a positive integer, "
                f"got {workers!r}"
            )
        self.workers = int(workers)
        self._chunk = resolve_chunk(
            chunk, env_var="REPRO_SHARD_CHUNK", default=SHARD_CHUNK
        )
        self._timeout = _barrier_timeout()
        # fork only where it is actually safe: macOS has fork available
        # but CPython switched its default to spawn for a reason (forked
        # children inherit Objective-C/Accelerate state and can abort in
        # the first BLAS call). The worker entry point is module-level
        # and all state travels over the pipes, so spawn works anywhere.
        start_method = (
            "fork"
            if sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(start_method)
        self._procs: List = []
        self._pipes: List = []
        self._barrier = None
        # current segment (held in a one-element list so the finalizer
        # can see replacements) + parked segments: the most recent
        # superseded segment (and any failure-orphaned one) whose
        # parent-side mapping is kept open because a stale numpy view
        # (an old engine matrix mid-remap, a matrix read after a pool
        # failure) would otherwise dangle — numpy's ``buffer=`` holds
        # no export, so closing unmaps unconditionally. Names are
        # unlinked eagerly; each remap releases the generation before
        # last (no older view can be live once the engine re-adopted),
        # so at most previous + current stay mapped (≈ 2x the live
        # segment), freed entirely at close()/GC.
        self._shm_holder: List[shared_memory.SharedMemory] = []
        self._parked: List[shared_memory.SharedMemory] = []
        self._view: Optional[np.ndarray] = None
        self._step_i: Optional[np.ndarray] = None
        self._step_j: Optional[np.ndarray] = None
        self._steps_cap = 0
        self._adopted = False
        self._sent_functions: Optional[Tuple] = None
        # planner scratch (parent-side greedy segmentation)
        self._position: Optional[np.ndarray] = None
        self._flat: Optional[np.ndarray] = None
        self._slots: Optional[np.ndarray] = None
        self._finalizer = weakref.finalize(
            self, _shutdown,
            self._procs, self._pipes, self._shm_holder, self._parked,
        )

    # -- lifecycle --------------------------------------------------------

    @property
    def active_workers(self) -> int:
        """Live worker processes (0 before first use / after close)."""
        return sum(1 for proc in self._procs if proc.is_alive())

    def release_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """A heap copy of the shared view, safe to read after
        :meth:`close` (see the base-class contract)."""
        if matrix is self._view:
            return matrix.copy()
        return matrix

    def close(self) -> None:
        """Shut the worker pool down and release the shared segments.

        Callers reading the matrix afterwards must hold the detached
        copy from :meth:`release_matrix` (engines do this in
        ``GossipEngine.close``), not a view into the segment.
        """
        self._view = self._step_i = self._step_j = None
        self._steps_cap = 0
        self._adopted = False
        self._sent_functions = None
        self._barrier = None
        if self._finalizer.alive:
            self._finalizer()
        self._finalizer = weakref.finalize(
            self, _shutdown,
            self._procs, self._pipes, self._shm_holder, self._parked,
        )

    def _abort(self) -> str:
        """Tear the pool down after a failure, *parking* the segments:
        the caller's engine may still read its matrix view before (or
        instead of) an orderly close. Returns worker diagnostics."""
        detail = self._pool_error()
        _stop_pool(self._procs, self._pipes)
        for shm in self._shm_holder:
            _unlink(shm)
            self._parked.append(shm)
        self._shm_holder.clear()
        self._barrier = None
        self._sent_functions = None
        return detail

    def _ensure_pool(self) -> None:
        if self._procs:
            return
        # make sure the resource-tracker process exists *before* the
        # workers fork, so they inherit its pipe and share it: a worker
        # that forks tracker-less would lazily spawn a private tracker
        # on its first segment attach and warn about "leaked" segments
        # it does not own at exit
        try:  # pragma: no cover - interpreter plumbing
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._barrier = self._ctx.Barrier(self.workers + 1)
        for index in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._barrier, index, self.workers,
                      self._timeout),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)

    def _broadcast(self, message) -> None:
        try:
            for pipe in self._pipes:
                pipe.send(message)
        except OSError as error:
            # a dead worker (OOM kill, crash) broke the pipe: surface
            # its diagnostics and stop the survivors — they would
            # otherwise sit blocked on recv() until close/GC
            detail = self._abort()
            raise SimulationError(
                f"sharded backend lost a worker ({error}):\n{detail}"
            ) from error
        except (pickle.PicklingError, AttributeError, TypeError,
                ValueError) as error:
            raise SimulationError(
                f"sharded backend could not serialize a command "
                f"({error}); unpicklable aggregate functions are the "
                f"usual cause — use module-level AggregateFunction "
                f"classes with the sharded backend"
            ) from error

    def _pool_error(self) -> str:
        reports = []
        for index, pipe in enumerate(self._pipes):
            try:
                while pipe.poll():
                    message = pipe.recv()
                    if message and message[0] == "error":
                        reports.append(
                            f"worker {index}:\n{message[1]}"
                        )
            except (EOFError, OSError):
                reports.append(f"worker {index}: exited")
        return "\n".join(reports) or "no worker diagnostics available"

    def _wait(self) -> None:
        try:
            self._barrier.wait(self._timeout)
        except Exception:
            detail = self._abort()
            raise SimulationError(
                f"sharded backend worker pool failed:\n{detail}"
            ) from None

    def _await_acks(self, expected: str) -> None:
        """One confirmation message from every worker, in pool order."""
        for index, pipe in enumerate(self._pipes):
            failure = None
            try:
                if pipe.poll(self._timeout):
                    message = pipe.recv()
                    if message and message[0] == expected:
                        continue
                    failure = (
                        message[1] if message and message[0] == "error"
                        else f"unexpected reply {message!r}"
                    )
                else:
                    failure = f"no {expected!r} reply within timeout"
            except (EOFError, OSError):
                failure = "exited"
            detail = f"worker {index}: {failure}\n{self._abort()}"
            raise SimulationError(
                f"sharded backend worker pool failed:\n{detail}"
            )

    # -- shared-memory mapping --------------------------------------------

    def _map(self, rows: int, k: int, steps_cap: int) -> None:
        """(Re)create the shared segment and switch the pool over."""
        self._ensure_pool()
        nbytes = max(rows * k * 8 + steps_cap * 8, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        view, step_i, step_j = _carve(shm, rows, k, steps_cap)
        previous = list(self._shm_holder)
        self._shm_holder.clear()
        self._shm_holder.append(shm)
        self._view, self._step_i, self._step_j = view, step_i, step_j
        self._steps_cap = steps_cap
        # park the previous generation *before* the remap round-trip so
        # a failure mid-remap leaves it reachable for close()/_shutdown
        # (its name is still linked at this point; _unlink is tolerant)
        older = list(self._parked)
        self._parked.extend(previous)
        self._broadcast(("remap", shm.name, rows, k, steps_cap))
        # wait until every worker confirms it attached the new segment:
        # unlinking the previous name before a slow worker processed an
        # *earlier* remap command would make that attach fail
        self._await_acks("remapped")
        # grandparent generations can go: the engine re-adopted the
        # *previous* segment's replacement synchronously, so no live
        # view of anything older can remain (keeping them all would
        # grow linearly with epoch instance-count rebuilds, which remap
        # on nearly every epoch of the Figure 4 workload). The previous
        # segment keeps its parent-side mapping — an engine matrix may
        # still view it until re-adoption lands — but loses its name
        # (workers closed their mappings on remap).
        for stale in older:
            stale.close()
        for old in previous:
            _unlink(old)
        self._parked[:] = previous

    def adopt_matrix(self, matrix: np.ndarray) -> np.ndarray:
        source = np.ascontiguousarray(matrix, dtype=np.float64)
        rows, k = source.shape
        self._map(rows, k, steps_cap=max(rows, 1))
        self._view[:] = source
        self._adopted = True
        return self._view

    def _ensure_functions(
        self, functions: Sequence[AggregateFunction]
    ) -> None:
        if functions is self._sent_functions:
            return
        payload = tuple(functions)
        self._broadcast(("functions", payload))
        self._sent_functions = functions

    # -- the backend contract ---------------------------------------------

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the sharded backend does not support exchange tracing; "
                "use backend='reference'"
            )
        self._apply(matrix, functions, exch_i, exch_j, None, self._chunk)

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        chunk: Optional[int] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the sharded backend does not support exchange tracing; "
                "use backend='reference'"
            )
        window = self._chunk if chunk is None else resolve_chunk(chunk)
        self._apply(matrix, functions, pairs_i, pairs_j, plan, window)

    def _apply(self, matrix, functions, raw_i, raw_j, plan, window) -> None:
        pending_i = np.ascontiguousarray(raw_i, dtype=np.int32)
        pending_j = np.ascontiguousarray(raw_j, dtype=np.int32)
        m = len(pending_i)
        if m == 0:
            return
        borrowed = matrix is not self._view
        if borrowed:
            if self._adopted:
                # an engine owns this backend's segment; staging a
                # different matrix would overwrite (or desync) the
                # engine's live state — direct use needs its own backend
                raise SimulationError(
                    "this ShardedBackend is adopted by an engine; "
                    "create a separate backend for direct apply calls"
                )
            # direct use outside an engine (tests, ad-hoc callers):
            # stage the caller's matrix in shared memory for this call
            rows, k = matrix.shape
            if (
                self._view is None
                or self._view.shape != (rows, k)
                or self._steps_cap < m
            ):
                self._map(rows, k, steps_cap=max(rows, m))
            self._view[:] = matrix
        elif m > self._steps_cap:  # pragma: no cover - engine sizes it
            # remapping here would desync the engine (its matrix still
            # views the old segment and only the engine can re-adopt);
            # adopt_matrix sizes steps_cap = rows and every engine path
            # emits <= rows steps per call, so this is a contract bug
            raise SimulationError(
                f"sharded backend got {m} steps for a step buffer of "
                f"{self._steps_cap} — the adopted matrix must be "
                f"re-adopted (engine hand-off) before applying more "
                f"steps than rows"
            )
        self._ensure_functions(functions)
        segments = self._schedule(pending_i, pending_j, plan, window)
        self._broadcast(("apply", segments))
        for start, end, kind in segments:
            if kind == _SEQUENTIAL:
                apply_sequential(
                    self._view, functions,
                    self._step_i[start:end], self._step_j[start:end],
                )
            self._wait()
        if borrowed:
            np.copyto(matrix, self._view)

    # -- the planner ------------------------------------------------------

    def _planner_scratch(self, rows: int, window: int):
        if self._position is None or len(self._position) < rows:
            self._position = np.empty(rows, dtype=np.int32)
        if self._flat is None or len(self._flat) < 2 * window:
            self._flat = np.empty(2 * window, dtype=np.int32)
            self._slots = np.arange(2 * window, dtype=np.int32)
        return self._position, self._flat, self._slots

    def _schedule(
        self,
        pending_i: np.ndarray,
        pending_j: np.ndarray,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]],
        window: int,
    ) -> List[Segment]:
        """Rewrite the step sequence into execution order in the shared
        step buffers and describe it as ``(start, end, kind)`` segments.

        The order is exactly the one the in-process greedy execution
        would apply, so the result is bitwise-equal to the sequential
        oracle; only *who* applies each stretch differs.
        """
        out_i, out_j = self._step_i, self._step_j
        position, flat, slots = self._planner_scratch(
            self._view.shape[0], window
        )
        segments: List[Segment] = []
        cursor = 0
        if plan is None:
            plan = ((0, len(pending_i), False),)
        for start, end, conflict_free in plan:
            if end <= start:
                continue
            if conflict_free:
                size = end - start
                out_i[cursor:cursor + size] = pending_i[start:end]
                out_j[cursor:cursor + size] = pending_j[start:end]
                segments.append((cursor, cursor + size, _BATCH))
                cursor += size
                continue
            for lo in range(start, end, window):
                hi = min(lo + window, end)
                chunk_i = pending_i[lo:hi]
                chunk_j = pending_j[lo:hi]
                while True:
                    size = len(chunk_i)
                    if size <= SHARD_TAIL:
                        if size:
                            out_i[cursor:cursor + size] = chunk_i
                            out_j[cursor:cursor + size] = chunk_j
                            segments.append(
                                (cursor, cursor + size, _SEQUENTIAL)
                            )
                            cursor += size
                        break
                    ready = first_occurrence_ready(
                        chunk_i, chunk_j, position, flat, slots
                    )
                    if ready.all():
                        out_i[cursor:cursor + size] = chunk_i
                        out_j[cursor:cursor + size] = chunk_j
                        segments.append((cursor, cursor + size, _BATCH))
                        cursor += size
                        break
                    batch_i = chunk_i[ready]
                    batch_size = len(batch_i)
                    out_i[cursor:cursor + batch_size] = batch_i
                    out_j[cursor:cursor + batch_size] = chunk_j[ready]
                    segments.append((cursor, cursor + batch_size, _BATCH))
                    cursor += batch_size
                    keep = ~ready
                    chunk_i = chunk_i[keep]
                    chunk_j = chunk_j[keep]
        return segments

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardedBackend(workers={self.workers})"
