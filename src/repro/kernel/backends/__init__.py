"""Pluggable execution backends for the gossip kernel.

Three implementations behind one contract (see :mod:`.base`):

* :class:`ReferenceBackend` — the semantic oracle: a plain sequential
  Python loop in exchange order.
* :class:`VectorizedBackend` — the single-process scale path: numpy
  structure-of-arrays conflict-free batches.
* :class:`ShardedBackend` — the multi-process scale path: the value
  matrix in :mod:`multiprocessing.shared_memory`, a persistent worker
  pool applying parent-published schedules, pipelined so the parent
  plans cycle ``t+1`` while the workers apply cycle ``t``.

All three are **bitwise identical** on the same engine inputs; the
cross-backend equivalence suites assert it. Specs (``"sharded:4"``,
``"sharded:auto"``) are parsed by :func:`parse_backend_spec` / built
by :func:`make_backend` in :mod:`.registry`.
"""

from .base import (
    GREEDY_TAIL,
    PAIR_CHUNK,
    SEGMENT_BATCH,
    SEGMENT_SEQUENTIAL,
    ExecutionBackend,
    apply_disjoint_batch,
    apply_sequential,
    first_occurrence_ready,
    iter_greedy_segments,
    resolve_chunk,
)
from .reference import ReferenceBackend
from .registry import (
    BACKEND_FORMS,
    BACKEND_NAMES,
    make_backend,
    parse_backend_spec,
)
from .sharded import (
    POOL_FAILURE_MODES,
    SHARD_CHUNK,
    SHARD_INLINE,
    SHARD_TAIL,
    PoolHealthReport,
    ShardedBackend,
    default_workers,
)
from .vectorized import VectorizedBackend

__all__ = [
    "BACKEND_FORMS",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "GREEDY_TAIL",
    "PAIR_CHUNK",
    "POOL_FAILURE_MODES",
    "PoolHealthReport",
    "ReferenceBackend",
    "SEGMENT_BATCH",
    "SEGMENT_SEQUENTIAL",
    "SHARD_CHUNK",
    "SHARD_INLINE",
    "SHARD_TAIL",
    "ShardedBackend",
    "VectorizedBackend",
    "apply_disjoint_batch",
    "apply_sequential",
    "default_workers",
    "first_occurrence_ready",
    "iter_greedy_segments",
    "make_backend",
    "parse_backend_spec",
    "resolve_chunk",
]
