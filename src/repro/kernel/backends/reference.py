"""The sequential semantic oracle."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...core.aggregates import AggregateFunction, MeanAggregate
from ...errors import SimulationError
from .base import ExecutionBackend


class ReferenceBackend(ExecutionBackend):
    """Sequential exchange-order execution — the semantic oracle: a
    plain Python loop in exchange order, structurally the same code the
    original ``CycleSimulator`` ran. Kept honest and simple.

    Newscast view exchanges use the base-class
    :meth:`~.base.ExecutionBackend.apply_view_exchanges` unchanged —
    the one-merge-at-a-time step-order loop *is* the reference
    semantics the batched backends are checked against."""

    name = "reference"

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if len(exch_i) == 0:
            return
        pairs = zip(exch_i.tolist(), exch_j.tolist())
        k = matrix.shape[1]
        if k == 1:
            values = matrix[:, 0].tolist()
            function = functions[0]
            if isinstance(function, MeanAggregate) and trace is None:
                # tight AGGREGATE_AVG path: list indexing beats numpy
                # scalar indexing by ~5x in the sequential loop
                for i, j in pairs:
                    midpoint = (values[i] + values[j]) * 0.5
                    values[i] = midpoint
                    values[j] = midpoint
            else:
                combine = function.combine
                for i, j in pairs:
                    before_i, before_j = values[i], values[j]
                    combined = combine(before_i, before_j)
                    values[i] = combined
                    values[j] = combined
                    if trace is not None:
                        trace.record(
                            float(cycle), i, j, before_i, before_j, combined
                        )
            matrix[:, 0] = values
            return
        if trace is not None:
            raise SimulationError(
                "exchange tracing supports single-instance runs only"
            )
        columns = [matrix[:, c].tolist() for c in range(k)]
        combines = [function.combine for function in functions]
        for i, j in pairs:
            for column, combine in zip(columns, combines):
                combined = combine(column[i], column[j])
                column[i] = combined
                column[j] = combined
        for c, column in enumerate(columns):
            matrix[:, c] = column
