"""Backend name resolution: specs, validation, instantiation.

A backend *spec* is the string a :class:`~repro.kernel.scenario.Scenario`
(or ``--backend`` on the CLI) carries:

* ``"auto"`` — pick by network size (resolved by
  :meth:`Scenario.resolve_backend`, never by :func:`make_backend`);
* ``"reference"`` — the sequential semantic oracle;
* ``"vectorized"`` — single-process numpy batched execution;
* ``"sharded"`` — multi-process shared-memory execution with the
  default worker count (one per schedulable core, capped at 8);
* ``"sharded:<workers>"`` — same with an explicit worker count;
* ``"sharded:auto"`` — affinity-resolved worker count plus the
  small-matrix inline fallback (never slower than ``vectorized`` at
  degenerate sizes).

Malformed or unknown specs raise :class:`~repro.errors.BackendSpecError`
carrying the list of valid forms, so callers (the CLI in particular)
can surface a complete message instead of a bare failure.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ...errors import BackendSpecError
from .base import ExecutionBackend
from .reference import ReferenceBackend
from .sharded import ShardedBackend
from .vectorized import VectorizedBackend

#: backend base names accepted by :attr:`Scenario.backend`
BACKEND_NAMES = ("auto", "reference", "vectorized", "sharded")

#: every accepted spelling, for error messages
BACKEND_FORMS = ("auto", "reference", "vectorized", "sharded",
                 "sharded:<workers>", "sharded:auto")


def parse_backend_spec(
    spec: str, *, allow_auto: bool = False
) -> Tuple[str, Optional[Union[int, str]]]:
    """Parse and validate a backend spec into ``(base, workers)``.

    ``workers`` is ``None`` except for an explicit ``sharded:<k>``
    (an int) or ``sharded:auto`` (the string ``"auto"``). Raises
    :class:`BackendSpecError` on anything else; ``allow_auto`` admits
    the ``"auto"`` placeholder (valid on a scenario, not for direct
    instantiation). A pre-built :class:`ExecutionBackend` instance
    passes through as ``(instance.name, None)`` — scenarios accept
    one where a spec string goes, which is how a specially configured
    backend (a self-healing pool, an armed fault harness) is handed
    to an engine.
    """
    if isinstance(spec, ExecutionBackend):
        return spec.name, None
    if not isinstance(spec, str):
        raise BackendSpecError(spec, valid=BACKEND_FORMS,
                               reason="spec must be a string")
    base, colon, argument = spec.partition(":")
    if base == "sharded":
        if not colon:
            return "sharded", None
        if argument == "auto":
            return "sharded", "auto"
        try:
            workers = int(argument)
        except ValueError:
            raise BackendSpecError(
                spec, valid=BACKEND_FORMS,
                reason=f"worker count {argument!r} is not an integer "
                       f"or 'auto'",
            ) from None
        if workers < 1:
            raise BackendSpecError(
                spec, valid=BACKEND_FORMS,
                reason=f"worker count must be >= 1, got {workers}",
            )
        return "sharded", workers
    if colon:
        raise BackendSpecError(
            spec, valid=BACKEND_FORMS,
            reason=f"backend {base!r} takes no ':<workers>' argument",
        )
    if base == "auto":
        if allow_auto:
            return "auto", None
        raise BackendSpecError(
            spec, valid=BACKEND_FORMS[1:],
            reason="'auto' must be resolved via Scenario.resolve_backend "
                   "before instantiation",
        )
    if base in ("reference", "vectorized"):
        return base, None
    raise BackendSpecError(spec, valid=BACKEND_FORMS)


def make_backend(name: Union[str, ExecutionBackend]) -> ExecutionBackend:
    """Instantiate a backend by concrete spec (not ``"auto"``; resolve
    that via :meth:`Scenario.resolve_backend` first). A pre-built
    backend instance is returned as-is."""
    if isinstance(name, ExecutionBackend):
        return name
    base, workers = parse_backend_spec(name)
    if base == "reference":
        return ReferenceBackend()
    if base == "vectorized":
        return VectorizedBackend()
    return ShardedBackend(workers=workers)
