"""Declarative node-lifecycle layer: churn and epoch restarts.

The paper's robustness story (§4, Figure 4) rests on two mechanisms
that change *who* participates over time:

* **churn** — nodes join and crash while the protocol runs; departing
  nodes take their approximation mass with them, joiners enter with a
  fresh value (0 for the counting instance, per §4's rule that nodes
  reached by a new instance "behave as if they had 0 as initial
  value");
* **epochs** — execution is divided into fixed-length epochs and the
  protocol restarts at every epoch boundary, which is what makes
  aggregation adaptive: each epoch converges to the network state at
  its own start, and nodes that joined mid-epoch wait for the next one.

Both are *declared* here and *executed* by the kernel:
:class:`ChurnSpec` and :class:`EpochSpec` attach to a
:class:`~repro.kernel.scenario.Scenario`, and
:class:`~repro.kernel.engine.GossipEngine` applies them as alive-mask
growth/shrink plus value-matrix row recycling — no per-epoch node
objects are ever rebuilt, which is why Figure 4 runs at N = 100 000 in
seconds on the vectorized backend. When sustained joins outgrow the
matrix, the engine grows capacity through the backend's
``grow_matrix`` hook (and rebuilds through ``allocate_matrix`` on
epoch instance-count changes), so storage-owning backends like
``sharded`` pay exactly one copy per geometric growth — there is no
intermediate heap matrix. All churn/epoch randomness is drawn by the
engine, never by an execution backend, so the reference and
vectorized backends stay bitwise-equivalent under any failure model
declared here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError
from ..failures.churn import ChurnModel

#: accepted :attr:`ChurnSpec.rejoin` policies
REJOIN_POLICIES = ("reset", "keep")


@dataclass(frozen=True)
class ChurnSpec:
    """How the kernel applies a :class:`~repro.failures.churn.ChurnModel`.

    Parameters
    ----------
    model:
        The declarative join/leave rates (``NoChurn``,
        ``ConstantRateChurn``, ``OscillatingChurn``, …). Queried once
        per cycle; departures are drawn uniformly among alive nodes by
        the engine.
    rejoin:
        Row-recycling policy when a joiner is assigned the slot of a
        departed node. ``"reset"`` (default) seeds the slot from
        ``join_values`` like any fresh slot; ``"keep"`` lets the joiner
        adopt the state the departed node left behind — the "rejoining
        node resumes where it left off" model.
    join_values:
        ``(count, rng) -> array`` producing initial values for joiners;
        a 1-D ``(count,)`` result is broadcast across all aggregation
        instances, a 2-D ``(count, k)`` result seeds each column.
        Defaults to zeros — the §4 rule for nodes that meet a running
        instance for the first time.
    """

    model: ChurnModel
    rejoin: str = "reset"
    join_values: Optional[
        Callable[[int, np.random.Generator], np.ndarray]
    ] = None

    def __post_init__(self) -> None:
        if not isinstance(self.model, ChurnModel):
            raise ConfigurationError(
                f"ChurnSpec.model must be a ChurnModel, got "
                f"{type(self.model).__name__}"
            )
        if self.rejoin not in REJOIN_POLICIES:
            raise ConfigurationError(
                f"unknown rejoin policy {self.rejoin!r}; expected one of "
                f"{REJOIN_POLICIES}"
            )


@dataclass(frozen=True)
class EpochRestart:
    """Context handed to :attr:`EpochSpec.reseed` at each epoch start.

    ``participants`` holds the slot ids of every alive node entering
    the epoch (in increasing slot order — the row order of the matrix
    the reseed function must return). ``previous`` is the tuple of
    finalize outputs from earlier epochs, which is how adaptive
    policies (e.g. §4's estimate-driven leader probability) see what
    the network actually knows rather than ground truth. ``rng`` is the
    engine's generator: all restart randomness comes from the same
    stream as the protocol's, keeping runs reproducible and
    backend-independent.
    """

    epoch: int
    cycle: int
    participants: np.ndarray
    rng: np.random.Generator
    previous: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class EpochView:
    """Converged end-of-epoch state handed to :attr:`EpochSpec.finalize`.

    ``matrix`` is the ``(m, k)`` value matrix restricted to the ``m``
    nodes that survived the epoch (a copy — safe to keep);
    ``participants`` are their slot ids. ``size_at_start`` is what the
    epoch's estimates describe (Figure 4's one-epoch lag);
    ``size_at_end`` is the alive count now, including mid-epoch joiners
    waiting for the next restart.
    """

    epoch: int
    start_cycle: int
    end_cycle: int
    size_at_start: int
    size_at_end: int
    participants: np.ndarray
    matrix: np.ndarray


@dataclass(frozen=True)
class EpochSpec:
    """Declarative epoch/restart machinery (§4).

    Parameters
    ----------
    cycles_per_epoch:
        Epoch length k, chosen from the §3 convergence rates so the
        protocol converges within an epoch (``rate**k`` below the
        target accuracy; see ``EpochSchedule.required_epoch_length``).
    reseed:
        Called at every epoch start with an :class:`EpochRestart`;
        returns the participants' restarted values as ``(m,)`` or
        ``(m, k_new)``. ``k_new`` may differ from the current instance
        count (Figure 4 elects a fresh leader set per epoch); when it
        does, every new column runs ``function``. ``None`` restarts
        each participant from its base attribute value — the plain §4
        "restart from the current local values" protocol.
    finalize:
        Called with an :class:`EpochView` when an epoch completes; a
        non-``None`` return value is appended to
        ``KernelRunResult.epoch_results``. Only *completed* epochs
        finalize — the paper publishes converged estimates at epoch
        ends, never mid-epoch state.
    function:
        The AGGREGATE applied to every column after a reseed that
        changes the instance count. Defaults to AGGREGATE_AVG.
    """

    cycles_per_epoch: int
    reseed: Optional[Callable[[EpochRestart], np.ndarray]] = None
    finalize: Optional[Callable[[EpochView], Any]] = None
    function: AggregateFunction = field(default_factory=MeanAggregate)

    def __post_init__(self) -> None:
        if self.cycles_per_epoch < 1:
            raise ConfigurationError(
                f"cycles_per_epoch must be >= 1, got {self.cycles_per_epoch}"
            )
        if not isinstance(self.function, AggregateFunction):
            raise ConfigurationError(
                f"EpochSpec.function must be an AggregateFunction, got "
                f"{type(self.function).__name__}"
            )
