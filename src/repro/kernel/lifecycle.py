"""Declarative node-lifecycle layer: churn and epoch restarts.

The paper's robustness story (§4, Figure 4) rests on two mechanisms
that change *who* participates over time:

* **churn** — nodes join and crash while the protocol runs; departing
  nodes take their approximation mass with them, joiners enter with a
  fresh value (0 for the counting instance, per §4's rule that nodes
  reached by a new instance "behave as if they had 0 as initial
  value");
* **epochs** — execution is divided into fixed-length epochs and the
  protocol restarts at every epoch boundary, which is what makes
  aggregation adaptive: each epoch converges to the network state at
  its own start, and nodes that joined mid-epoch wait for the next one.

Both are *declared* here and *executed* by the kernel:
:class:`ChurnSpec` and :class:`EpochSpec` attach to a
:class:`~repro.kernel.scenario.Scenario`, and
:class:`~repro.kernel.engine.GossipEngine` applies them as alive-mask
growth/shrink plus value-matrix row recycling — no per-epoch node
objects are ever rebuilt, which is why Figure 4 runs at N = 100 000 in
seconds on the vectorized backend. When sustained joins outgrow the
matrix, the engine grows capacity through the backend's
``grow_matrix`` hook (and rebuilds through ``allocate_matrix`` on
epoch instance-count changes), so storage-owning backends like
``sharded`` pay exactly one copy per geometric growth — there is no
intermediate heap matrix. All churn/epoch randomness is drawn by the
engine, never by an execution backend, so the reference and
vectorized backends stay bitwise-equivalent under any failure model
declared here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError
from ..failures.churn import ChurnModel, ChurnStep
from ..rng import SeedLike, make_rng

#: accepted :attr:`ChurnSpec.rejoin` policies
REJOIN_POLICIES = ("reset", "keep")


class ChurnTrace(ChurnModel):
    """Data-driven churn: per-cycle join/leave counts from a trace.

    Where ``ConstantRateChurn``/``OscillatingChurn`` *sample* lifecycle
    events from rates each cycle, a trace *replays* them: the model
    holds one join count and one leave count per cycle, precomputed
    from session data (per-node join/leave timestamps, session-length
    distributions) or from the scripted generators below. Past the end
    of the trace the network is quiescent. Plugs into the existing
    machinery unchanged — ``ChurnSpec(model=ChurnTrace(...))`` — so
    the engine's alive-mask growth/shrink, slot recycling and joiner
    seeding all run from data instead of Bernoulli draws.

    Generators: :meth:`from_events` (event timestamps),
    :meth:`from_sessions` (arrival cycle + session length per node),
    :meth:`sessions` (Poisson arrivals with geometric session
    lengths), :meth:`flash_crowd` (a mass join burst whose members
    leave as their sessions expire) and :meth:`diurnal` (a day/night
    size wave as data — the trace-driven counterpart of
    ``OscillatingChurn``).
    """

    def __init__(self, joins, leaves):
        joins = np.asarray(joins, dtype=np.int64)
        leaves = np.asarray(leaves, dtype=np.int64)
        if joins.ndim != 1 or leaves.ndim != 1:
            raise ConfigurationError(
                "ChurnTrace joins/leaves must be 1-D per-cycle counts"
            )
        if len(joins) != len(leaves):
            raise ConfigurationError(
                f"ChurnTrace joins ({len(joins)}) and leaves "
                f"({len(leaves)}) must cover the same cycles"
            )
        if len(joins) and (joins.min() < 0 or leaves.min() < 0):
            raise ConfigurationError(
                "ChurnTrace counts must be non-negative"
            )
        self._joins = joins
        self._leaves = leaves

    @property
    def cycles(self) -> int:
        """Cycles covered by the trace (quiescent afterwards)."""
        return len(self._joins)

    @property
    def joins(self) -> np.ndarray:
        return self._joins.copy()

    @property
    def leaves(self) -> np.ndarray:
        return self._leaves.copy()

    def step(self, cycle: int, current_size: int) -> ChurnStep:
        if cycle < 0 or cycle >= len(self._joins):
            return ChurnStep(0, 0)
        leaves = min(int(self._leaves[cycle]), max(current_size - 1, 0))
        return ChurnStep(int(self._joins[cycle]), leaves)

    # -- generators -------------------------------------------------------

    @classmethod
    def from_events(cls, join_cycles, leave_cycles, *,
                    cycles: Optional[int] = None) -> "ChurnTrace":
        """From raw event timestamps: one entry per join/leave event,
        in cycles (fractions are floored). Events at or past ``cycles``
        (default: just past the last event) are dropped — a session
        that outlives the trace simply never leaves."""
        join_cycles = np.floor(np.asarray(join_cycles, dtype=np.float64))
        leave_cycles = np.floor(np.asarray(leave_cycles, dtype=np.float64))
        if cycles is None:
            last = -1.0
            if len(join_cycles):
                last = max(last, join_cycles.max())
            if len(leave_cycles):
                last = max(last, leave_cycles.max())
            cycles = int(last) + 1 if last >= 0 else 0
        joins = np.zeros(cycles, dtype=np.int64)
        leaves = np.zeros(cycles, dtype=np.int64)
        for events, counts in ((join_cycles, joins), (leave_cycles, leaves)):
            kept = events[(events >= 0) & (events < cycles)].astype(np.int64)
            if len(kept):
                counts += np.bincount(kept, minlength=cycles)
        return cls(joins, leaves)

    @classmethod
    def from_sessions(cls, arrivals, durations, *,
                      cycles: Optional[int] = None) -> "ChurnTrace":
        """From per-node sessions: node ``i`` joins at ``arrivals[i]``
        and leaves ``durations[i]`` cycles later."""
        arrivals = np.asarray(arrivals, dtype=np.float64)
        durations = np.asarray(durations, dtype=np.float64)
        if arrivals.shape != durations.shape:
            raise ConfigurationError(
                "from_sessions needs one duration per arrival"
            )
        if len(durations) and durations.min() < 0:
            raise ConfigurationError("session durations must be >= 0")
        return cls.from_events(
            arrivals, arrivals + durations, cycles=cycles
        )

    @classmethod
    def sessions(cls, cycles: int, *, arrivals_per_cycle: float,
                 mean_session: float,
                 seed: SeedLike = None) -> "ChurnTrace":
        """A sampled session workload: Poisson(``arrivals_per_cycle``)
        joins per cycle, each session's length geometric with mean
        ``mean_session`` — the classic heavy-turnover P2P model. The
        sampling happens *here*, once; the resulting trace replays
        deterministically regardless of scenario seed or backend."""
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if arrivals_per_cycle < 0 or mean_session <= 0:
            raise ConfigurationError(
                "arrivals_per_cycle must be >= 0 and mean_session > 0"
            )
        rng = make_rng(seed)
        counts = rng.poisson(arrivals_per_cycle, size=cycles)
        arrivals = np.repeat(np.arange(cycles, dtype=np.float64), counts)
        durations = rng.geometric(
            min(1.0 / mean_session, 1.0), size=len(arrivals)
        ).astype(np.float64)
        return cls.from_sessions(arrivals, durations, cycles=cycles)

    @classmethod
    def flash_crowd(cls, cycles: int, *, at: int, size: int,
                    mean_stay: float,
                    seed: SeedLike = None) -> "ChurnTrace":
        """A flash crowd: ``size`` nodes join together at cycle ``at``
        and each stays a geometric number of cycles with mean
        ``mean_stay``, so the crowd decays exponentially after the
        burst. Stack with a base trace via :meth:`overlay`."""
        if not 0 <= at < cycles:
            raise ConfigurationError(
                f"flash-crowd cycle {at} outside trace of {cycles} cycles"
            )
        if size < 0 or mean_stay <= 0:
            raise ConfigurationError(
                "flash-crowd size must be >= 0 and mean_stay > 0"
            )
        rng = make_rng(seed)
        arrivals = np.full(size, float(at))
        durations = rng.geometric(
            min(1.0 / mean_stay, 1.0), size=size
        ).astype(np.float64)
        return cls.from_sessions(arrivals, durations, cycles=cycles)

    @classmethod
    def diurnal(cls, n: int, cycles: int, *, period: int,
                amplitude: int, fluctuation: int = 0,
                seed: SeedLike = None) -> "ChurnTrace":
        """A day/night wave as data: the network size follows
        ``n + amplitude * sin(2π cycle / period)`` with ``fluctuation``
        extra paired join/leave events per cycle (background turnover
        that keeps membership churning even at constant size). The
        trace-driven counterpart of
        :class:`~repro.failures.churn.OscillatingChurn`.
        """
        if cycles < 1 or period < 1:
            raise ConfigurationError("cycles and period must be >= 1")
        if amplitude < 0 or fluctuation < 0:
            raise ConfigurationError(
                "amplitude and fluctuation must be >= 0"
            )
        if amplitude >= n:
            raise ConfigurationError(
                f"amplitude {amplitude} would drive the size below zero"
            )
        targets = n + amplitude * np.sin(
            2.0 * np.pi * np.arange(1, cycles + 1) / period
        )
        targets = np.rint(targets).astype(np.int64)
        joins = np.zeros(cycles, dtype=np.int64)
        leaves = np.zeros(cycles, dtype=np.int64)
        size = n
        for cycle in range(cycles):
            delta = int(targets[cycle]) - size
            joins[cycle] = fluctuation + max(delta, 0)
            leaves[cycle] = fluctuation + max(-delta, 0)
            size = targets[cycle]
        return cls(joins, leaves)

    def overlay(self, other: "ChurnTrace") -> "ChurnTrace":
        """Superimpose another trace (e.g. a flash crowd on a diurnal
        base); the result covers the longer of the two."""
        cycles = max(self.cycles, other.cycles)
        joins = np.zeros(cycles, dtype=np.int64)
        leaves = np.zeros(cycles, dtype=np.int64)
        joins[: self.cycles] += self._joins
        leaves[: self.cycles] += self._leaves
        joins[: other.cycles] += other._joins
        leaves[: other.cycles] += other._leaves
        return ChurnTrace(joins, leaves)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChurnTrace(cycles={self.cycles}, "
            f"joins={int(self._joins.sum())}, "
            f"leaves={int(self._leaves.sum())})"
        )


@dataclass(frozen=True)
class ChurnSpec:
    """How the kernel applies a :class:`~repro.failures.churn.ChurnModel`.

    Parameters
    ----------
    model:
        The declarative join/leave rates (``NoChurn``,
        ``ConstantRateChurn``, ``OscillatingChurn``, …). Queried once
        per cycle; departures are drawn uniformly among alive nodes by
        the engine.
    rejoin:
        Row-recycling policy when a joiner is assigned the slot of a
        departed node. ``"reset"`` (default) seeds the slot from
        ``join_values`` like any fresh slot; ``"keep"`` lets the joiner
        adopt the state the departed node left behind — the "rejoining
        node resumes where it left off" model.
    join_values:
        ``(count, rng) -> array`` producing initial values for joiners;
        a 1-D ``(count,)`` result is broadcast across all aggregation
        instances, a 2-D ``(count, k)`` result seeds each column.
        Defaults to zeros — the §4 rule for nodes that meet a running
        instance for the first time.
    """

    model: ChurnModel
    rejoin: str = "reset"
    join_values: Optional[
        Callable[[int, np.random.Generator], np.ndarray]
    ] = None

    def __post_init__(self) -> None:
        if not isinstance(self.model, ChurnModel):
            raise ConfigurationError(
                f"ChurnSpec.model must be a ChurnModel, got "
                f"{type(self.model).__name__}"
            )
        if self.rejoin not in REJOIN_POLICIES:
            raise ConfigurationError(
                f"unknown rejoin policy {self.rejoin!r}; expected one of "
                f"{REJOIN_POLICIES}"
            )


@dataclass(frozen=True)
class EpochRestart:
    """Context handed to :attr:`EpochSpec.reseed` at each epoch start.

    ``participants`` holds the slot ids of every alive node entering
    the epoch (in increasing slot order — the row order of the matrix
    the reseed function must return). ``previous`` is the tuple of
    finalize outputs from earlier epochs, which is how adaptive
    policies (e.g. §4's estimate-driven leader probability) see what
    the network actually knows rather than ground truth. ``rng`` is the
    engine's generator: all restart randomness comes from the same
    stream as the protocol's, keeping runs reproducible and
    backend-independent.
    """

    epoch: int
    cycle: int
    participants: np.ndarray
    rng: np.random.Generator
    previous: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class EpochView:
    """Converged end-of-epoch state handed to :attr:`EpochSpec.finalize`.

    ``matrix`` is the ``(m, k)`` value matrix restricted to the ``m``
    nodes that survived the epoch (a copy — safe to keep);
    ``participants`` are their slot ids. ``size_at_start`` is what the
    epoch's estimates describe (Figure 4's one-epoch lag);
    ``size_at_end`` is the alive count now, including mid-epoch joiners
    waiting for the next restart.
    """

    epoch: int
    start_cycle: int
    end_cycle: int
    size_at_start: int
    size_at_end: int
    participants: np.ndarray
    matrix: np.ndarray


@dataclass(frozen=True)
class EpochSpec:
    """Declarative epoch/restart machinery (§4).

    Parameters
    ----------
    cycles_per_epoch:
        Epoch length k, chosen from the §3 convergence rates so the
        protocol converges within an epoch (``rate**k`` below the
        target accuracy; see ``EpochSchedule.required_epoch_length``).
    reseed:
        Called at every epoch start with an :class:`EpochRestart`;
        returns the participants' restarted values as ``(m,)`` or
        ``(m, k_new)``. ``k_new`` may differ from the current instance
        count (Figure 4 elects a fresh leader set per epoch); when it
        does, every new column runs ``function``. ``None`` restarts
        each participant from its base attribute value — the plain §4
        "restart from the current local values" protocol.
    finalize:
        Called with an :class:`EpochView` when an epoch completes; a
        non-``None`` return value is appended to
        ``KernelRunResult.epoch_results``. Only *completed* epochs
        finalize — the paper publishes converged estimates at epoch
        ends, never mid-epoch state.
    function:
        The AGGREGATE applied to every column after a reseed that
        changes the instance count. Defaults to AGGREGATE_AVG.
    """

    cycles_per_epoch: int
    reseed: Optional[Callable[[EpochRestart], np.ndarray]] = None
    finalize: Optional[Callable[[EpochView], Any]] = None
    function: AggregateFunction = field(default_factory=MeanAggregate)

    def __post_init__(self) -> None:
        if self.cycles_per_epoch < 1:
            raise ConfigurationError(
                f"cycles_per_epoch must be >= 1, got {self.cycles_per_epoch}"
            )
        if not isinstance(self.function, AggregateFunction):
            raise ConfigurationError(
                f"EpochSpec.function must be an AggregateFunction, got "
                f"{type(self.function).__name__}"
            )
