"""Kernel-hosted membership: the pluggable partner-draw layer.

The paper's aggregation analysis assumes every node can sample a
uniformly random peer, and its practical-issues discussion (§1.2) is
explicit that real deployments get peers from a gossip membership
protocol such as Newscast — not from a global oracle. This module
hosts that layer on the kernel as a **PartnerProvider**: the single
object :class:`~repro.kernel.engine.GossipEngine` asks for partners
each cycle.

Two providers exist:

* :class:`OracleProvider` — the historical draw path, bit for bit:
  static scenarios draw through
  ``topology.random_neighbor_array(initiators, rng, out=...)`` and
  dynamic (churn/epoch) scenarios draw uniformly among current
  participants with the self-pick shift. The provider consumes the
  engine RNG in exactly the order the inlined code did, so every
  pre-existing trajectory is reproduced bitwise.
* :class:`NewscastProvider` — partial views. Each node holds a
  ``view_size`` row of an int32 ``(capacity, view_size)`` matrix,
  recency-ordered (youngest first). Once per cycle every participant
  initiates a view exchange with a random entry of its own view; the
  two merge by interleaving their recency-ordered views behind fresh
  entries of each other and keeping the first ``view_size`` distinct
  peers, so old entries drift off the tail without any per-entry age
  bookkeeping. Aggregation partners are then drawn from
  the views — no global oracle anywhere. The merge batches run through
  the backends' node-disjoint segmentation primitives
  (:meth:`~repro.kernel.backends.ExecutionBackend
  .apply_view_exchanges`), so reference, vectorized and sharded
  execution produce bitwise-identical view matrices.

Every piece of randomness — bootstrap views, per-cycle exchange picks,
joiner contact lists, partner draws — comes from the engine's RNG in a
fixed order, which is what keeps the cross-backend equivalence
contract intact: the view matrix is engine-hosted state exactly like
the alive mask, and backends only ever execute deterministic plans
over it. The view matrix is also ``sync()``-safe by construction: it
shares no storage with the backend's value matrix, so view merges may
overlap a pipelined sharded cycle still in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import GossipEngine

#: membership layers selectable by name (``Scenario.membership``,
#: ``--membership`` on the CLI)
MEMBERSHIP_NAMES = ("oracle", "newscast")

#: the paper's Newscast experiments keep 20 entries per view
DEFAULT_VIEW_SIZE = 20


@dataclass(frozen=True)
class NewscastSpec:
    """Declarative configuration of the Newscast partner provider.

    Parameters
    ----------
    view_size:
        Entries kept per node (the paper's experiments use 20). The
        effective size is capped at ``n - 1`` for tiny networks.
    refresh_every:
        Run the view-exchange cycle every this many aggregation cycles
        (1 = every cycle, the Newscast default; larger values model a
        membership service gossiping slower than the aggregation).
    """

    view_size: int = DEFAULT_VIEW_SIZE
    refresh_every: int = 1

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigurationError(
                f"view_size must be >= 1, got {self.view_size}"
            )
        if self.refresh_every < 1:
            raise ConfigurationError(
                f"refresh_every must be >= 1, got {self.refresh_every}"
            )


def resolve_membership(membership) -> Optional[NewscastSpec]:
    """Normalize ``Scenario.membership``: ``None``/``"oracle"`` mean
    the oracle draw path (returns ``None``), ``"newscast"`` the default
    Newscast spec, and a :class:`NewscastSpec` passes through."""
    if membership is None or membership == "oracle":
        return None
    if membership == "newscast":
        return NewscastSpec()
    if isinstance(membership, NewscastSpec):
        return membership
    raise ConfigurationError(
        f"membership must be one of {MEMBERSHIP_NAMES} or a "
        f"NewscastSpec, got {membership!r}"
    )


class NewscastViews:
    """The int32 ``(capacity, view_size)`` partial-view matrix and its
    batched maintenance — shared between :class:`NewscastProvider` and
    the deprecated :class:`repro.membership.NewscastMembership` shell.

    Rows are recency-ordered: column 0 is the youngest entry. The merge
    rule for an exchange between ``a`` and ``b`` builds each side's new
    view from the candidate sequence ``[partner, own[0], partner's[0],
    own[1], partner's[1], …]`` with self-entries rewritten to the
    partner, keeping the first ``view_size`` *distinct* candidates.
    Since both inputs are recency-ordered the interleave is an
    approximate merge-by-age with no per-entry age storage; the dedup
    keeps views diverse (duplicates only pad a view when the two sides
    overlap almost completely), and self-loops never occur (the
    invariant holds inductively: bootstrap excludes self, merges
    rewrite self to the partner). All randomness is drawn from the RNG
    the caller passes in.
    """

    def __init__(
        self, capacity: int, view_size: int, rng: np.random.Generator
    ):
        if capacity < 2:
            raise ConfigurationError(
                "newscast views need at least two nodes"
            )
        if view_size < 1:
            raise ConfigurationError(
                f"view_size must be >= 1, got {view_size}"
            )
        self.view_size = min(int(view_size), capacity - 1)
        # bootstrap: each node knows `view_size` random other nodes
        # (self-collisions shift to the next slot, keeping the no-self
        # invariant with a single vectorized draw)
        views = rng.integers(
            0, capacity, size=(capacity, self.view_size), dtype=np.int32
        )
        rows = np.arange(capacity, dtype=np.int32)[:, None]
        np.copyto(views, (views + 1) % capacity, where=views == rows)
        self.views = views
        # reusable per-cycle scratch (peer picks and their liveness)
        self._peers = np.empty(capacity, dtype=np.int32)
        self._ok = np.empty(capacity, dtype=bool)

    @property
    def capacity(self) -> int:
        return self.views.shape[0]

    def grow(self, capacity: int) -> None:
        """Extend the matrix to ``capacity`` rows. Fresh rows hold -1
        (never read: a slot's row is seeded by :meth:`seed_rows`
        before the slot can ever initiate)."""
        if capacity <= self.capacity:
            return
        grown = np.full((capacity, self.view_size), -1, dtype=np.int32)
        grown[: self.capacity] = self.views
        self.views = grown
        self._peers = np.empty(capacity, dtype=np.int32)
        self._ok = np.empty(capacity, dtype=bool)

    def seed_rows(
        self, slots: np.ndarray, alive: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Bootstrap joiners' views with random alive contacts — the
        standard "a joiner knows at least one node already in the
        network" assumption. Self-collisions shift to the next alive
        node (degenerate single-node networks keep the self entry;
        no exchange can happen there anyway)."""
        m = len(slots)
        if m == 0:
            return
        alive_ids = np.flatnonzero(alive).astype(np.int32)
        count = len(alive_ids)
        positions = rng.integers(
            0, count, size=(m, self.view_size), dtype=np.int64
        )
        contacts = alive_ids[positions]
        if count >= 2:
            clash = contacts == np.asarray(slots, dtype=np.int32)[:, None]
            np.copyto(
                contacts, alive_ids[(positions + 1) % count], where=clash
            )
        self.views[slots] = contacts

    def draw_partners(
        self,
        initiators: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """Each initiator's aggregation partner: a uniformly random
        entry of its own view, gathered in one flat ``take``."""
        count = len(initiators)
        picks = (rng.random(count) * self.view_size).astype(np.int64)
        np.minimum(picks, self.view_size - 1, out=picks)
        picks += initiators.astype(np.int64) * self.view_size
        np.take(self.views.ravel(), picks, out=out)
        return out

    def refresh(
        self,
        initiators: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
        backend,
    ) -> int:
        """One view-exchange cycle: every initiator picks a random
        entry of its view; picks landing on dead nodes fail (stale
        entries age out passively), the rest merge through the
        backend's node-disjoint batch primitives. Returns the number
        of successful exchanges."""
        count = len(initiators)
        if count == 0:
            return 0
        peers = self._peers[:count]
        self.draw_partners(initiators, rng, out=peers)
        ok = self._ok[:count]
        np.take(alive, peers, out=ok)
        if ok.all():
            exch_i, exch_j = initiators, peers
        else:
            exch_i = initiators[ok]
            exch_j = peers[ok]
        backend.apply_view_exchanges(self.views, exch_i, exch_j)
        return len(exch_i)

    def load(self, views: np.ndarray) -> None:
        """Replace the view matrix with a checkpointed one (capacity
        may differ from the bootstrap capacity after churn growth);
        per-cycle scratch is resized to match."""
        views = np.ascontiguousarray(views, dtype=np.int32)
        if views.ndim != 2 or views.shape[1] != self.view_size:
            raise ConfigurationError(
                f"checkpointed view matrix has shape {views.shape}, "
                f"expected (capacity, {self.view_size})"
            )
        self.views = views.copy()
        capacity = views.shape[0]
        self._peers = np.empty(capacity, dtype=np.int32)
        self._ok = np.empty(capacity, dtype=bool)

    def in_degree_distribution(self) -> np.ndarray:
        """How many view entries point at each node (duplicate entries
        counted) — flatness indicates the overlay is close to random."""
        return np.bincount(
            self.views.ravel()[self.views.ravel() >= 0],
            minlength=self.capacity,
        )


class PartnerProvider:
    """The kernel's partner-draw protocol.

    A provider is bound to one :class:`GossipEngine` and owns how each
    cycle's partners come to be: :meth:`begin_cycle` runs the
    membership protocol's own gossip (a no-op for the oracle),
    :meth:`draw` fills the engine's preallocated partner buffer, and
    the lifecycle hooks (:meth:`on_join`, :meth:`on_mask_change`,
    :meth:`grow`) keep provider state consistent with churn, crashes
    and epoch restarts. All provider randomness must come from the RNG
    arguments (the engine's stream) so backend swaps never perturb
    trajectories; provider state must never alias backend-owned
    storage, which is what makes it safe to touch while a pipelined
    sharded cycle is still in flight (the ``sync()``-safe surface).
    """

    #: identifier used by Scenario.membership and reports
    name: str = "abstract"
    #: whether :meth:`draw` guarantees alive, participating partners
    #: (the oracle's dynamic draw does; view-based draws can land on
    #: departed nodes and need the engine's participant filter)
    draws_valid_participants: bool = True

    def bind(self, engine: "GossipEngine") -> None:
        """Attach to ``engine`` (called once, at engine construction;
        may consume engine RNG — e.g. the Newscast bootstrap)."""
        self._engine = engine

    def begin_cycle(
        self,
        initiators: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Run the membership layer's own per-cycle gossip."""

    def draw(
        self,
        initiators: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """Draw one partner per initiator into ``out`` and return it."""
        raise NotImplementedError

    def redraw(
        self,
        requesters: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        """Draw a fresh partner for ``requesters`` outside the regular
        cycle draw — the retry protocol's ``redraw`` mode. Defaults to
        the ordinary draw; providers whose :meth:`draw` interprets its
        argument as the *candidate pool* rather than per-node state
        (the dynamic oracle) must override it."""
        return self.draw(requesters, rng, out)

    def on_join(self, slots: np.ndarray, rng: np.random.Generator) -> None:
        """Slots were (re)admitted by churn; seed any per-node state."""

    def on_mask_change(self, version: int) -> None:
        """The alive/participant masks changed (crash, churn, epoch
        restart); ``version`` is the engine's new mask-version stamp."""

    def grow(self, capacity: int) -> None:
        """Engine capacity grew; extend per-node state to match."""

    def state(self) -> Dict[str, object]:
        """A snapshot of provider state for observers and tests."""
        return {"name": self.name}

    def load_state(self, views: Optional[np.ndarray]) -> None:
        """Restore checkpointed per-node state. Stateless providers
        (the oracle) accept only ``None``; providers holding views
        replace their matrix wholesale."""
        if views is not None:
            raise ConfigurationError(
                f"the {self.name!r} provider keeps no per-node views; "
                f"the checkpoint was taken under a different membership "
                f"layer"
            )

    @property
    def view_matrix(self) -> Optional[np.ndarray]:
        """The provider's view matrix (copy), or ``None`` when the
        provider keeps no per-node views (the oracle)."""
        return None


class OracleProvider(PartnerProvider):
    """The historical draw path, preserved bit for bit.

    Static scenarios draw through the topology's vectorized CSR/complete
    draw; dynamic (churn/epoch) scenarios draw a uniformly random
    *other* participant with the self-pick shift. Both consume the
    engine RNG exactly as the previously inlined code did, so every
    existing trajectory — and every cross-backend equivalence — is
    unchanged.
    """

    name = "oracle"
    draws_valid_participants = True

    def bind(self, engine: "GossipEngine") -> None:
        super().bind(engine)
        self._topology = engine.scenario.topology
        self._dynamic = engine.scenario.is_dynamic

    def draw(
        self,
        initiators: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        if not self._dynamic:
            return self._topology.random_neighbor_array(
                initiators, rng, out=out
            )
        # the paper's uniform overlay over current participants: each
        # initiator draws a uniformly random *other* participant
        # (self-picks shift to the next position)
        count = len(initiators)
        positions = rng.integers(0, count, size=count)
        clash = positions == np.arange(count)
        if clash.any():
            positions[clash] = (positions[clash] + 1) % count
        np.take(initiators, positions, out=out)
        return out

    def redraw(
        self,
        requesters: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        if not self._dynamic:
            return self._topology.random_neighbor_array(
                requesters, rng, out=out
            )
        # the dynamic draw above samples among the *passed* array (in
        # the regular cycle that array IS the participant set); a
        # retrying subset must still draw among all current
        # participants, with self-picks shifted the same way
        engine = self._engine
        pool = engine._plan.initiators(
            engine._participant, engine._mask_version
        )
        positions = rng.integers(0, len(pool), size=len(requesters))
        np.take(pool, positions, out=out)
        clash = out == requesters
        if clash.any():
            positions[clash] = (positions[clash] + 1) % len(pool)
            out[clash] = pool[positions[clash]]
        return out


class NewscastProvider(PartnerProvider):
    """Partner draws from gossip-maintained partial views.

    Holds a :class:`NewscastViews` matrix over engine slots. Each cycle
    (subject to ``refresh_every``) the participants run one
    view-exchange round through the backend's node-disjoint batch
    primitives, then aggregation partners are drawn from the refreshed
    views. Draws can land on departed nodes — the engine's ok-mask
    filters them, exactly like contacting a crashed neighbor — so no
    global liveness oracle is consulted anywhere.
    """

    name = "newscast"
    draws_valid_participants = False

    def __init__(self, spec: NewscastSpec):
        self.spec = spec
        self._views: Optional[NewscastViews] = None

    def bind(self, engine: "GossipEngine") -> None:
        super().bind(engine)
        self._views = NewscastViews(
            engine.capacity, self.spec.view_size, engine._rng
        )

    def begin_cycle(
        self,
        initiators: np.ndarray,
        alive: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        engine = self._engine
        if engine.cycle % self.spec.refresh_every != 0:
            return
        self._views.refresh(initiators, alive, rng, engine._backend)

    def draw(
        self,
        initiators: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> np.ndarray:
        return self._views.draw_partners(initiators, rng, out)

    def on_join(self, slots: np.ndarray, rng: np.random.Generator) -> None:
        self._views.seed_rows(slots, self._engine._alive, rng)

    def grow(self, capacity: int) -> None:
        self._views.grow(capacity)

    def state(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "view_size": self._views.view_size,
            "views": self._views.views.copy(),
        }

    def load_state(self, views: Optional[np.ndarray]) -> None:
        if views is None:
            raise ConfigurationError(
                "the checkpoint holds no view matrix; it was taken "
                "under a different membership layer than 'newscast'"
            )
        self._views.load(views)

    @property
    def view_matrix(self) -> Optional[np.ndarray]:
        return self._views.views.copy()


def build_provider(spec: Optional[NewscastSpec]) -> PartnerProvider:
    """The provider for a scenario's normalized membership spec."""
    if spec is None:
        return OracleProvider()
    return NewscastProvider(spec)
