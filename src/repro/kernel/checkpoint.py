"""Checkpoint/resume of engine state: the fault-tolerant run format.

The paper's protocol survives node crashes by design; this module makes
the *executor* survive process crashes. A checkpoint captures the full
mutable state of a :class:`~repro.kernel.engine.GossipEngine` — value
matrix, alive/participant masks, RNG state, cycle counter, membership
views, lifecycle counters — so that a restored engine continues the run
**bitwise-identically** on any backend: the engine owns all randomness,
so the only thing resume has to reproduce is the state the next cycle
reads, and that is exactly what is serialized.

On-disk format (version 1), two files per checkpoint in one directory:

* ``ck-<cycle:010d>.npz`` — the arrays (uncompressed ``npz``: the
  matrix is random float64 and does not compress, and checkpoint write
  latency is a benchmarked recovery metric). RNG state and epoch
  results are Python objects and ride as pickled ``uint8`` payloads.
* ``ck-<cycle:010d>.json`` — the manifest: format name + version, a
  SHA-256 checksum of the payload file, and the scenario fingerprint
  (size, instance layout, membership, bit-generator type) validated on
  restore.

Both files are written to a temporary sibling and moved into place
with :func:`os.replace`, payload **before** manifest — the manifest is
the commit record, so a crash mid-checkpoint can never corrupt the
last good checkpoint: either the new manifest exists and its checksum
matches a fully written payload, or the previous checkpoint is still
the newest valid one. :func:`latest_checkpoint` skips anything else.

:class:`CheckpointSpec` drives periodic auto-checkpointing from
:meth:`GossipEngine.run(..., checkpoint=...)
<repro.kernel.engine.GossipEngine.run>`: a checkpoint every
``every_cycles`` cycles, pruned to the ``keep`` newest (manifest
removed first, so a half-pruned checkpoint is simply not discovered,
never half-read).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..errors import CheckpointError, ConfigurationError

#: manifest ``format`` field — rejects foreign json files outright
CHECKPOINT_FORMAT = "repro-checkpoint"

#: current on-disk format version; bump on incompatible layout changes
CHECKPOINT_VERSION = 1

#: checkpoint file stem: sortable by cycle lexicographically
_STEM_PATTERN = re.compile(r"^ck-(\d{10})$")

#: hashing block size for the payload checksum
_HASH_BLOCK = 1 << 20


@dataclass(frozen=True)
class CheckpointSpec:
    """Periodic auto-checkpoint policy for :meth:`GossipEngine.run`.

    Parameters
    ----------
    directory:
        Where checkpoints land (created on first write).
    every_cycles:
        Write a checkpoint after every this many completed cycles.
    keep:
        Keep only the newest ``keep`` checkpoints, pruning older ones
        after each write; ``None`` keeps everything.
    """

    directory: Union[str, Path]
    every_cycles: int = 1
    keep: Optional[int] = None

    def __post_init__(self) -> None:
        if self.every_cycles < 1:
            raise ConfigurationError(
                f"every_cycles must be >= 1, got {self.every_cycles}"
            )
        if self.keep is not None and self.keep < 1:
            raise ConfigurationError(
                f"keep must be >= 1 (or None), got {self.keep}"
            )

    @property
    def path(self) -> Path:
        return Path(self.directory)


def _stem(cycle: int) -> str:
    return f"ck-{cycle:010d}"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_HASH_BLOCK)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _atomic_replace(tmp: Path, final: Path) -> None:
    """Publish ``tmp`` as ``final`` atomically (same directory, so the
    rename cannot cross filesystems)."""
    os.replace(tmp, final)


def _pickled(obj) -> np.ndarray:
    return np.frombuffer(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )


def write_checkpoint(
    directory: Union[str, Path],
    arrays: Dict[str, np.ndarray],
    manifest: Dict[str, object],
) -> Path:
    """Write one checkpoint (payload then manifest, each via
    write-to-temp + :func:`os.replace`) and return the manifest path.

    ``manifest`` must carry the ``cycle`` the checkpoint was taken at;
    format/version/checksum/payload fields are filled in here.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cycle = int(manifest["cycle"])
    stem = _stem(cycle)
    payload = directory / f"{stem}.npz"
    manifest_path = directory / f"{stem}.json"
    tmp_payload = directory / f".tmp-{stem}-{os.getpid()}.npz"
    tmp_manifest = directory / f".tmp-{stem}-{os.getpid()}.json"
    try:
        with open(tmp_payload, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        record = dict(manifest)
        record["format"] = CHECKPOINT_FORMAT
        record["version"] = CHECKPOINT_VERSION
        record["payload"] = payload.name
        record["sha256"] = _sha256_file(tmp_payload)
        _atomic_replace(tmp_payload, payload)
        with open(tmp_manifest, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        # the commit point: once the manifest is in place the
        # checkpoint is discoverable; before it, the payload is an
        # invisible orphan a crashed writer leaves behind harmlessly
        _atomic_replace(tmp_manifest, manifest_path)
    finally:
        for tmp in (tmp_payload, tmp_manifest):
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass
    return manifest_path


def read_manifest(manifest_path: Union[str, Path]) -> Dict[str, object]:
    """Load and structurally validate one manifest (no checksum yet)."""
    manifest_path = Path(manifest_path)
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"unreadable checkpoint manifest {manifest_path}: {error}"
        ) from error
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{manifest_path} is not a {CHECKPOINT_FORMAT} manifest"
        )
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {manifest_path} has format version {version}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    for key in ("payload", "sha256", "cycle"):
        if key not in manifest:
            raise CheckpointError(
                f"checkpoint manifest {manifest_path} is missing {key!r}"
            )
    return manifest


def resolve_checkpoint(path: Union[str, Path]) -> Path:
    """Normalize a user-supplied checkpoint reference to its manifest
    path: a directory resolves to its newest valid checkpoint, a
    payload (``.npz``) to its sibling manifest, a manifest passes
    through."""
    path = Path(path)
    if path.is_dir():
        latest = latest_checkpoint(path)
        if latest is None:
            raise CheckpointError(f"no valid checkpoint found in {path}")
        return latest
    if path.suffix == ".npz":
        return path.with_suffix(".json")
    return path


def read_checkpoint(
    path: Union[str, Path]
) -> tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Load one checkpoint and verify its checksum.

    ``path`` may be the manifest (``.json``), the payload (``.npz``),
    or a directory (resolved through :func:`latest_checkpoint`).
    Returns ``(manifest, arrays)`` with the payload fully materialized
    on the heap (no open file handles survive the call).
    """
    path = resolve_checkpoint(path)
    manifest = read_manifest(path)
    payload = path.parent / str(manifest["payload"])
    if not payload.exists():
        raise CheckpointError(
            f"checkpoint payload {payload} is missing (manifest {path})"
        )
    digest = _sha256_file(payload)
    if digest != manifest["sha256"]:
        raise CheckpointError(
            f"checkpoint payload {payload} fails its checksum "
            f"(expected {manifest['sha256']}, got {digest}); the file "
            f"is corrupt or was tampered with"
        )
    # the pickled members (RNG state, epoch results) are loaded
    # explicitly by the engine; everything here is a plain array
    with np.load(payload, allow_pickle=False) as bundle:
        arrays = {name: bundle[name].copy() for name in bundle.files}
    return manifest, arrays


def unpickle_payload(array: np.ndarray):
    """Deserialize a pickled member written by the engine (RNG state,
    epoch results). Only reachable after the checksum passed, so the
    pickle is as trustworthy as the checkpoint directory itself."""
    return pickle.loads(np.ascontiguousarray(array, dtype=np.uint8).tobytes())


def pickle_payload(obj) -> np.ndarray:
    """Serialize an arbitrary Python member for the payload bundle."""
    return _pickled(obj)


def list_checkpoints(directory: Union[str, Path]) -> List[Path]:
    """Manifest paths in ``directory`` with well-formed names, oldest
    first. No checksum validation (see :func:`latest_checkpoint`)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        if entry.suffix != ".json":
            continue
        if _STEM_PATTERN.match(entry.stem):
            found.append(entry)
    return sorted(found)


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The newest *valid* checkpoint manifest in ``directory`` (or
    ``None``): invalid or torn checkpoints — a manifest without its
    payload, a checksum mismatch — are skipped, so a crash during a
    checkpoint write silently falls back to the previous good one."""
    for manifest_path in reversed(list_checkpoints(directory)):
        try:
            manifest = read_manifest(manifest_path)
            payload = manifest_path.parent / str(manifest["payload"])
            if _sha256_file(payload) == manifest["sha256"]:
                return manifest_path
        except (CheckpointError, OSError):
            continue
    return None


def prune_checkpoints(directory: Union[str, Path], keep: int) -> int:
    """Remove all but the ``keep`` newest checkpoints; returns how many
    were pruned. The manifest goes first — without it the payload is
    never discovered, so a crash mid-prune leaves no torn state."""
    manifests = list_checkpoints(directory)
    doomed = manifests[:-keep] if keep > 0 else manifests
    for manifest_path in doomed:
        payload = manifest_path.with_suffix(".npz")
        try:
            manifest_path.unlink()
        except FileNotFoundError:
            pass
        try:
            payload.unlink()
        except FileNotFoundError:
            pass
    return len(doomed)
