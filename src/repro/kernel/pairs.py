"""Kernel-hosted GETPAIR pair-sequence generation (§3.3).

Algorithm AVG (Figure 2) runs a cycle as ``N`` elementary
variance-reduction steps over a pair sequence supplied by a GETPAIR
strategy. This module hosts the four strategies the paper analyzes —
PM, RAND, SEQ and PMRAND — as *pure pair-sequence generators*: value
blind, drawing only from the engine's generator, returning the whole
cycle's ``(N, 2)`` index array up front. Because the draws happen in
the engine (never in a backend), both execution backends replay the
identical sequence and stay bitwise-equal, exactly as in exchange mode.

:class:`PairProtocolSpec` is the scenario-level declaration: selector
name, whether to record per-node communication counts φ (Theorem 1's
random variable), and whether to co-evolve the ``s`` vector of
Theorem 1's proof (``s_i = s_j = (s_i + s_j)/4``, seeded with ``a_0²``)
as a second matrix column.

The public selector classes in :mod:`repro.avg.pair_selectors` are thin
shells over the ``pairs_*`` functions here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.aggregates import AggregateFunction
from ..errors import ConfigurationError, PairSelectionError
from ..topology.base import AdjacencyTopology, Topology
from ..topology.complete import CompleteTopology

#: selector names accepted by :attr:`PairProtocolSpec.selector`
PAIR_SELECTOR_NAMES = ("pm", "rand", "seq", "pmrand")

#: a bound generator: engine RNG in, one cycle's (N, 2) pair array out
PairDraw = Callable[[np.random.Generator], np.ndarray]

#: an unbound generator: (topology, engine RNG) -> (N, 2) pair array
PairGenerator = Callable[[Topology, np.random.Generator], np.ndarray]


class TheoremSAggregate(AggregateFunction):
    """The ``s`` update of Theorem 1's proof: both peers adopt
    ``(s_i + s_j) / 4``.

    Not an AGGREGATE in the protocol sense (it does not conserve mass);
    it exists so that tests can verify the recursion
    ``E(s_{i+1}) = E(2^{-φ}) · E(s_i)`` directly on a kernel run.
    """

    name = "s_quarter"

    def combine(self, x: float, y: float) -> float:
        return (x + y) * 0.25

    def combine_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (x + y) * 0.25


def two_disjoint_matchings(n: int, rng: np.random.Generator) -> np.ndarray:
    """Two edge-disjoint perfect matchings over ``n`` (even) labels.

    A random permutation ``p`` yields matching 1 as consecutive pairs
    ``(p[0],p[1]), (p[2],p[3]) …`` and matching 2 as the shifted pairs
    ``(p[1],p[2]), …, (p[n-1],p[0])`` — the two alternating edge classes
    of a Hamiltonian cycle, hence disjoint by construction. Assembled
    into one pre-allocated array: this runs once per cycle at N = 10⁵.
    """
    p = rng.permutation(n)
    half = n // 2
    pairs = np.empty((n, 2), dtype=np.int64)
    pairs[:half] = p.reshape(half, 2)
    pairs[half:, 0] = p[1::2]
    pairs[half:n - 1, 1] = p[2::2]
    pairs[n - 1, 1] = p[0]
    return pairs


def _uniform_distinct_pairs(
    n: int, out: np.ndarray, rng: np.random.Generator
) -> None:
    """Fill ``out`` with uniform distinct pairs over ``n`` labels
    (complete-graph RAND draw), without rejection."""
    count = len(out)
    first = rng.integers(0, n, size=count)
    offset = rng.integers(0, n - 1, size=count)
    out[:, 0] = first
    out[:, 1] = offset + (offset >= first)


def pairs_pm(topology: Topology, rng: np.random.Generator) -> np.ndarray:
    """GETPAIR_PM (§3.3.1): two disjoint perfect matchings per cycle."""
    return two_disjoint_matchings(topology.n, rng)


def pairs_rand(topology: Topology, rng: np.random.Generator) -> np.ndarray:
    """GETPAIR_RAND (§3.3.2): each of the ``N`` calls returns a
    uniformly random edge of the overlay."""
    n = topology.n
    if isinstance(topology, CompleteTopology):
        pairs = np.empty((n, 2), dtype=np.int64)
        _uniform_distinct_pairs(n, pairs, rng)
        return pairs
    if isinstance(topology, AdjacencyTopology):
        edge_array = topology.edge_array()
        if len(edge_array) == 0:
            raise PairSelectionError("topology has no edges to sample")
        picks = rng.integers(0, len(edge_array), size=n)
        return edge_array[picks].copy()
    pairs = np.empty((n, 2), dtype=np.int64)
    for call in range(n):
        pairs[call] = topology.random_edge(rng)
    return pairs


def pairs_seq(topology: Topology, rng: np.random.Generator) -> np.ndarray:
    """GETPAIR_SEQ (§3.3.3): iterate nodes in a fixed order, each
    picking a uniformly random neighbor — the practical protocol."""
    n = topology.n
    pairs = np.empty((n, 2), dtype=np.int64)
    initiators = np.arange(n, dtype=np.int64)
    pairs[:, 0] = initiators
    pairs[:, 1] = topology.random_neighbor_array(initiators, rng)
    return pairs


def pairs_pmrand(topology: Topology, rng: np.random.Generator) -> np.ndarray:
    """GETPAIR_PMRAND (§3.3.3): a PM half-cycle followed by a RAND
    half-cycle — the analysis device sharing SEQ's φ distribution."""
    n = topology.n
    half = n // 2
    p = rng.permutation(n)
    pairs = np.empty((n, 2), dtype=np.int64)
    pairs[:half] = p.reshape(half, 2)  # N/2 PM calls
    _uniform_distinct_pairs(n, pairs[half:], rng)
    return pairs


_GENERATORS = {
    "pm": pairs_pm,
    "rand": pairs_rand,
    "seq": pairs_seq,
    "pmrand": pairs_pmrand,
}


def conflict_free_plan(selector: str, n: int):
    """Structural segmentation of one cycle's pair sequence.

    Returns ``((start, end, conflict_free), …)`` covering ``[0, N)``,
    or ``None`` when the selector has no known structure. PM's two
    matching halves are node-disjoint by construction, as is PMRAND's
    matching half; the vectorized backend applies such segments as
    single batches with no segmentation scan. RAND/SEQ sequences need
    the generic greedy segmentation throughout.
    """
    if selector == "pm":
        return ((0, n // 2, True), (n // 2, n, True))
    if selector == "pmrand":
        return ((0, n // 2, True), (n // 2, n, False))
    return None


def validate_pair_topology(selector: str, topology: Topology) -> None:
    """Check a selector's topology preconditions (PM/PMRAND need global
    knowledge — the complete overlay — and an even node count)."""
    if selector not in PAIR_SELECTOR_NAMES:
        raise ConfigurationError(
            f"unknown pair selector {selector!r}; expected one of "
            f"{PAIR_SELECTOR_NAMES}"
        )
    if selector in ("pm", "pmrand"):
        if not isinstance(topology, CompleteTopology):
            raise PairSelectionError(
                f"GETPAIR_{selector.upper()} requires the complete "
                "topology (global knowledge)"
            )
        if topology.n % 2 != 0:
            raise PairSelectionError(
                f"perfect matching needs an even node count, got "
                f"{topology.n}"
            )


@dataclass(frozen=True)
class PairProtocolSpec:
    """Declarative pair-mode configuration for a kernel scenario.

    Parameters
    ----------
    selector:
        GETPAIR strategy name: ``"pm"``, ``"rand"``, ``"seq"`` or
        ``"pmrand"`` — or, with a custom ``generator``, any non-empty
        label used in reports.
    track_phi:
        Record the per-node communication counts φ of every cycle in
        :attr:`~repro.kernel.engine.KernelRunResult.phi_counts`.
    track_s:
        Co-evolve Theorem 1's ``s`` vector as a second matrix column
        (instance id ``"s"``, seeded with the squared initial values).
    generator:
        Optional custom pair generator ``(topology, rng) -> (m, 2)``
        replacing the built-in strategies (how user-defined
        :class:`~repro.avg.pair_selectors.PairSelector` subclasses run
        on the kernel). Custom generators skip the built-in topology
        preconditions and get no conflict-free segmentation plan.
    chunk:
        Optional greedy-segmentation window size for the vectorized
        backend (default: the ``REPRO_PAIR_CHUNK`` environment variable,
        falling back to :data:`~repro.kernel.backends.PAIR_CHUNK`).
        Purely a performance knob — it never changes results, only how
        the sequence is cut into batches.
    """

    selector: str
    track_phi: bool = True
    track_s: bool = False
    generator: Optional[PairGenerator] = None
    chunk: Optional[int] = None

    def __post_init__(self):
        if self.generator is not None:
            if not self.selector:
                raise ConfigurationError(
                    "a custom pair generator needs a non-empty selector "
                    "label"
                )
        elif self.selector not in PAIR_SELECTOR_NAMES:
            raise ConfigurationError(
                f"unknown pair selector {self.selector!r}; expected one "
                f"of {PAIR_SELECTOR_NAMES}"
            )
        if self.chunk is not None:
            # validate eagerly so a bad value fails at configuration
            # time, not on the first vectorized cycle
            from .backends import resolve_chunk

            resolve_chunk(self.chunk)

    def validate_topology(self, topology: Topology) -> None:
        """Raise if ``topology`` cannot host this selector."""
        if self.generator is None:
            validate_pair_topology(self.selector, topology)

    def bind(self, topology: Topology) -> PairDraw:
        """The pair generator for this selector over ``topology``."""
        self.validate_topology(topology)
        generator = (
            self.generator
            if self.generator is not None
            else _GENERATORS[self.selector]
        )
        return lambda rng: generator(topology, rng)

    def segmentation_plan(self, n: int):
        """:func:`conflict_free_plan` for built-in selectors; custom
        generators have no known structure."""
        if self.generator is not None:
            return None
        return conflict_free_plan(self.selector, n)
