"""Declarative fault injection for the fault-tolerance test harness.

A :class:`FaultSpec` names one failure to provoke at a precise point of
a sharded run — kill worker ``W`` right before apply call ``S`` is
published, delay a worker's acknowledgements past the pool timeout,
corrupt a scheduled step bank so the workers crash mid-segment — and
:meth:`ShardedBackend.inject_faults
<repro.kernel.backends.sharded.ShardedBackend.inject_faults>` arms a
backend with a batch of them. Injection is deliberately parent-side and
deterministic: faults fire at an exact apply-call index, never on a
timer, so a fault test is as reproducible as the trajectory it
disturbs.

The fourth kind, ``parent_kill``, cannot be injected *into* a backend
— it is the parent that dies. :func:`spawn_and_kill` orchestrates it
from outside: launch a checkpointing run as a subprocess, SIGKILL it
the moment its first checkpoint commits, and hand the surviving
checkpoint back so the caller can resume it and assert bitwise
equality with an undisturbed run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from ..errors import ConfigurationError, SimulationError
from .checkpoint import latest_checkpoint

#: every fault kind the harness knows how to provoke
FAULT_KINDS = ("kill_worker", "delay_ack", "corrupt_bank", "parent_kill")

#: kinds a ShardedBackend can fire itself (``parent_kill`` is external)
BACKEND_FAULT_KINDS = ("kill_worker", "delay_ack", "corrupt_bank")


@dataclass(frozen=True)
class FaultSpec:
    """One failure to provoke, pinned to an exact apply call.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`. ``kill_worker`` SIGKILLs worker
        ``worker`` right before apply call ``at_call`` publishes;
        ``delay_ack`` makes that worker sleep ``delay`` seconds before
        processing the call (exceeding the pool timeout turns it into
        a detected hang); ``corrupt_bank`` overwrites the call's
        scheduled step indices with out-of-range rows after they were
        journaled, so the workers crash but recovery replays clean
        state; ``parent_kill`` is orchestrated by
        :func:`spawn_and_kill`, never injected into a backend.
    worker:
        Pool index of the targeted worker (ignored by
        ``corrupt_bank``/``parent_kill``).
    at_call:
        0-based index of the backend apply call the fault fires at.
    delay:
        Sleep seconds for ``delay_ack``.
    """

    kind: str
    worker: int = 0
    at_call: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.worker < 0:
            raise ConfigurationError(
                f"fault worker index must be non-negative, got {self.worker}"
            )
        if self.at_call < 0:
            raise ConfigurationError(
                f"fault at_call must be non-negative, got {self.at_call}"
            )
        if self.delay < 0:
            raise ConfigurationError(
                f"fault delay must be non-negative, got {self.delay}"
            )
        if self.kind == "delay_ack" and self.delay == 0:
            raise ConfigurationError(
                "delay_ack needs a positive delay to have any effect"
            )


def spawn_and_kill(
    argv: Sequence[str],
    checkpoint_dir: Union[str, Path],
    *,
    timeout: float = 120.0,
    poll: float = 0.05,
    env: Optional[dict] = None,
) -> Path:
    """Launch ``argv``, SIGKILL it as soon as a checkpoint commits,
    return the newest valid checkpoint manifest.

    The harness for ``parent_kill``: the subprocess is a run writing
    periodic checkpoints into ``checkpoint_dir``; the moment
    :func:`~repro.kernel.checkpoint.latest_checkpoint` sees a valid
    one, the process is killed with no chance to clean up — the
    closest a test gets to pulling the plug. The returned manifest is
    what a resumed run continues from.

    ``argv`` beginning with ``"python"`` is rewritten to the running
    interpreter so the subprocess sees the same environment.
    """
    argv = list(argv)
    if argv and argv[0] == "python":
        argv[0] = sys.executable
    run_env = dict(os.environ)
    if env:
        run_env.update(env)
    checkpoint_dir = Path(checkpoint_dir)
    proc = subprocess.Popen(
        argv,
        env=run_env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + timeout
    try:
        while True:
            manifest = latest_checkpoint(checkpoint_dir)
            if manifest is not None:
                # no SIGTERM courtesy: the whole point is an abrupt end
                proc.send_signal(signal.SIGKILL)
                return manifest
            if proc.poll() is not None:
                stderr = (proc.stderr.read() or b"").decode(
                    "utf-8", "replace"
                )
                raise SimulationError(
                    f"spawn_and_kill: process exited with code "
                    f"{proc.returncode} before writing a checkpoint"
                    f"{chr(10) + stderr if stderr.strip() else ''}"
                )
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"spawn_and_kill: no checkpoint appeared in "
                    f"{checkpoint_dir} within {timeout:g}s"
                )
            time.sleep(poll)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait()
        if proc.stderr is not None:
            proc.stderr.close()
