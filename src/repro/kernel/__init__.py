"""The unified gossip kernel.

One declarative :class:`Scenario` (overlay, values, concurrent
aggregate instances, failure model, seed) executed by one
:class:`GossipEngine` over pluggable
:class:`~repro.kernel.backends.ExecutionBackend` implementations:

* ``"reference"`` — sequential Python loops, the semantic oracle;
* ``"vectorized"`` — numpy structure-of-arrays batched execution that
  reproduces the reference trajectories bitwise while scaling to the
  paper's N = 100 000 overlays and beyond;
* ``"sharded"`` / ``"sharded:<workers>"`` — multi-process execution
  over a :mod:`multiprocessing.shared_memory` value matrix, for
  million-node figures; bitwise-equal to the other two.

Both the cycle-driven simulator (:class:`repro.simulator.CycleSimulator`)
and the aggregation facade (:class:`repro.core.AggregationService`) are
thin shells over this layer.
"""

from .scenario import (
    AUTO_VECTORIZE_THRESHOLD,
    Scenario,
)
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointSpec,
    latest_checkpoint,
    list_checkpoints,
    prune_checkpoints,
    read_checkpoint,
)
from .faults import (
    FAULT_KINDS,
    FaultSpec,
    spawn_and_kill,
)
from .adversary import (
    ADVERSARY_KINDS,
    AdversarySpec,
)
from .messages import (
    RETRY_FALLBACKS,
    RETRY_MODES,
    LossSchedule,
    MessageFaultSpec,
    RetrySpec,
    burst_loss,
    constant_loss,
)
from .invariants import (
    FAULT_LEDGER_KEYS,
    InvariantFinding,
    InvariantMonitor,
    InvariantReport,
    MassConservationMonitor,
    StructureMonitor,
    VarianceMonotonicityMonitor,
    standard_monitors,
)
from .robust import (
    DEFAULT_TRIM,
    ROBUST_REDUCTIONS,
    MultiAggregateSpec,
    max_size_estimate,
    median_of_runs,
    min_size_estimate,
    robust_reduce,
    size_from_count,
    trimmed_mean,
)
from .lifecycle import (
    ChurnSpec,
    ChurnTrace,
    EpochRestart,
    EpochSpec,
    EpochView,
)
from .membership import (
    MEMBERSHIP_NAMES,
    NewscastProvider,
    NewscastSpec,
    NewscastViews,
    OracleProvider,
    PartnerProvider,
)
from .pairs import (
    PAIR_SELECTOR_NAMES,
    PairProtocolSpec,
    TheoremSAggregate,
)
from .backends import (
    BACKEND_FORMS,
    BACKEND_NAMES,
    PAIR_CHUNK,
    SHARD_CHUNK,
    ExecutionBackend,
    PoolHealthReport,
    ReferenceBackend,
    ShardedBackend,
    VectorizedBackend,
    make_backend,
    parse_backend_spec,
    resolve_chunk,
)
from .engine import CyclePlan, GossipEngine, KernelRunResult, run_scenario

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointSpec",
    "latest_checkpoint",
    "list_checkpoints",
    "prune_checkpoints",
    "read_checkpoint",
    "FAULT_KINDS",
    "FaultSpec",
    "spawn_and_kill",
    "PoolHealthReport",
    "ADVERSARY_KINDS",
    "AdversarySpec",
    "RETRY_FALLBACKS",
    "RETRY_MODES",
    "LossSchedule",
    "MessageFaultSpec",
    "RetrySpec",
    "burst_loss",
    "constant_loss",
    "FAULT_LEDGER_KEYS",
    "InvariantFinding",
    "InvariantMonitor",
    "InvariantReport",
    "MassConservationMonitor",
    "StructureMonitor",
    "VarianceMonotonicityMonitor",
    "standard_monitors",
    "AUTO_VECTORIZE_THRESHOLD",
    "DEFAULT_TRIM",
    "ROBUST_REDUCTIONS",
    "MultiAggregateSpec",
    "max_size_estimate",
    "median_of_runs",
    "min_size_estimate",
    "robust_reduce",
    "size_from_count",
    "trimmed_mean",
    "BACKEND_FORMS",
    "BACKEND_NAMES",
    "Scenario",
    "ChurnSpec",
    "ChurnTrace",
    "EpochRestart",
    "EpochSpec",
    "EpochView",
    "MEMBERSHIP_NAMES",
    "NewscastProvider",
    "NewscastSpec",
    "NewscastViews",
    "OracleProvider",
    "PartnerProvider",
    "PAIR_SELECTOR_NAMES",
    "PairProtocolSpec",
    "TheoremSAggregate",
    "PAIR_CHUNK",
    "SHARD_CHUNK",
    "ExecutionBackend",
    "ReferenceBackend",
    "ShardedBackend",
    "VectorizedBackend",
    "make_backend",
    "parse_backend_spec",
    "resolve_chunk",
    "CyclePlan",
    "GossipEngine",
    "KernelRunResult",
    "run_scenario",
]
