"""Pluggable run-invariant monitors for :class:`GossipEngine`.

The §3 analysis rests on invariants the implementation can check while
it runs: push-pull averaging conserves total system mass, the variance
of the estimates never increases in the fault-free setting, and the
engine's lifecycle bookkeeping (alive/participant masks, the recycled
slot free-list) stays consistent under churn. Monitors are registered
on an engine (:meth:`GossipEngine.register_monitor`) and observed at
the end of every cycle; each observation returns structured
:class:`InvariantFinding` rows, and a monitor registered with
``strict=True`` turns any *violation* finding into a typed
:class:`repro.errors.InvariantViolation` raised at the offending cycle.

The mass monitor does per-fault-event drift *attribution*: the engine
keeps a per-cycle ledger of every deliberate mass-moving event it
applied (partial exchanges from lost replies, duplicate deliveries,
retransmission repairs, churn arrivals/departures, adversarial
injection), each with its exact per-column delta. The monitor then
checks ``measured == previous + sum(ledger)`` within a floating-point
tolerance: attributed drift (the faults' doing) is reported separately
from unattributed residual (which would indicate an engine bug). With
faults off the attributed fault drift is exactly ``0.0`` — the §3
conservation claim, certified per cycle.

Setting the environment variable ``REPRO_STRICT_INVARIANTS=1`` arms
the standard monitors in strict mode on every engine at construction —
the hook CI uses to re-run existing suites under invariant
certification without touching the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.aggregates import MeanAggregate

#: ledger categories that originate from message faults (their summed
#: deltas are the fault-attributed mass drift; everything else —
#: churn, crash, inject — is lifecycle-attributed)
FAULT_LEDGER_KEYS = ("partial", "duplicate", "repair")


@dataclass(frozen=True)
class InvariantFinding:
    """One observation of one monitor at one cycle."""

    monitor: str
    cycle: int
    severity: str  #: ``"violation"`` or ``"info"``
    message: str
    value: float = 0.0

    @property
    def is_violation(self) -> bool:
        return self.severity == "violation"


@dataclass(frozen=True)
class InvariantReport:
    """Every finding plus per-monitor summaries of a (partial) run."""

    findings: Tuple[InvariantFinding, ...] = ()
    summaries: Dict[str, dict] = field(default_factory=dict)

    @property
    def violations(self) -> Tuple[InvariantFinding, ...]:
        return tuple(f for f in self.findings if f.is_violation)

    @property
    def ok(self) -> bool:
        return not self.violations


class InvariantMonitor:
    """Base class: one invariant, observed once per executed cycle.

    ``observe`` receives the engine (synced — matrix reads are safe),
    the executed cycle number, the engine's per-cycle mass ledger
    (category -> per-column delta array) and a ``rebase`` flag set when
    the cycle deliberately re-seeded state (an epoch restart), which
    invalidates any expectation carried over from the previous cycle.
    """

    name = "invariant"

    def observe(self, engine, cycle: int,
                ledger: Dict[str, np.ndarray],
                rebase: bool) -> List[InvariantFinding]:
        return []

    def summary(self) -> dict:
        """Cumulative machine-readable state for reports."""
        return {}

    def _finding(self, cycle: int, severity: str, message: str,
                 value: float = 0.0) -> InvariantFinding:
        return InvariantFinding(
            monitor=self.name, cycle=cycle, severity=severity,
            message=message, value=value,
        )


class MassConservationMonitor(InvariantMonitor):
    """Mass conservation with per-fault-event drift attribution.

    Checks, for every AGGREGATE_AVG column, that the participants' sum
    moved exactly by the engine's attributed deltas. The tolerance is
    floating-point-scaled: each cycle's expectation is re-anchored on
    the previous cycle's *measured* sums, so rounding error does not
    accumulate across cycles.
    """

    name = "mass"

    def __init__(self, atol: float = 1e-7, rtol: float = 1e-12):
        self.atol = atol
        self.rtol = rtol
        self._expected: Optional[np.ndarray] = None
        self.attributed: Dict[str, float] = {}
        self.max_residual = 0.0
        self.cycles_checked = 0

    def _mean_columns(self, engine) -> List[int]:
        return [
            index
            for index, function in enumerate(engine.aggregate_functions)
            if isinstance(function, MeanAggregate)
        ]

    def observe(self, engine, cycle, ledger, rebase):
        sums = engine.participant_sums()
        columns = self._mean_columns(engine)
        anchored = (
            self._expected is not None
            and len(self._expected) == len(sums)
            and not rebase
        )
        expected = (
            self._expected.astype(np.float64, copy=True)
            if anchored
            else None
        )
        # attribution is cumulative bookkeeping, never skipped — the
        # residual *check* below is what needs a previous-cycle anchor
        for key, delta in ledger.items():
            delta = np.asarray(delta, dtype=np.float64)
            if expected is not None:
                expected += delta
            contribution = float(delta[columns].sum()) if columns else 0.0
            self.attributed[key] = (
                self.attributed.get(key, 0.0) + contribution
            )
        if not anchored:
            # first observation, or the cycle deliberately re-seeded
            # state (epoch restart / instance rebuild): re-anchor
            self._expected = np.asarray(sums, dtype=np.float64).copy()
            return []
        findings = []
        scale = float(max(1.0, engine.participant_count))
        for column in columns:
            residual = float(sums[column] - expected[column])
            tolerance = self.atol + self.rtol * (
                abs(float(expected[column])) + scale
            )
            self.max_residual = max(self.max_residual, abs(residual))
            if abs(residual) > tolerance:
                findings.append(self._finding(
                    cycle, "violation",
                    f"instance column {column}: participant mass moved by "
                    f"{residual:+.3e} beyond every attributed event "
                    f"(tolerance {tolerance:.3e})",
                    value=residual,
                ))
        self.cycles_checked += 1
        self._expected = np.asarray(sums, dtype=np.float64).copy()
        return findings

    @property
    def fault_drift(self) -> float:
        """Net attributed mass drift caused by message faults (partial
        exchanges + duplicates, offset by retransmission repairs).
        Exactly ``0.0`` when no fault event ever fired."""
        return sum(
            self.attributed.get(key, 0.0) for key in FAULT_LEDGER_KEYS
        )

    def summary(self) -> dict:
        return {
            "cycles_checked": self.cycles_checked,
            "attributed": dict(self.attributed),
            "fault_drift": self.fault_drift,
            "max_residual": self.max_residual,
        }


class VarianceMonotonicityMonitor(InvariantMonitor):
    """σ² never increases — valid only in the fault-free static
    setting (no churn, loss, message faults, crashes, partitions or
    adversaries), where every AVG exchange provably reduces the sum of
    squared deviations. Self-disables (reports nothing) on scenarios
    where the premise does not hold."""

    name = "variance"

    def __init__(self, rtol: float = 1e-9):
        self.rtol = rtol
        self._applicable: Optional[bool] = None
        self._last: Dict[int, float] = {}
        self._initial: Dict[int, float] = {}
        self.cycles_checked = 0

    def _check_applicable(self, engine) -> bool:
        scenario = engine.scenario
        return (
            not scenario.is_dynamic
            and scenario.loss_probability == 0.0
            and scenario.loss_schedule is None
            and scenario.message_faults is None
            and scenario.crash_plan is None
            and scenario.partition is None
            and scenario.adversary is None
        )

    def observe(self, engine, cycle, ledger, rebase):
        if self._applicable is None:
            self._applicable = self._check_applicable(engine)
        if not self._applicable:
            return []
        findings = []
        for column, function in enumerate(engine.aggregate_functions):
            if not isinstance(function, MeanAggregate):
                continue
            name = engine.instance_names[column]
            variance = engine.variance(name)
            if column in self._last:
                previous = self._last[column]
                tolerance = self.rtol * previous + 1e-15 * (
                    self._initial.get(column, 1.0) + 1.0
                )
                if variance > previous + tolerance:
                    findings.append(self._finding(
                        cycle, "violation",
                        f"instance {name!r}: variance rose from "
                        f"{previous:.6e} to {variance:.6e} in a "
                        f"fault-free static run",
                        value=variance - previous,
                    ))
            else:
                self._initial[column] = variance
            self._last[column] = variance
        self.cycles_checked += 1
        return findings

    def summary(self) -> dict:
        return {
            "applicable": bool(self._applicable),
            "cycles_checked": self.cycles_checked,
        }


class StructureMonitor(InvariantMonitor):
    """Lifecycle bookkeeping consistency: participants are a subset of
    alive nodes, the recycled-slot free list holds unique dead slots,
    and (under churn/epochs) allocated slots are exactly partitioned
    into alive + recyclable + never-used."""

    name = "structure"

    def __init__(self):
        self.cycles_checked = 0

    def observe(self, engine, cycle, ledger, rebase):
        snapshot = engine.structure_snapshot()
        alive = snapshot["alive"]
        participant = snapshot["participant"]
        free_slots = snapshot["free_slots"]
        capacity = snapshot["capacity"]
        top = snapshot["top"]
        findings = []
        ghosts = int(np.count_nonzero(participant & ~alive))
        if ghosts:
            findings.append(self._finding(
                cycle, "violation",
                f"{ghosts} participant slot(s) are not alive",
                value=float(ghosts),
            ))
        if len(set(free_slots)) != len(free_slots):
            findings.append(self._finding(
                cycle, "violation",
                "the recycled-slot free list holds duplicate slots",
                value=float(len(free_slots)),
            ))
        free_array = np.asarray(free_slots, dtype=np.int64)
        if len(free_array):
            if int(free_array.max()) >= top:
                findings.append(self._finding(
                    cycle, "violation",
                    "a free-listed slot was never allocated "
                    f"(>= top {top})",
                ))
            resurrected = int(np.count_nonzero(alive[free_array]))
            if resurrected:
                findings.append(self._finding(
                    cycle, "violation",
                    f"{resurrected} free-listed slot(s) are still alive",
                    value=float(resurrected),
                ))
        if snapshot["dynamic"]:
            accounted = (
                int(alive.sum()) + len(free_slots) + (capacity - top)
            )
            if accounted != capacity:
                findings.append(self._finding(
                    cycle, "violation",
                    f"slot accounting broke: {int(alive.sum())} alive + "
                    f"{len(free_slots)} free + {capacity - top} unused "
                    f"!= capacity {capacity}",
                    value=float(accounted - capacity),
                ))
        self.cycles_checked += 1
        return findings

    def summary(self) -> dict:
        return {"cycles_checked": self.cycles_checked}


def standard_monitors() -> List[InvariantMonitor]:
    """Fresh instances of the standard monitor set (what
    ``REPRO_STRICT_INVARIANTS=1`` arms on every engine)."""
    return [
        MassConservationMonitor(),
        VarianceMonotonicityMonitor(),
        StructureMonitor(),
    ]
