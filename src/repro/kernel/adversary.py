"""Declarative adversary models for kernel scenarios.

The paper's practical-issues discussion (and the fault-tolerance
related work: self-stabilization under malicious actions,
byzantine-tolerant consensus) asks what happens to epidemic aggregation
when some nodes are not merely *failing* but *hostile*. An
:class:`AdversarySpec` attaches to a
:class:`~repro.kernel.scenario.Scenario` and is applied entirely by
:class:`~repro.kernel.engine.GossipEngine` — the adversary set is drawn
from the engine RNG, state corruption happens as engine-side matrix
writes before the exchange batch, and exchange filtering joins the
fused ok-mask pass. Execution backends never see the spec, so the
bitwise backend-equivalence contract (reference == vectorized ==
sharded) holds under any adversary configuration.

Four adversary kinds:

``"inject"``
    Stubborn in-protocol value injection: every cycle, each adversarial
    node resets its whole row (all aggregation instances) to ``value``
    *before* gossiping, then follows the protocol. This is the attack
    that actually poisons honest state — injected mass spreads through
    ordinary exchanges, so even robust read-out reductions degrade as
    the fraction grows.

``"lying"``
    Byzantine *responders at observation time*: adversarial nodes run
    the protocol honestly but report ``value`` whenever estimates are
    read out (:meth:`GossipEngine.reported_column`). The gossip state is
    untouched, which is exactly the contamination model under which a
    median or trimmed mean over per-node reports stays accurate below
    its breakdown point while the plain mean diverges.

``"partition"``
    Targeted partition: every exchange crossing the honest/adversarial
    boundary fails, isolating the target set from the rest of the
    overlay (a partition aimed at *nodes*, complementing the group-based
    :class:`~repro.failures.partition.PartitionSchedule`).

``"eclipse"``
    Neighbor capture on a fixed overlay: every honest node adjacent to
    at least one adversarial node has *all* its partner draws redirected
    to an adversarial neighbor (the precomputed capture table; on CSR
    overlays the smallest-id adversarial neighbor, on the complete
    overlay a per-victim uniformly drawn captor). Static overlays only —
    churn/epoch scenarios draw partners uniformly among current
    participants, so there is no neighbor structure to capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..topology.base import AdjacencyTopology, Topology
from ..topology.complete import CompleteTopology

#: accepted :attr:`AdversarySpec.kind` values
ADVERSARY_KINDS = ("inject", "lying", "partition", "eclipse")


@dataclass(frozen=True)
class AdversarySpec:
    """One adversary configuration, fully specified.

    Parameters
    ----------
    kind:
        One of :data:`ADVERSARY_KINDS` (semantics in the module
        docstring).
    fraction:
        Fraction of the initial network drawn (uniformly, without
        replacement, from the engine RNG) as adversarial. The count is
        ``round(fraction * n)``; a fraction of ``0.0`` consumes no RNG
        at all, so the run's trajectory is bitwise-identical to the same
        scenario without an adversary.
    value:
        The injected / reported value (``inject`` and ``lying``;
        ignored by ``partition`` and ``eclipse``).
    nodes:
        Explicit adversarial node ids; overrides ``fraction`` and
        consumes no RNG. Useful for single-node edge cases and
        structure-aware placements.
    start, end:
        Half-open active cycle window ``[start, end)``; ``end=None``
        means the adversary never deactivates. Outside the window the
        spec is inert (``inject`` stops overwriting, ``lying`` reports
        honestly, ``partition``/``eclipse`` stop filtering/redirecting).

    Adversarial slots persist under churn: a joiner recycled into an
    adversarial slot inherits the flag (the attacker holds the
    *position* in the overlay), while slots from capacity growth are
    always honest.
    """

    kind: str
    fraction: float = 0.0
    value: float = 0.0
    nodes: Optional[Tuple[int, ...]] = None
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; expected one of "
                f"{ADVERSARY_KINDS}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"adversary fraction must be in [0, 1], got {self.fraction}"
            )
        if not np.isfinite(self.value):
            raise ConfigurationError(
                f"adversary value must be finite, got {self.value}"
            )
        if self.nodes is not None:
            ids = tuple(sorted(int(node) for node in self.nodes))
            if len(set(ids)) != len(ids):
                raise ConfigurationError(
                    f"adversary nodes contain duplicates: {self.nodes}"
                )
            if ids and ids[0] < 0:
                raise ConfigurationError(
                    f"adversary node ids must be non-negative, got {ids[0]}"
                )
            object.__setattr__(self, "nodes", ids)
        if self.start < 0:
            raise ConfigurationError(
                f"adversary start cycle must be >= 0, got {self.start}"
            )
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError(
                f"adversary window [{self.start}, {self.end}) is empty"
            )

    def active_at(self, cycle: int) -> bool:
        """Whether the adversary acts at ``cycle``."""
        if cycle < self.start:
            return False
        return self.end is None or cycle < self.end

    def resolve_nodes(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """The adversarial slot ids for an initial network of ``n``.

        Explicit ``nodes`` are validated against ``n`` and returned
        as-is; otherwise ``round(fraction * n)`` ids are drawn
        uniformly without replacement. Sorted either way, and the RNG
        is consumed only when a strict subset is actually drawn.
        """
        if self.nodes is not None:
            ids = np.asarray(self.nodes, dtype=np.int64)
            if len(ids) and ids[-1] >= n:
                raise ConfigurationError(
                    f"adversary node id {int(ids[-1])} out of range for "
                    f"{n} nodes"
                )
            return ids
        count = int(round(self.fraction * n))
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        if count >= n:
            return np.arange(n, dtype=np.int64)
        return np.sort(rng.choice(n, size=count, replace=False))

    def eclipse_redirects(
        self,
        topology: Topology,
        adversary_mask: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """The eclipse capture table: ``redirect[i]`` is the adversarial
        neighbor that captures honest node ``i``'s partner draws, or
        ``-1`` for uncaptured nodes (no adversarial neighbor, or ``i``
        itself adversarial).

        On CSR overlays capture is structural and deterministic (the
        smallest-id adversarial neighbor); on the complete overlay every
        honest node is adjacent to every adversary, so each victim's
        captor is drawn uniformly from the adversary set — one batched
        draw from the engine RNG at engine construction.
        """
        n = topology.n
        redirect = np.full(n, -1, dtype=np.int32)
        adversaries = np.flatnonzero(adversary_mask)
        if len(adversaries) in (0, n):
            return redirect
        honest = np.flatnonzero(~adversary_mask)
        if isinstance(topology, CompleteTopology):
            picks = rng.integers(0, len(adversaries), size=len(honest))
            redirect[honest] = adversaries[picks].astype(np.int32)
            return redirect
        if isinstance(topology, AdjacencyTopology):
            # both directions of every undirected edge, filtered to
            # honest -> adversarial, then the smallest captor per victim
            edges = topology.edge_array()
            src = np.concatenate([edges[:, 0], edges[:, 1]])
            dst = np.concatenate([edges[:, 1], edges[:, 0]])
            captured = ~adversary_mask[src] & adversary_mask[dst]
            src, dst = src[captured], dst[captured]
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
            first = np.ones(len(src), dtype=bool)
            first[1:] = src[1:] != src[:-1]
            redirect[src[first]] = dst[first].astype(np.int32)
            return redirect
        # exotic topology: per-node fallback through the public API
        for node in honest:
            neighbors = np.asarray(topology.neighbors(int(node)))
            captors = neighbors[adversary_mask[neighbors]]
            if len(captors):
                redirect[node] = int(captors[0])
        return redirect
