"""Pluggable execution backends for the gossip kernel.

A backend's job is small and precisely bounded: given the kernel's
``(n, k)`` value matrix (one column per aggregation instance) and one
cycle's worth of *successful* exchanges — endpoint index arrays, in
step order — apply every exchange's AGGREGATE to both endpoints.
Everything stochastic (neighbor draws, loss coins, crash schedules,
pair-mode GETPAIR sequences) already happened in the engine, so
backends are deterministic functions of their inputs and can be
swapped freely. The same contract serves both execution modes: in
exchange mode the arrays are GETPAIR_SEQ initiations, in pair mode
(:class:`~repro.kernel.pairs.PairProtocolSpec`) they are the ``N``
elementary midpoint steps of one AVG cycle — PM's two matching halves
resolve into exactly two conflict-free batches, while RAND/SEQ/PMRAND
sequences are greedily segmented by the same first-occurrence rule.

Two implementations:

* :class:`ReferenceBackend` — the semantic oracle: a plain sequential
  Python loop in exchange order, structurally the same code the
  original ``CycleSimulator`` ran. Kept honest and simple.
* :class:`VectorizedBackend` — the scale path: processes exchanges in
  conflict-free batches via numpy gather/scatter. Batches are selected
  by first-occurrence of each endpoint among the pending exchanges,
  which preserves per-node exchange order; exchanges that share no node
  commute exactly, so the result is **bitwise identical** to the
  sequential reference execution (the cross-backend equivalence suite
  asserts this).

The first-occurrence test is O(m) per batch with no sorting: a scatter
of positions into an ``n``-sized scratch array (last write wins, so
writing positions in reverse leaves the *first* occurrence) followed by
one gather.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError, SimulationError


#: contiguous steps per greedy-segmentation window in the vectorized
#: pair path. Executing each window to completion before the next
#: trivially preserves global step order, and within a few thousand
#: steps node collisions are rare (1–3 batches instead of ~max φ), so
#: the first-occurrence scans touch far fewer elements and stay
#: cache-resident.
PAIR_CHUNK = 4096


class ExecutionBackend(ABC):
    """Applies one cycle's successful exchanges to the value matrix."""

    #: identifier used in Scenario.backend and reports
    name: str = "abstract"

    @abstractmethod
    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Apply exchanges ``(exch_i[t], exch_j[t])`` for t = 0..m-1, in
        order, to ``matrix`` in place.

        ``matrix`` is the ``(n, k)`` structure-of-arrays node state;
        ``functions`` holds the per-column AGGREGATE. ``trace`` is an
        optional :class:`~repro.simulator.trace.ExchangeTrace` (only the
        reference backend supports it, and only for k = 1).
        """

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Apply one pair-mode cycle's elementary steps, in step order.

        Semantically identical to :meth:`apply_exchanges`; ``plan`` is
        an optional tuple of ``(start, end, conflict_free)`` segments
        covering the sequence, marking stretches that are node-disjoint
        *by construction* (PM's matching halves). Sequential backends
        may ignore it; the vectorized backend applies a conflict-free
        segment as a single batch with no segmentation scan.
        """
        self.apply_exchanges(
            matrix, functions, pairs_i, pairs_j, cycle=cycle, trace=trace
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReferenceBackend(ExecutionBackend):
    """Sequential exchange-order execution — the semantic oracle."""

    name = "reference"

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if len(exch_i) == 0:
            return
        pairs = zip(exch_i.tolist(), exch_j.tolist())
        k = matrix.shape[1]
        if k == 1:
            values = matrix[:, 0].tolist()
            function = functions[0]
            if isinstance(function, MeanAggregate) and trace is None:
                # tight AGGREGATE_AVG path: list indexing beats numpy
                # scalar indexing by ~5x in the sequential loop
                for i, j in pairs:
                    midpoint = (values[i] + values[j]) * 0.5
                    values[i] = midpoint
                    values[j] = midpoint
            else:
                combine = function.combine
                for i, j in pairs:
                    before_i, before_j = values[i], values[j]
                    combined = combine(before_i, before_j)
                    values[i] = combined
                    values[j] = combined
                    if trace is not None:
                        trace.record(
                            float(cycle), i, j, before_i, before_j, combined
                        )
            matrix[:, 0] = values
            return
        if trace is not None:
            raise SimulationError(
                "exchange tracing supports single-instance runs only"
            )
        columns = [matrix[:, c].tolist() for c in range(k)]
        combines = [function.combine for function in functions]
        for i, j in pairs:
            for column, combine in zip(columns, combines):
                combined = combine(column[i], column[j])
                column[i] = combined
                column[j] = combined
        for c, column in enumerate(columns):
            matrix[:, c] = column


class VectorizedBackend(ExecutionBackend):
    """Batched structure-of-arrays execution — the scale path."""

    name = "vectorized"

    def __init__(self):
        self._scratch: Optional[np.ndarray] = None
        self._flat: Optional[np.ndarray] = None
        self._slots: Optional[np.ndarray] = None

    def _position_scratch(self, n: int) -> np.ndarray:
        if self._scratch is None or len(self._scratch) < n:
            self._scratch = np.empty(n, dtype=np.int32)
        return self._scratch

    def _chunk_buffers(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reused interleave/slot-number buffers for one greedy window."""
        if self._flat is None or len(self._flat) < size:
            self._flat = np.empty(size, dtype=np.int32)
            self._slots = np.arange(size, dtype=np.int32)
        return self._flat, self._slots

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the vectorized backend does not support exchange tracing; "
                "use backend='reference'"
            )
        pending_i = np.asarray(exch_i, dtype=np.int32)
        pending_j = np.asarray(exch_j, dtype=np.int32)
        k = matrix.shape[1]
        position = self._position_scratch(matrix.shape[0])
        while len(pending_i):
            m = len(pending_i)
            flat = np.empty(2 * m, dtype=np.int32)
            flat[0::2] = pending_i
            flat[1::2] = pending_j
            # position[v] <- first slot where node v occurs: scatter slot
            # numbers in reverse so the earliest write lands last
            slots = np.arange(2 * m, dtype=np.int32)
            position[flat[::-1]] = slots[::-1]
            first = position[flat] == slots
            # an exchange is ready when no earlier pending exchange
            # touches either endpoint; ready exchanges are node-disjoint
            ready = first[0::2] & first[1::2]
            batch_i = pending_i[ready]
            batch_j = pending_j[ready]
            if k == 1:
                column = matrix[:, 0]
                combined = functions[0].combine_array(
                    column[batch_i], column[batch_j]
                )
                column[batch_i] = combined
                column[batch_j] = combined
            else:
                # gather whole rows once (contiguous k-wide blocks) and
                # combine column-wise on the compact copies
                rows_i = matrix[batch_i]
                rows_j = matrix[batch_j]
                combined_rows = np.empty_like(rows_i)
                for c, function in enumerate(functions):
                    combined_rows[:, c] = function.combine_array(
                        rows_i[:, c], rows_j[:, c]
                    )
                matrix[batch_i] = combined_rows
                matrix[batch_j] = combined_rows
            keep = ~ready
            pending_i = pending_i[keep]
            pending_j = pending_j[keep]

    # -- pair mode --------------------------------------------------------

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Pair-mode fast path.

        Conflict-free segments of the plan (PM's matching halves) are
        applied as single scatter batches with no segmentation scan;
        everything else goes through :meth:`_apply_greedy`, the chunked
        order-preserving greedy segmentation. Bitwise-identical to the
        sequential reference execution either way.
        """
        if trace is not None:
            raise SimulationError(
                "the vectorized backend does not support exchange tracing; "
                "use backend='reference'"
            )
        pi = np.ascontiguousarray(pairs_i, dtype=np.int32)
        pj = np.ascontiguousarray(pairs_j, dtype=np.int32)
        k = matrix.shape[1]
        if plan is None:
            plan = ((0, len(pi), False),)
        for start, end, conflict_free in plan:
            if conflict_free:
                self._apply_batch(
                    matrix, functions, pi[start:end], pj[start:end], k
                )
            else:
                self._apply_greedy(
                    matrix, functions, pi[start:end], pj[start:end], k
                )

    def _apply_batch(self, matrix, functions, batch_i, batch_j, k) -> None:
        """Apply one node-disjoint batch of exchanges."""
        if k == 1:
            column = matrix[:, 0]
            combined = functions[0].combine_array(
                column[batch_i], column[batch_j]
            )
            column[batch_i] = combined
            column[batch_j] = combined
            return
        rows_i = matrix[batch_i]
        rows_j = matrix[batch_j]
        combined_rows = np.empty_like(rows_i)
        for c, function in enumerate(functions):
            combined_rows[:, c] = function.combine_array(
                rows_i[:, c], rows_j[:, c]
            )
        matrix[batch_i] = combined_rows
        matrix[batch_j] = combined_rows

    def _apply_greedy(self, matrix, functions, pending_i, pending_j, k) -> None:
        """Chunked greedy segmentation over an arbitrary pair sequence.

        The sequence is cut into contiguous ``PAIR_CHUNK``-step windows
        executed to completion in order (which preserves global step
        order for free); within a window, first-occurrence batches are
        peeled off exactly like the exchange path, with buffers reused
        across iterations.
        """
        position = self._position_scratch(matrix.shape[0])
        flat_buffer, slot_numbers = self._chunk_buffers(2 * PAIR_CHUNK)
        for lo in range(0, len(pending_i), PAIR_CHUNK):
            chunk_i = pending_i[lo:lo + PAIR_CHUNK]
            chunk_j = pending_j[lo:lo + PAIR_CHUNK]
            while True:
                m = len(chunk_i)
                flat = flat_buffer[:2 * m]
                flat[0::2] = chunk_i
                flat[1::2] = chunk_j
                slots = slot_numbers[:2 * m]
                position[flat[::-1]] = slots[::-1]
                first = position[flat] == slots
                ready = first[0::2] & first[1::2]
                if ready.all():
                    self._apply_batch(matrix, functions, chunk_i, chunk_j, k)
                    break
                self._apply_batch(
                    matrix, functions, chunk_i[ready], chunk_j[ready], k
                )
                keep = ~ready
                chunk_i = chunk_i[keep]
                chunk_j = chunk_j[keep]


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by concrete name (not ``"auto"``; resolve
    that via :meth:`Scenario.resolve_backend` first)."""
    if name == "reference":
        return ReferenceBackend()
    if name == "vectorized":
        return VectorizedBackend()
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected 'reference' or "
        f"'vectorized'"
    )
