"""Pluggable execution backends for the gossip kernel.

A backend's job is small and precisely bounded: given the kernel's
``(n, k)`` value matrix (one column per aggregation instance) and one
cycle's worth of *successful* exchanges — endpoint index arrays, in
GETPAIR_SEQ initiation order — apply every exchange's AGGREGATE to both
endpoints. Everything stochastic (neighbor draws, loss coins, crash
schedules) already happened in the engine, so backends are
deterministic functions of their inputs and can be swapped freely.

Two implementations:

* :class:`ReferenceBackend` — the semantic oracle: a plain sequential
  Python loop in exchange order, structurally the same code the
  original ``CycleSimulator`` ran. Kept honest and simple.
* :class:`VectorizedBackend` — the scale path: processes exchanges in
  conflict-free batches via numpy gather/scatter. Batches are selected
  by first-occurrence of each endpoint among the pending exchanges,
  which preserves per-node exchange order; exchanges that share no node
  commute exactly, so the result is **bitwise identical** to the
  sequential reference execution (the cross-backend equivalence suite
  asserts this).

The first-occurrence test is O(m) per batch with no sorting: a scatter
of positions into an ``n``-sized scratch array (last write wins, so
writing positions in reverse leaves the *first* occurrence) followed by
one gather.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError, SimulationError


class ExecutionBackend(ABC):
    """Applies one cycle's successful exchanges to the value matrix."""

    #: identifier used in Scenario.backend and reports
    name: str = "abstract"

    @abstractmethod
    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Apply exchanges ``(exch_i[t], exch_j[t])`` for t = 0..m-1, in
        order, to ``matrix`` in place.

        ``matrix`` is the ``(n, k)`` structure-of-arrays node state;
        ``functions`` holds the per-column AGGREGATE. ``trace`` is an
        optional :class:`~repro.simulator.trace.ExchangeTrace` (only the
        reference backend supports it, and only for k = 1).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReferenceBackend(ExecutionBackend):
    """Sequential exchange-order execution — the semantic oracle."""

    name = "reference"

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if len(exch_i) == 0:
            return
        pairs = zip(exch_i.tolist(), exch_j.tolist())
        k = matrix.shape[1]
        if k == 1:
            values = matrix[:, 0].tolist()
            function = functions[0]
            if isinstance(function, MeanAggregate) and trace is None:
                # tight AGGREGATE_AVG path: list indexing beats numpy
                # scalar indexing by ~5x in the sequential loop
                for i, j in pairs:
                    midpoint = (values[i] + values[j]) * 0.5
                    values[i] = midpoint
                    values[j] = midpoint
            else:
                combine = function.combine
                for i, j in pairs:
                    before_i, before_j = values[i], values[j]
                    combined = combine(before_i, before_j)
                    values[i] = combined
                    values[j] = combined
                    if trace is not None:
                        trace.record(
                            float(cycle), i, j, before_i, before_j, combined
                        )
            matrix[:, 0] = values
            return
        if trace is not None:
            raise SimulationError(
                "exchange tracing supports single-instance runs only"
            )
        columns = [matrix[:, c].tolist() for c in range(k)]
        combines = [function.combine for function in functions]
        for i, j in pairs:
            for column, combine in zip(columns, combines):
                combined = combine(column[i], column[j])
                column[i] = combined
                column[j] = combined
        for c, column in enumerate(columns):
            matrix[:, c] = column


class VectorizedBackend(ExecutionBackend):
    """Batched structure-of-arrays execution — the scale path."""

    name = "vectorized"

    def __init__(self):
        self._scratch: Optional[np.ndarray] = None

    def _position_scratch(self, n: int) -> np.ndarray:
        if self._scratch is None or len(self._scratch) < n:
            self._scratch = np.empty(n, dtype=np.int32)
        return self._scratch

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the vectorized backend does not support exchange tracing; "
                "use backend='reference'"
            )
        pending_i = np.asarray(exch_i, dtype=np.int32)
        pending_j = np.asarray(exch_j, dtype=np.int32)
        k = matrix.shape[1]
        position = self._position_scratch(matrix.shape[0])
        while len(pending_i):
            m = len(pending_i)
            flat = np.empty(2 * m, dtype=np.int32)
            flat[0::2] = pending_i
            flat[1::2] = pending_j
            # position[v] <- first slot where node v occurs: scatter slot
            # numbers in reverse so the earliest write lands last
            slots = np.arange(2 * m, dtype=np.int32)
            position[flat[::-1]] = slots[::-1]
            first = position[flat] == slots
            # an exchange is ready when no earlier pending exchange
            # touches either endpoint; ready exchanges are node-disjoint
            ready = first[0::2] & first[1::2]
            batch_i = pending_i[ready]
            batch_j = pending_j[ready]
            if k == 1:
                column = matrix[:, 0]
                combined = functions[0].combine_array(
                    column[batch_i], column[batch_j]
                )
                column[batch_i] = combined
                column[batch_j] = combined
            else:
                # gather whole rows once (contiguous k-wide blocks) and
                # combine column-wise on the compact copies
                rows_i = matrix[batch_i]
                rows_j = matrix[batch_j]
                combined_rows = np.empty_like(rows_i)
                for c, function in enumerate(functions):
                    combined_rows[:, c] = function.combine_array(
                        rows_i[:, c], rows_j[:, c]
                    )
                matrix[batch_i] = combined_rows
                matrix[batch_j] = combined_rows
            keep = ~ready
            pending_i = pending_i[keep]
            pending_j = pending_j[keep]


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by concrete name (not ``"auto"``; resolve
    that via :meth:`Scenario.resolve_backend` first)."""
    if name == "reference":
        return ReferenceBackend()
    if name == "vectorized":
        return VectorizedBackend()
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected 'reference' or "
        f"'vectorized'"
    )
