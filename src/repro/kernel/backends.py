"""Pluggable execution backends for the gossip kernel.

A backend's job is small and precisely bounded: given the kernel's
``(n, k)`` value matrix (one column per aggregation instance) and one
cycle's worth of *successful* exchanges — endpoint index arrays, in
step order — apply every exchange's AGGREGATE to both endpoints.
Everything stochastic (neighbor draws, loss coins, crash schedules,
pair-mode GETPAIR sequences) already happened in the engine, so
backends are deterministic functions of their inputs and can be
swapped freely. The same contract serves both execution modes: in
exchange mode the arrays are GETPAIR_SEQ initiations, in pair mode
(:class:`~repro.kernel.pairs.PairProtocolSpec`) they are the ``N``
elementary midpoint steps of one AVG cycle — PM's two matching halves
resolve into exactly two conflict-free batches, while RAND/SEQ/PMRAND
sequences are greedily segmented by the same first-occurrence rule.

Two implementations:

* :class:`ReferenceBackend` — the semantic oracle: a plain sequential
  Python loop in exchange order, structurally the same code the
  original ``CycleSimulator`` ran. Kept honest and simple.
* :class:`VectorizedBackend` — the scale path: processes exchanges in
  conflict-free batches via numpy gather/scatter. Batches are selected
  by first-occurrence of each endpoint among the pending exchanges,
  which preserves per-node exchange order; exchanges that share no node
  commute exactly, so the result is **bitwise identical** to the
  sequential reference execution (the cross-backend equivalence suite
  asserts this).

The first-occurrence test is O(m) per batch with no sorting: a scatter
of positions into an ``n``-sized scratch array (last write wins, so
writing positions in reverse leaves the *first* occurrence) followed by
one gather.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError, SimulationError


#: default number of contiguous steps per greedy-segmentation window in
#: the vectorized backend. Executing each window to completion before
#: the next trivially preserves global step order, and within a few
#: thousand steps node collisions are rare (1–3 batches instead of
#: ~max φ), so the first-occurrence scans touch far fewer elements and
#: stay cache-resident. Tunable per machine via the ``REPRO_PAIR_CHUNK``
#: environment variable or per run via
#: :attr:`~repro.kernel.pairs.PairProtocolSpec.chunk`.
PAIR_CHUNK = 4096

#: once a greedy window has this few pending steps left, finish it
#: sequentially: batch sizes decay geometrically, so the tail of the
#: peel loop pays a full first-occurrence scan (a dozen numpy calls)
#: per handful of steps. Purely a constant-factor knob — results stay
#: bitwise-identical.
GREEDY_TAIL = 48


def resolve_chunk(chunk: Optional[int] = None) -> int:
    """The effective greedy-segmentation window size.

    Precedence: an explicit ``chunk`` (e.g. from
    :attr:`PairProtocolSpec.chunk`), then the ``REPRO_PAIR_CHUNK``
    environment variable, then the :data:`PAIR_CHUNK` default. Raises
    :class:`ConfigurationError` on non-positive or non-integer values.
    """
    if chunk is None:
        env = os.environ.get("REPRO_PAIR_CHUNK", "").strip()
        if not env:
            return PAIR_CHUNK
        try:
            chunk = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_PAIR_CHUNK must be a positive integer, got {env!r}"
            ) from None
    if isinstance(chunk, bool) or not isinstance(chunk, (int, np.integer)):
        raise ConfigurationError(
            f"pair chunk must be a positive integer, got {chunk!r}"
        )
    if chunk < 1:
        raise ConfigurationError(
            f"pair chunk must be a positive integer, got {chunk}"
        )
    return int(chunk)


class ExecutionBackend(ABC):
    """Applies one cycle's successful exchanges to the value matrix."""

    #: identifier used in Scenario.backend and reports
    name: str = "abstract"

    @abstractmethod
    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Apply exchanges ``(exch_i[t], exch_j[t])`` for t = 0..m-1, in
        order, to ``matrix`` in place.

        ``matrix`` is the ``(n, k)`` structure-of-arrays node state;
        ``functions`` holds the per-column AGGREGATE. ``trace`` is an
        optional :class:`~repro.simulator.trace.ExchangeTrace` (only the
        reference backend supports it, and only for k = 1).
        """

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        chunk: Optional[int] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Apply one pair-mode cycle's elementary steps, in step order.

        Semantically identical to :meth:`apply_exchanges`; ``plan`` is
        an optional tuple of ``(start, end, conflict_free)`` segments
        covering the sequence, marking stretches that are node-disjoint
        *by construction* (PM's matching halves). Sequential backends
        may ignore it; the vectorized backend applies a conflict-free
        segment as a single batch with no segmentation scan. ``chunk``
        optionally overrides the greedy-segmentation window size
        (:func:`resolve_chunk`); it never changes results, only batch
        shapes.
        """
        self.apply_exchanges(
            matrix, functions, pairs_i, pairs_j, cycle=cycle, trace=trace
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReferenceBackend(ExecutionBackend):
    """Sequential exchange-order execution — the semantic oracle."""

    name = "reference"

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if len(exch_i) == 0:
            return
        pairs = zip(exch_i.tolist(), exch_j.tolist())
        k = matrix.shape[1]
        if k == 1:
            values = matrix[:, 0].tolist()
            function = functions[0]
            if isinstance(function, MeanAggregate) and trace is None:
                # tight AGGREGATE_AVG path: list indexing beats numpy
                # scalar indexing by ~5x in the sequential loop
                for i, j in pairs:
                    midpoint = (values[i] + values[j]) * 0.5
                    values[i] = midpoint
                    values[j] = midpoint
            else:
                combine = function.combine
                for i, j in pairs:
                    before_i, before_j = values[i], values[j]
                    combined = combine(before_i, before_j)
                    values[i] = combined
                    values[j] = combined
                    if trace is not None:
                        trace.record(
                            float(cycle), i, j, before_i, before_j, combined
                        )
            matrix[:, 0] = values
            return
        if trace is not None:
            raise SimulationError(
                "exchange tracing supports single-instance runs only"
            )
        columns = [matrix[:, c].tolist() for c in range(k)]
        combines = [function.combine for function in functions]
        for i, j in pairs:
            for column, combine in zip(columns, combines):
                combined = combine(column[i], column[j])
                column[i] = combined
                column[j] = combined
        for c, column in enumerate(columns):
            matrix[:, c] = column


class VectorizedBackend(ExecutionBackend):
    """Batched structure-of-arrays execution — the scale path."""

    name = "vectorized"

    def __init__(self, *, chunk: Optional[int] = None):
        self._scratch: Optional[np.ndarray] = None
        self._flat: Optional[np.ndarray] = None
        self._slots: Optional[np.ndarray] = None
        self._chunk = resolve_chunk(chunk)

    def _position_scratch(self, n: int) -> np.ndarray:
        if self._scratch is None or len(self._scratch) < n:
            self._scratch = np.empty(n, dtype=np.int32)
        return self._scratch

    def _chunk_buffers(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reused interleave/slot-number buffers for one greedy window."""
        if self._flat is None or len(self._flat) < size:
            self._flat = np.empty(size, dtype=np.int32)
            self._slots = np.arange(size, dtype=np.int32)
        return self._flat, self._slots

    def apply_exchanges(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        exch_i: np.ndarray,
        exch_j: np.ndarray,
        *,
        cycle: int = 0,
        trace=None,
    ) -> None:
        if trace is not None:
            raise SimulationError(
                "the vectorized backend does not support exchange tracing; "
                "use backend='reference'"
            )
        pending_i = np.ascontiguousarray(exch_i, dtype=np.int32)
        pending_j = np.ascontiguousarray(exch_j, dtype=np.int32)
        if len(pending_i) == 0:
            return
        # same chunked order-preserving greedy segmentation as the pair
        # path, with the interleave/slot buffers reused across windows
        # and cycles (this loop used to allocate fresh flat/slots
        # arrays on every batch iteration)
        self._apply_greedy(
            matrix, functions, pending_i, pending_j, matrix.shape[1],
            self._chunk,
        )

    # -- pair mode --------------------------------------------------------

    def apply_pairs(
        self,
        matrix: np.ndarray,
        functions: Sequence[AggregateFunction],
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        *,
        plan: Optional[Tuple[Tuple[int, int, bool], ...]] = None,
        chunk: Optional[int] = None,
        cycle: int = 0,
        trace=None,
    ) -> None:
        """Pair-mode fast path.

        Conflict-free segments of the plan (PM's matching halves) are
        applied as single scatter batches with no segmentation scan;
        everything else goes through :meth:`_apply_greedy`, the chunked
        order-preserving greedy segmentation. Bitwise-identical to the
        sequential reference execution either way.
        """
        if trace is not None:
            raise SimulationError(
                "the vectorized backend does not support exchange tracing; "
                "use backend='reference'"
            )
        pi = np.ascontiguousarray(pairs_i, dtype=np.int32)
        pj = np.ascontiguousarray(pairs_j, dtype=np.int32)
        k = matrix.shape[1]
        window = self._chunk if chunk is None else resolve_chunk(chunk)
        if plan is None:
            plan = ((0, len(pi), False),)
        for start, end, conflict_free in plan:
            if conflict_free:
                self._apply_batch(
                    matrix, functions, pi[start:end], pj[start:end], k
                )
            else:
                self._apply_greedy(
                    matrix, functions, pi[start:end], pj[start:end], k,
                    window,
                )

    def _apply_batch(self, matrix, functions, batch_i, batch_j, k) -> None:
        """Apply one node-disjoint batch of exchanges."""
        if k == 1:
            column = matrix[:, 0]
            combined = functions[0].combine_array(
                column[batch_i], column[batch_j]
            )
            column[batch_i] = combined
            column[batch_j] = combined
            return
        rows_i = matrix[batch_i]
        rows_j = matrix[batch_j]
        combined_rows = np.empty_like(rows_i)
        for c, function in enumerate(functions):
            combined_rows[:, c] = function.combine_array(
                rows_i[:, c], rows_j[:, c]
            )
        matrix[batch_i] = combined_rows
        matrix[batch_j] = combined_rows

    def _apply_greedy(
        self, matrix, functions, pending_i, pending_j, k, window
    ) -> None:
        """Chunked greedy segmentation over an arbitrary exchange/pair
        sequence.

        The sequence is cut into contiguous ``window``-step stretches
        executed to completion in order (which preserves global step
        order for free); within a window, first-occurrence batches are
        peeled off with the scatter/gather trick, the interleave and
        slot-number buffers reused across iterations. Once a window is
        down to its last few conflicted steps (:data:`GREEDY_TAIL`)
        they run sequentially — the batch sizes decay geometrically, so
        the tail would otherwise burn one full scan per handful of
        steps.
        """
        position = self._position_scratch(matrix.shape[0])
        flat_buffer, slot_numbers = self._chunk_buffers(2 * window)
        for lo in range(0, len(pending_i), window):
            chunk_i = pending_i[lo:lo + window]
            chunk_j = pending_j[lo:lo + window]
            while True:
                m = len(chunk_i)
                if m <= GREEDY_TAIL:
                    self._apply_tail(matrix, functions, chunk_i, chunk_j, k)
                    break
                flat = flat_buffer[:2 * m]
                flat[0::2] = chunk_i
                flat[1::2] = chunk_j
                slots = slot_numbers[:2 * m]
                position[flat[::-1]] = slots[::-1]
                first = position[flat] == slots
                ready = first[0::2] & first[1::2]
                if ready.all():
                    self._apply_batch(matrix, functions, chunk_i, chunk_j, k)
                    break
                self._apply_batch(
                    matrix, functions, chunk_i[ready], chunk_j[ready], k
                )
                keep = ~ready
                chunk_i = chunk_i[keep]
                chunk_j = chunk_j[keep]

    def _apply_tail(self, matrix, functions, tail_i, tail_j, k) -> None:
        """Run the last few steps of a window in sequential step order.

        ``combine_array`` is IEEE-identical to the scalar ``combine``
        (the :class:`~repro.core.aggregates.AggregateFunction`
        contract), so switching to the scalar path mid-window keeps the
        result bitwise-equal to the batched execution.
        """
        if len(tail_i) == 0:
            return
        steps = zip(tail_i.tolist(), tail_j.tolist())
        if k == 1:
            column = matrix[:, 0]
            combine = functions[0].combine
            for i, j in steps:
                combined = combine(column[i], column[j])
                column[i] = combined
                column[j] = combined
            return
        for i, j in steps:
            for c, function in enumerate(functions):
                combined = function.combine(matrix[i, c], matrix[j, c])
                matrix[i, c] = combined
                matrix[j, c] = combined


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by concrete name (not ``"auto"``; resolve
    that via :meth:`Scenario.resolve_backend` first)."""
    if name == "reference":
        return ReferenceBackend()
    if name == "vectorized":
        return VectorizedBackend()
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected 'reference' or "
        f"'vectorized'"
    )
