"""Declarative experiment description consumed by the gossip kernel.

A :class:`Scenario` is the single configuration object every execution
layer understands: it names the overlay, the initial per-node values,
the set of concurrent aggregation instances piggybacked on each
exchange (§4's multi-instance rule), the failure model (message loss,
crash-stop plan, partition schedule, declarative churn), the §4
epoch/restart machinery, the cycle budget, the seed, and
which execution backend should run it. `CycleSimulator`,
`AggregationService`, the CLI and the benchmark drivers all build a
``Scenario`` and hand it to :class:`~repro.kernel.engine.GossipEngine`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.aggregates import AggregateFunction, MeanAggregate
from ..errors import ConfigurationError
from ..failures.churn import ChurnModel
from ..failures.crash import CrashPlan
from ..rng import SeedLike
from ..topology.base import Topology
from ..topology.complete import CompleteTopology
# BACKEND_NAMES is re-exported for back-compat: the canonical
# definition moved to backends/registry.py, but this module was its
# historical home (`from repro.kernel.scenario import BACKEND_NAMES`)
from .backends import BACKEND_NAMES, parse_backend_spec  # noqa: F401
from .adversary import AdversarySpec
from .messages import MessageFaultSpec, RetrySpec
from .lifecycle import ChurnSpec, EpochSpec
from .membership import NewscastSpec, resolve_membership
from .pairs import PairProtocolSpec, TheoremSAggregate

#: ``auto`` switches to the vectorized backend at and above this size.
#: Measured crossover band after the CSR/CyclePlan constant-shaving
#: (see ``benchmarks/bench_sparse.py --crossover``): the five-instance
#: service workload crosses near N ≈ 256, pair-mode PM near N ≈ 512,
#: and the single-instance AGGREGATE_AVG exchange workload — whose
#: reference path is a very tight list loop — near N ≈ 2048. 1024 is
#: the band's conservative midpoint: above it the vectorized backend
#: wins every benchmarked workload by N ≈ 2–3k and is ≥ 5× at paper
#: scale, below it both backends run a cycle in well under a
#: millisecond either way.
AUTO_VECTORIZE_THRESHOLD = 1024


def _default_aggregates() -> Mapping[Hashable, AggregateFunction]:
    return {"mean": MeanAggregate()}


@dataclass(frozen=True)
class Scenario:
    """One gossip experiment, fully specified.

    Parameters
    ----------
    topology:
        The overlay to gossip on.
    values:
        Per-node attribute values ``a_i`` (length ``topology.n``).
    aggregates:
        Ordered mapping of instance id → pairwise AGGREGATE function.
        Every instance rides the *same* push-pull exchange (§4), so one
        engine pass computes all of them. Defaults to a single
        AGGREGATE_AVG instance named ``"mean"``.
    initial:
        Optional per-instance initial vectors overriding ``values``
        (e.g. squared values for a second-moment instance, or the 0/1
        indicator of the §4 counting instance).
    loss_probability:
        Probability that a given exchange fails entirely.
    loss_schedule:
        Optional cycle → loss-probability function; overrides
        ``loss_probability`` when present.
    crash_plan:
        Optional :class:`~repro.failures.crash.CrashPlan`; victims crash
        before their scheduled cycle executes.
    partition:
        Optional :class:`~repro.failures.partition.PartitionSchedule`.
    churn:
        Optional :class:`~repro.kernel.lifecycle.ChurnSpec` (a bare
        :class:`~repro.failures.churn.ChurnModel` is wrapped in a
        default spec). The engine applies it as alive-mask
        growth/shrink plus value-matrix row recycling. Churn scenarios
        model the paper's uniform overlay: partners are drawn uniformly
        among current participants, so the topology must be
        :class:`~repro.topology.complete.CompleteTopology` (it sets the
        initial size).
    epochs:
        Optional :class:`~repro.kernel.lifecycle.EpochSpec` — the §4
        epoch/restart machinery. Implies the same uniform-overlay rule
        as ``churn``; joiners wait for the next epoch start before they
        participate.
    pair_protocol:
        Optional :class:`~repro.kernel.pairs.PairProtocolSpec`. When
        set, the engine runs in *pair mode*: each cycle is ``N``
        elementary midpoint steps from a pre-materialized GETPAIR
        sequence (algorithm AVG, Figure 2) instead of the push-pull
        exchange batches. Pair mode owns the instance layout (an
        ``"avg"`` column, plus an ``"s"`` column when the spec tracks
        Theorem 1's parallel vector) and models the paper's
        failure-free §3 analysis setting — loss, crashes, partitions,
        churn, epochs and adversaries are rejected.
    adversary:
        Optional :class:`~repro.kernel.adversary.AdversarySpec` — value
        injection, byzantine (lying) responders, targeted partitions or
        eclipse-style neighbor capture. Applied entirely by the engine
        (adversary set drawn from the engine RNG, corruption as
        engine-side matrix writes, filtering in the fused ok-mask pass),
        so all backends stay bitwise-equal under any adversary
        configuration. ``eclipse`` requires a static overlay (no
        churn/epochs).
    membership:
        How partner draws are produced — the
        :class:`~repro.kernel.membership.PartnerProvider` layer.
        ``None``/``"oracle"`` (default) keeps the historical draws:
        topology neighbors on static overlays, uniform among current
        participants under churn/epochs. ``"newscast"`` (or a
        :class:`~repro.kernel.membership.NewscastSpec`) replaces the
        oracle with gossip-maintained partial views: partners come
        from each node's Newscast view, refreshed by view exchanges
        on the engine — no global membership oracle anywhere.
        Newscast requires :class:`CompleteTopology` (it supplies its
        own overlay; a CSR overlay underneath it would be ignored)
        and is rejected with ``pair_protocol`` and the ``eclipse``
        adversary (both assume the oracle's draw structure).
    message_faults:
        Optional :class:`~repro.kernel.messages.MessageFaultSpec` —
        the asymmetric message-level fault model: independent
        request-loss and reply-loss probabilities (with per-cycle
        schedules) plus duplication. A lost reply executes the
        *partial* exchange (the partner adopts the combined value, the
        initiator keeps its old one), the mass-drift failure mode the
        paper's practical-issues discussion warns about. Applied
        entirely by the engine, like ``adversary``, so all backends
        stay bitwise-equal. Rejected with ``pair_protocol``.
    retry:
        Optional :class:`~repro.kernel.messages.RetrySpec` — the
        recovery protocol for exchanges that produced no reply:
        timeout detection in cycle units, retransmission (or a fresh
        partner redraw through the membership layer), exponential
        backoff under a retry budget, and an ``accept`` or
        ``push_only`` give-up fallback. Requires ``message_faults``.
    cycles:
        Default cycle budget for :func:`run_scenario`-style drivers.
    seed:
        RNG seed or generator for the whole run.
    backend:
        ``"reference"`` (sequential semantic oracle), ``"vectorized"``
        (structure-of-arrays batched execution), ``"sharded"`` /
        ``"sharded:<workers>"`` / ``"sharded:auto"`` (multi-process
        shared-memory execution; ``auto`` resolves the worker count
        from CPU affinity and falls back to inline in-process
        execution on small matrices) or ``"auto"`` (pick by network
        size; never picks sharded — the worker pool is an explicit
        opt-in).
    """

    topology: Topology
    values: np.ndarray
    aggregates: Mapping[Hashable, AggregateFunction] = field(
        default_factory=_default_aggregates
    )
    initial: Optional[Mapping[Hashable, Sequence[float]]] = None
    loss_probability: float = 0.0
    loss_schedule: Optional[Callable[[int], float]] = None
    crash_plan: Optional[CrashPlan] = None
    partition: Optional[object] = None
    churn: Optional[ChurnSpec] = None
    epochs: Optional[EpochSpec] = None
    pair_protocol: Optional[PairProtocolSpec] = None
    adversary: Optional[AdversarySpec] = None
    membership: Optional[object] = None
    message_faults: Optional[MessageFaultSpec] = None
    retry: Optional[RetrySpec] = None
    cycles: int = 30
    seed: SeedLike = None
    backend: str = "auto"

    def __post_init__(self):
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise ConfigurationError(
                f"values must be one-dimensional, got shape {values.shape}"
            )
        if len(values) != self.topology.n:
            raise ConfigurationError(
                f"got {len(values)} values for a topology of "
                f"{self.topology.n} nodes"
            )
        object.__setattr__(self, "values", values)
        if not self.aggregates:
            raise ConfigurationError("scenario needs at least one aggregate")
        for instance_id, function in self.aggregates.items():
            if not isinstance(function, AggregateFunction):
                raise ConfigurationError(
                    f"aggregate {instance_id!r} is not an AggregateFunction"
                )
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got "
                f"{self.loss_probability}"
            )
        if self.initial is not None:
            unknown = set(self.initial) - set(self.aggregates)
            if unknown:
                raise ConfigurationError(
                    f"initial vectors for unknown instances: {sorted(map(str, unknown))}"
                )
        if self.cycles < 0:
            raise ConfigurationError(
                f"cycles must be non-negative, got {self.cycles}"
            )
        # raises BackendSpecError (a ConfigurationError) on unknown
        # names and malformed "sharded:<workers>" specs
        parse_backend_spec(self.backend, allow_auto=True)
        if self.churn is not None:
            if isinstance(self.churn, ChurnModel):
                object.__setattr__(self, "churn", ChurnSpec(model=self.churn))
            elif not isinstance(self.churn, ChurnSpec):
                raise ConfigurationError(
                    f"churn must be a ChurnSpec or ChurnModel, got "
                    f"{type(self.churn).__name__}"
                )
        if self.epochs is not None and not isinstance(self.epochs, EpochSpec):
            raise ConfigurationError(
                f"epochs must be an EpochSpec, got "
                f"{type(self.epochs).__name__}"
            )
        if self.is_dynamic:
            if self.partition is not None:
                raise ConfigurationError(
                    "partition schedules are not supported together with "
                    "churn/epochs (slot recycling makes static node-id "
                    "groups meaningless)"
                )
            if self.churn is not None and self.crash_plan is not None:
                raise ConfigurationError(
                    "crash plans are not supported together with churn "
                    "(slot recycling re-targets the plan's static node "
                    "ids); model crashes as the churn model's leaves "
                    "instead — crash plans remain valid with epochs alone"
                )
            if not isinstance(self.topology, CompleteTopology):
                raise ConfigurationError(
                    "churn/epoch scenarios model the paper's uniform "
                    "overlay and require CompleteTopology (it fixes the "
                    f"initial size); got {type(self.topology).__name__}"
                )
        # normalize membership to None (oracle) or a NewscastSpec;
        # raises on unknown names/objects
        object.__setattr__(
            self, "membership", resolve_membership(self.membership)
        )
        if self.membership is not None:
            if not isinstance(self.topology, CompleteTopology):
                raise ConfigurationError(
                    "newscast membership supplies its own overlay and "
                    "requires CompleteTopology (it fixes the initial "
                    f"size); got {type(self.topology).__name__}"
                )
            if self.n < 2:
                raise ConfigurationError(
                    "newscast membership needs at least two nodes"
                )
        if self.adversary is not None:
            if not isinstance(self.adversary, AdversarySpec):
                raise ConfigurationError(
                    f"adversary must be an AdversarySpec, got "
                    f"{type(self.adversary).__name__}"
                )
            if self.adversary.kind == "eclipse" and self.is_dynamic:
                raise ConfigurationError(
                    "eclipse capture precomputes a static neighbor "
                    "redirect table; churn/epoch scenarios draw partners "
                    "uniformly among current participants, so there is "
                    "no neighbor structure to capture"
                )
            if (
                self.adversary.kind == "eclipse"
                and self.membership is not None
            ):
                raise ConfigurationError(
                    "eclipse capture redirects oracle topology draws; "
                    "with newscast membership the overlay is the views "
                    "themselves, so there is no draw table to capture"
                )
            if self.adversary.nodes is not None and any(
                node >= self.topology.n for node in self.adversary.nodes
            ):
                raise ConfigurationError(
                    f"adversary nodes {self.adversary.nodes} exceed the "
                    f"topology size {self.topology.n}"
                )
        if self.message_faults is not None and not isinstance(
            self.message_faults, MessageFaultSpec
        ):
            raise ConfigurationError(
                f"message_faults must be a MessageFaultSpec, got "
                f"{type(self.message_faults).__name__}"
            )
        if self.retry is not None:
            if not isinstance(self.retry, RetrySpec):
                raise ConfigurationError(
                    f"retry must be a RetrySpec, got "
                    f"{type(self.retry).__name__}"
                )
            if self.message_faults is None:
                raise ConfigurationError(
                    "retry needs message_faults: the retry protocol "
                    "recovers from request/reply losses, which only the "
                    "message-level fault model produces (symmetric "
                    "loss_probability drops are invisible to both "
                    "endpoints, so there is nothing to retry)"
                )
        if self.pair_protocol is not None:
            self._init_pair_mode()

    def _init_pair_mode(self) -> None:
        """Validate and normalize a pair-mode scenario: the GETPAIR
        protocol defines its own instance layout, and Figure 2's AVG is
        the failure-free analysis setting."""
        spec = self.pair_protocol
        if not isinstance(spec, PairProtocolSpec):
            raise ConfigurationError(
                f"pair_protocol must be a PairProtocolSpec, got "
                f"{type(spec).__name__}"
            )
        if (
            self.loss_probability != 0.0
            or self.loss_schedule is not None
            or self.crash_plan is not None
            or self.partition is not None
            or self.adversary is not None
            or self.membership is not None
            or self.message_faults is not None
            or self.is_dynamic
        ):
            raise ConfigurationError(
                "pair-mode scenarios model the failure-free AVG of "
                "Figure 2; loss, crash plans, partitions, adversaries, "
                "membership providers, message faults, churn and epochs "
                "are not supported with pair_protocol"
            )
        spec.validate_topology(self.topology)
        # pair mode owns the instance layout; accept only the default
        # aggregates or an already-normalized layout (replace() re-runs
        # this hook on the rewritten fields)
        keys = tuple(map(str, self.aggregates))
        if keys not in (("mean",), ("avg",), ("avg", "s")):
            raise ConfigurationError(
                "pair-mode scenarios define their own aggregate columns; "
                "leave `aggregates` at its default"
            )
        if self.initial is not None and set(map(str, self.initial)) != {"s"}:
            raise ConfigurationError(
                "pair-mode scenarios derive their initial columns from "
                "`values`; leave `initial` unset"
            )
        aggregates = {"avg": MeanAggregate()}
        initial = None
        if spec.track_s:
            # Theorem 1's parallel vector, seeded with s_0 = a_0^2
            aggregates["s"] = TheoremSAggregate()
            initial = {"s": self.values * self.values}
        object.__setattr__(self, "aggregates", aggregates)
        object.__setattr__(self, "initial", initial)

    # -- derived views ---------------------------------------------------

    @property
    def n(self) -> int:
        """Network size (initial size under churn)."""
        return self.topology.n

    @property
    def is_dynamic(self) -> bool:
        """Whether membership changes over the run (churn or epochs)."""
        return self.churn is not None or self.epochs is not None

    @property
    def instance_names(self) -> Tuple[Hashable, ...]:
        """Instance ids, in declaration order (column order of the
        kernel's value matrix)."""
        return tuple(self.aggregates)

    @property
    def functions(self) -> Tuple[AggregateFunction, ...]:
        """AGGREGATE functions in column order."""
        return tuple(self.aggregates.values())

    def initial_matrix(self) -> np.ndarray:
        """The ``(n, k)`` structure-of-arrays initial state: one column
        per aggregation instance."""
        columns = []
        for name in self.instance_names:
            if self.initial is not None and name in self.initial:
                column = np.asarray(self.initial[name], dtype=np.float64)
                if column.shape != (self.n,):
                    raise ConfigurationError(
                        f"initial vector for {name!r} has shape "
                        f"{column.shape}, expected ({self.n},)"
                    )
            else:
                column = self.values
            columns.append(column)
        return np.column_stack(columns).astype(np.float64, copy=True)

    def loss_at(self, cycle: int) -> float:
        """Effective loss probability at ``cycle``."""
        if self.loss_schedule is not None:
            p = float(self.loss_schedule(cycle))
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"loss schedule returned {p} at cycle {cycle}"
                )
            return p
        return self.loss_probability

    def resolve_backend(self) -> str:
        """The concrete backend ``auto`` resolves to for this scenario.

        ``auto`` only ever picks an in-process backend; the sharded
        worker pool must be requested explicitly (its spawn cost and
        memory footprint are not worth paying by surprise).
        """
        if self.backend != "auto":
            return self.backend
        if self.n >= AUTO_VECTORIZE_THRESHOLD:
            return "vectorized"
        return "reference"

    def replace(self, **changes) -> "Scenario":
        """A copy of this scenario with ``changes`` applied (the hook
        replication/sweep drivers use to re-seed per run)."""
        return dataclasses.replace(self, **changes)

    def from_checkpoint(self, path, *, backend: Optional[str] = None
                        ) -> "Scenario":
        """This scenario, validated against a checkpoint and ready to
        resume it — optionally on a different ``backend`` (resume is
        bitwise-identical on any of them).

        A checkpoint deliberately serializes no callables (aggregates,
        churn models, epoch hooks), so resuming starts from the
        original scenario object; this hook fails fast — before any
        engine or worker pool is built — when ``path`` was recorded
        under an incompatible configuration. Feed the result to
        :meth:`GossipEngine.restore
        <repro.kernel.engine.GossipEngine.restore>` together with the
        same ``path``.
        """
        from ..errors import CheckpointError
        from .checkpoint import read_manifest, resolve_checkpoint

        manifest = read_manifest(resolve_checkpoint(path))
        membership = (
            "newscast" if self.membership is not None else "oracle"
        )
        checks = (
            ("n", self.n),
            ("membership", membership),
            ("pair_mode", self.pair_protocol is not None),
            ("dynamic", self.is_dynamic),
        )
        for key, expected in checks:
            if manifest.get(key) != expected:
                raise CheckpointError(
                    f"checkpoint at {path} was taken under "
                    f"{key}={manifest.get(key)!r}; this scenario has "
                    f"{key}={expected!r}"
                )
        if backend is None or backend == self.backend:
            return self
        return self.replace(backend=backend)
