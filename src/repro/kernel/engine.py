"""The unified gossip engine.

:class:`GossipEngine` executes a :class:`~repro.kernel.scenario.Scenario`
under the synchronous cycle model of §3: every participating node, in
slot order, contacts a random partner and both endpoints adopt
``AGGREGATE(x_i, x_j)`` for *every* aggregation instance at once
(GETPAIR_SEQ with §4 piggybacking). The engine owns everything
stochastic and everything stateful:

* node state as a ``(capacity, k)`` structure-of-arrays value matrix
  plus boolean *alive* and *participant* masks — one column per
  aggregation instance, one row per node slot,
* node lifecycle: a declarative
  :class:`~repro.kernel.lifecycle.ChurnSpec` is applied as alive-mask
  growth/shrink with value-matrix row recycling (departed slots are
  reused by joiners; the matrix grows geometrically when the network
  outgrows its capacity — no node objects are ever rebuilt),
* the §4 epoch/restart machinery: an
  :class:`~repro.kernel.lifecycle.EpochSpec` restarts the protocol at
  every epoch boundary by re-seeding the participants' rows in place
  (mid-epoch joiners stay alive but wait for the next restart before
  they participate),
* the cycle's randomness as batched draws (partner picks, loss coins,
  churn departures, restart re-seeding), identical no matter which
  backend executes,
* the partner draws themselves, delegated to a pluggable
  :class:`~repro.kernel.membership.PartnerProvider`: the default
  :class:`~repro.kernel.membership.OracleProvider` reproduces the
  historical topology/uniform draws bit for bit, while
  :class:`~repro.kernel.membership.NewscastProvider` draws from
  gossip-maintained partial views refreshed through the backend's
  node-disjoint batch primitives — no global membership oracle, and
* the remaining failure machinery (crash plan, loss schedule,
  partition), and
* the declarative adversary
  (:class:`~repro.kernel.adversary.AdversarySpec`): the adversary set
  is drawn once at construction, ``inject`` corruption is written into
  the matrix before each cycle's exchanges, ``partition`` joins the
  fused ok-mask pass, ``eclipse`` overrides partner draws, and
  ``lying`` rewrites reports at observation time
  (:meth:`GossipEngine.reported_column`) without touching state.

What remains — applying the cycle's successful exchanges to the matrix
— is delegated to a pluggable
:class:`~repro.kernel.backends.ExecutionBackend`. Because backends see
identical inputs and the vectorized backend preserves per-node exchange
order, a scenario produces the same trajectory on every backend, churn
and epoch restarts included.

A scenario may instead declare a
:class:`~repro.kernel.pairs.PairProtocolSpec`, switching the engine to
*pair mode*: each cycle becomes ``N`` elementary midpoint steps from a
pre-materialized GETPAIR sequence (PM / RAND / SEQ / PMRAND — algorithm
AVG of Figure 2) rather than the push-pull exchange batches. The pair
draw is engine-owned like every other piece of randomness, so the
backend equivalence contract carries over unchanged; per-cycle φ counts
land in :attr:`KernelRunResult.phi_counts`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.aggregates import MeanAggregate
from ..errors import (
    CheckpointError,
    ConfigurationError,
    InvariantViolation,
    SimulationError,
)
from ..rng import make_rng
from .backends import ExecutionBackend, make_backend
from .checkpoint import (
    CheckpointSpec,
    pickle_payload,
    prune_checkpoints,
    read_checkpoint,
    unpickle_payload,
    write_checkpoint,
)
from .invariants import InvariantFinding, InvariantMonitor, InvariantReport
from .lifecycle import EpochRestart, EpochView
from .membership import PartnerProvider, build_provider
from .pairs import PairDraw
from .scenario import Scenario


@dataclass
class KernelRunResult:
    """Per-cycle trajectories of one engine run, per instance.

    Epoch-restarted runs whose instance count varies between epochs
    (Figure 4's per-epoch leader election) do not record per-instance
    variance/mean trajectories — their observable outputs are
    ``epoch_results`` (one finalize value per completed epoch) and
    ``alive_counts`` (the network-size trace).
    """

    instance_names: Tuple[Hashable, ...]
    variances: Dict[Hashable, List[float]] = field(default_factory=dict)
    means: Dict[Hashable, List[float]] = field(default_factory=dict)
    exchange_counts: List[int] = field(default_factory=list)
    alive_counts: List[int] = field(default_factory=list)
    epoch_results: List[Any] = field(default_factory=list)
    #: pair-mode only (with ``track_phi``): one per-node φ count array
    #: per executed cycle — Theorem 1's communication counts
    phi_counts: List[np.ndarray] = field(default_factory=list)

    @property
    def primary(self) -> Hashable:
        """The first (usually only) instance id."""
        return self.instance_names[0]

    def variance_array(self, name: Optional[Hashable] = None) -> np.ndarray:
        """σ²₀ … σ²_T of one instance (default: the primary one)."""
        return np.asarray(self.variances[self.primary if name is None else name])

    def mean_array(self, name: Optional[Hashable] = None) -> np.ndarray:
        """Per-cycle means of one instance (default: the primary one)."""
        return np.asarray(self.means[self.primary if name is None else name])


class CyclePlan:
    """Reusable per-cycle scratch for :meth:`GossipEngine.run_cycle`.

    The engine's per-cycle setup used to allocate fresh initiator,
    partner, coin-mask and compacted-exchange arrays every cycle; at
    paper scale that constant dominates the vectorized backend's
    runtime. A ``CyclePlan`` owns int32 buffers (the backends' native
    index dtype, so the handoff is copy-free) that are reallocated only
    when engine capacity grows, plus a cached compacted initiator set
    keyed on a mask *version stamp* — any alive/participant mutation
    (crash, churn, epoch restart) bumps the stamp and invalidates it.
    """

    __slots__ = (
        "capacity", "partners", "ok", "out_i", "out_j",
        "_initiators", "_version",
    )

    def __init__(self):
        self.capacity = -1
        self.partners: Optional[np.ndarray] = None
        self.ok: Optional[np.ndarray] = None
        self.out_i: Optional[np.ndarray] = None
        self.out_j: Optional[np.ndarray] = None
        self._initiators: Optional[np.ndarray] = None
        self._version = -1

    def ensure(self, capacity: int) -> None:
        """Size the buffers for ``capacity`` node slots."""
        if capacity <= self.capacity:
            return
        self.capacity = capacity
        self.partners = np.empty(capacity, dtype=np.int32)
        self.ok = np.empty(capacity, dtype=bool)
        self.out_i = np.empty(capacity, dtype=np.int32)
        self.out_j = np.empty(capacity, dtype=np.int32)
        self._initiators = None

    def initiators(
        self,
        mask: np.ndarray,
        version: int,
        exclude: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The compacted indices of ``mask``, cached until ``version``
        changes (static runs pay the O(capacity) scan once, not per
        cycle). ``exclude`` drops slots that must not initiate — nodes
        isolated by a zero-degree overlay row stay alive (their value
        still counts) but have nobody to draw."""
        if self._initiators is None or self._version != version:
            if exclude is not None:
                mask = mask & ~exclude
            self._initiators = np.flatnonzero(mask).astype(np.int32)
            self._version = version
        return self._initiators

    def compact(
        self, initiators: np.ndarray, partners: np.ndarray, ok: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One compaction of the surviving exchanges into the reusable
        output buffers (the former ``initiators[ok]`` / ``partners[ok]``
        pair scanned the mask twice and allocated twice)."""
        selected = np.flatnonzero(ok)
        m = len(selected)
        exch_i = self.out_i[:m]
        exch_j = self.out_j[:m]
        np.take(initiators, selected, out=exch_i)
        np.take(partners, selected, out=exch_j)
        return exch_i, exch_j


class GossipEngine:
    """Cycle-driven execution of a :class:`Scenario`.

    The engine is incremental: :meth:`run` may be called repeatedly and
    :meth:`crash` may be invoked between runs, which is how the
    robustness ablations inject mid-run failures.
    """

    def __init__(self, scenario: Scenario, *, trace=None):
        self.scenario = scenario
        self._names: Tuple[Hashable, ...] = scenario.instance_names
        self._functions: Tuple = scenario.functions
        self._matrix = scenario.initial_matrix()
        self._alive = np.ones(scenario.n, dtype=bool)
        self._rng = make_rng(scenario.seed)
        self._trace = trace
        # reusable per-cycle scratch; bump _mask_version on every
        # alive/participant mutation so its initiator cache invalidates
        self._plan = CyclePlan()
        self._mask_version = 0
        # -- lifecycle state --------------------------------------------
        self._churn = scenario.churn
        self._epochs = scenario.epochs
        self._dynamic = scenario.is_dynamic
        # -- pair mode (algorithm AVG, Figure 2) ------------------------
        self._pair = scenario.pair_protocol
        self._pair_draw: Optional[PairDraw] = (
            self._pair.bind(scenario.topology)
            if self._pair is not None
            else None
        )
        self._pair_plan = (
            self._pair.segmentation_plan(scenario.n)
            if self._pair is not None
            else None
        )
        self._phi_log: List[np.ndarray] = []
        # -- adversary state (AdversarySpec) ----------------------------
        # the adversary set is drawn from the engine RNG at construction
        # (before any cycle randomness), corruption is applied as
        # engine-side matrix writes and exchange filtering — backends
        # never see the spec, so bitwise equivalence is preserved
        adversary = scenario.adversary
        self._adversary = adversary
        self._adversary_partition = (
            adversary is not None and adversary.kind == "partition"
        )
        self._adv_mask: Optional[np.ndarray] = None
        self._eclipse: Optional[np.ndarray] = None
        if adversary is not None:
            mask = np.zeros(scenario.n, dtype=bool)
            mask[adversary.resolve_nodes(scenario.n, self._rng)] = True
            self._adv_mask = mask
            if adversary.kind == "eclipse":
                self._eclipse = adversary.eclipse_redirects(
                    scenario.topology, mask, self._rng
                )
        # participants: the nodes gossiping in the current epoch. Only
        # diverges from the alive mask under epochs, where mid-epoch
        # joiners wait for the next restart (§4).
        self._participant = self._alive.copy()
        # slots of departed nodes, recycled LIFO for joiners
        self._free_slots: List[int] = []
        # next never-used slot (== capacity until the matrix grows)
        self._top = scenario.n
        # nodes with a zero-degree overlay row (possible in hand-built
        # or very sparse random adjacency overlays) stay alive — their
        # value still counts toward the true aggregate — but are
        # excluded from initiating: they have no neighbor to draw, and
        # the CSR draw used to raise from deep inside the batch
        self._isolated: Optional[np.ndarray] = None
        if not self._dynamic:
            isolated = scenario.topology.isolated_mask()
            if isolated is not None and isolated.any():
                self._isolated = isolated
        # -- message-fault state (MessageFaultSpec / RetrySpec) ---------
        # like the adversary, message faults are applied entirely by
        # the engine: fault coins come from the engine RNG, partial
        # exchanges / duplicate deliveries / retransmission repairs are
        # engine-side matrix writes after the backend batch — backends
        # never see the spec, so bitwise equivalence is preserved
        self._faults = scenario.message_faults
        self._retry = scenario.retry
        self._mf_partner: Optional[np.ndarray] = None
        self._mf_kind: Optional[np.ndarray] = None
        self._mf_attempt: Optional[np.ndarray] = None
        self._mf_due: Optional[np.ndarray] = None
        self._mf_cache: Optional[np.ndarray] = None
        self._mf_sent: Optional[np.ndarray] = None
        self._mf_push_only: Optional[np.ndarray] = None
        if self._retry is not None:
            self._alloc_retry_state(scenario.n, len(self._names))
        self._mf_stats: Dict[str, int] = {
            "partials": 0, "duplicates": 0, "repairs": 0,
            "retries": 0, "giveups": 0,
        }
        # the partner-draw layer: bound after the adversary draw so the
        # oracle provider (which consumes no RNG here) reproduces the
        # historical construction-time RNG stream exactly, and any
        # provider bootstrap randomness (newscast views) lands at a
        # fixed, backend-independent point in the stream
        self._provider: PartnerProvider = build_provider(scenario.membership)
        self._provider.bind(self)
        # per-slot base attribute values, the reseed source for the
        # default "restart from current local values" epoch protocol
        # (a custom reseed may change the instance count, so attributes
        # are only maintained when the default restart needs them)
        self._attributes = (
            self._matrix.copy()
            if self._epochs is not None and self._epochs.reseed is None
            else None
        )
        self.epoch = -1
        self._epoch_start_cycle = 0
        self._size_at_epoch_start = 0
        self._last_finalized_epoch = -1
        self._epoch_results: List[Any] = []

        backend_name = scenario.resolve_backend()
        if trace is not None:
            if len(self._names) > 1:
                raise SimulationError(
                    "exchange tracing supports single-instance scenarios only"
                )
            if self._dynamic:
                raise SimulationError(
                    "exchange tracing is not supported under churn/epochs"
                )
            # telemetry needs the sequential per-exchange path
            backend_name = "reference"
        self._closed = False
        self._backend: ExecutionBackend = make_backend(backend_name)
        # hand the matrix to the backend: in-process backends return it
        # unchanged, the sharded backend moves it into shared memory so
        # all later in-place engine mutations are visible to its workers
        self._matrix = self._backend.adopt_matrix(self._matrix)
        # the fused alive/loss/partition mask pass only exists to serve
        # failure specs; without any, and as long as no mask mutation
        # has ever happened (_mask_version still 0), a static cycle's
        # exchanges are exactly (initiators, partners) — no mask
        # allocation, no compaction scan
        self._no_failure_filters = (
            scenario.loss_schedule is None
            and scenario.loss_probability == 0.0
            and scenario.partition is None
            and not self._adversary_partition
            and scenario.message_faults is None
        )
        # -- invariant monitors -----------------------------------------
        # observed at the end of every cycle; the per-cycle mass ledger
        # records every deliberate mass-moving engine event with its
        # exact per-column delta so the mass monitor can attribute
        # drift. REPRO_STRICT_INVARIANTS=1 arms the standard set in
        # strict mode on every engine (the CI certification hook).
        self._monitor_entries: List[Tuple[InvariantMonitor, bool]] = []
        self._ledger: Dict[str, np.ndarray] = {}
        self._ledger_rebase = False
        self._invariant_findings: List[InvariantFinding] = []
        if os.environ.get("REPRO_STRICT_INVARIANTS") == "1":
            self.arm_standard_monitors(strict=True)
        self.cycle = 0

    def _alloc_retry_state(self, capacity: int, k: int) -> None:
        """(Re-)allocate the pending-exchange tables of the retry
        protocol: per-slot partner, phase (1 = awaiting any contact,
        2 = partner holds a cached combined value), attempt counter,
        next-retry cycle, the cached reply row plus the request row it
        answered (a delivered retransmission repairs mass from these
        two), and the permanent push-only fallback flag."""
        self._mf_partner = np.full(capacity, -1, dtype=np.int64)
        self._mf_kind = np.zeros(capacity, dtype=np.int8)
        self._mf_attempt = np.zeros(capacity, dtype=np.int64)
        self._mf_due = np.zeros(capacity, dtype=np.int64)
        self._mf_cache = np.zeros((capacity, k), dtype=np.float64)
        self._mf_sent = np.zeros((capacity, k), dtype=np.float64)
        self._mf_push_only = np.zeros(capacity, dtype=bool)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release backend-owned resources (the sharded backend's worker
        pool and shared segment; a no-op for in-process backends).
        Idempotent; the engine must not be *run* afterwards (enforced),
        but every observer (``matrix``, ``variance``, ``alive_column``,
        …) stays valid — the matrix is detached from backend-owned
        storage before that storage is unmapped."""
        self._closed = True
        self._matrix = self._backend.release_matrix(self._matrix)
        self._backend.close()

    def __enter__(self) -> "GossipEngine":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> None:
        self.close()

    # -- observation -----------------------------------------------------

    @property
    def backend_name(self) -> str:
        """The concrete backend executing this engine."""
        return self._backend.name

    @property
    def instance_names(self) -> Tuple[Hashable, ...]:
        """Instance ids in column order (positional ids after an epoch
        restart changed the instance count)."""
        return self._names

    @property
    def partner_provider(self) -> PartnerProvider:
        """The bound partner-draw layer (oracle or newscast)."""
        return self._provider

    @property
    def membership_name(self) -> str:
        """Name of the active partner provider."""
        return self._provider.name

    @property
    def membership_views(self) -> Optional[np.ndarray]:
        """The provider's partial-view matrix (copy), or ``None`` for
        the oracle. Safe to read mid-run: view state never aliases
        backend-owned storage, so no sync is needed."""
        return self._provider.view_matrix

    @property
    def matrix(self) -> np.ndarray:
        """The ``(capacity, k)`` value matrix (copy; includes dead and
        not-yet-participating slots)."""
        self._backend.sync()
        return self._matrix.copy()

    @property
    def alive_mask(self) -> np.ndarray:
        """Boolean alive mask over all slots (copy)."""
        return self._alive.copy()

    @property
    def alive_count(self) -> int:
        """Number of alive nodes (the current network size)."""
        return int(self._alive.sum())

    @property
    def participant_count(self) -> int:
        """Number of nodes gossiping in the current epoch (equals
        :attr:`alive_count` except for joiners awaiting a restart)."""
        return int(self._participant.sum())

    @property
    def capacity(self) -> int:
        """Number of allocated node slots (≥ alive count)."""
        return len(self._alive)

    def _column_index(self, name: Optional[Hashable]) -> int:
        if name is None:
            return 0
        try:
            return self._names.index(name)
        except ValueError:
            raise ConfigurationError(
                f"no aggregation instance {name!r}; have {self._names}"
            ) from None

    def column(self, name: Optional[Hashable] = None) -> np.ndarray:
        """One instance's approximations over *all* slots (copy)."""
        self._backend.sync()
        return self._matrix[:, self._column_index(name)].copy()

    def alive_column(self, name: Optional[Hashable] = None) -> np.ndarray:
        """One instance's approximations over participating nodes."""
        self._backend.sync()
        column = self._matrix[:, self._column_index(name)]
        if self._participant.all():
            # everyone participates (the common static case): a plain
            # column copy beats the boolean-mask gather
            return column.copy()
        return column[self._participant]

    @property
    def adversary_mask(self) -> np.ndarray:
        """Boolean adversary mask over all slots (copy; all-``False``
        when the scenario declares no adversary)."""
        if self._adv_mask is None:
            return np.zeros(self.capacity, dtype=bool)
        return self._adv_mask.copy()

    @property
    def honest_mask(self) -> np.ndarray:
        """Participants that are not adversarial (copy)."""
        if self._adv_mask is None:
            return self._participant.copy()
        return self._participant & ~self._adv_mask

    def reported_column(self, name: Optional[Hashable] = None) -> np.ndarray:
        """What the network *reports*: one instance's approximations
        over participating nodes, with byzantine responders' lies
        applied. Under an active ``kind="lying"`` adversary each
        adversarial node's report is replaced by the spec value at read
        time — the gossip state itself is untouched. For every other
        kind this equals :meth:`alive_column`. Robust reductions
        (:func:`~repro.kernel.robust.robust_reduce`) consume this view.
        """
        reports = self.alive_column(name)
        spec = self._adversary
        if (
            spec is not None
            and spec.kind == "lying"
            and spec.active_at(self.cycle)
        ):
            if self._participant.all():
                adversarial = self._adv_mask
            else:
                adversarial = self._adv_mask[self._participant]
            reports[adversarial] = spec.value
        return reports

    def honest_column(self, name: Optional[Hashable] = None) -> np.ndarray:
        """One instance's approximations over *honest* participants —
        the view the §3 restricted invariants quantify over."""
        self._backend.sync()
        column = self._matrix[:, self._column_index(name)]
        return column[self.honest_mask]

    def variance(self, name: Optional[Hashable] = None) -> float:
        """Unbiased variance of participants' approximations (eq. 3)."""
        alive = self.alive_column(name)
        if len(alive) < 2:
            return 0.0
        return float(alive.var(ddof=1))

    def mean(self, name: Optional[Hashable] = None) -> float:
        """Mean of participants' approximations."""
        return float(self.alive_column(name).mean())

    @property
    def aggregate_functions(self) -> Tuple:
        """AGGREGATE functions in column order (tracks epoch rebuilds)."""
        return self._functions

    def participant_sums(self) -> np.ndarray:
        """Per-instance sums over participating nodes — the total
        system mass the §3 conservation invariant quantifies over."""
        self._backend.sync()
        if self._participant.all():
            return self._matrix.sum(axis=0)
        return self._matrix[self._participant].sum(axis=0)

    def structure_snapshot(self) -> Dict[str, Any]:
        """The lifecycle bookkeeping the structure monitor audits."""
        return {
            "alive": self._alive,
            "participant": self._participant,
            "free_slots": tuple(self._free_slots),
            "top": self._top,
            "capacity": self.capacity,
            "dynamic": bool(self._dynamic),
        }

    @property
    def message_fault_stats(self) -> Dict[str, int]:
        """Cumulative message-fault event counts: partial exchanges
        executed, duplicate deliveries, exact retransmission repairs,
        retry attempts, and budget-exhausted give-ups (copy)."""
        return dict(self._mf_stats)

    @property
    def pending_retry_count(self) -> int:
        """Nodes currently blocked on an outstanding exchange."""
        if self._mf_partner is None:
            return 0
        return int(np.count_nonzero(self._mf_partner >= 0))

    # -- invariant monitors ----------------------------------------------

    def register_monitor(
        self, monitor: InvariantMonitor, *, strict: bool = False
    ) -> InvariantMonitor:
        """Register an invariant monitor, observed at the end of every
        cycle. With ``strict=True`` any *violation* finding raises
        :class:`~repro.errors.InvariantViolation` at the offending
        cycle. Returns the monitor for chained inspection."""
        self._monitor_entries.append((monitor, bool(strict)))
        return monitor

    def arm_standard_monitors(self, *, strict: bool = False) -> None:
        """Register fresh instances of the standard monitor set (mass
        conservation, variance monotonicity, structure consistency)."""
        from .invariants import standard_monitors

        for monitor in standard_monitors():
            self.register_monitor(monitor, strict=strict)

    def invariant_report(self) -> InvariantReport:
        """Every finding so far plus per-monitor summaries."""
        return InvariantReport(
            findings=tuple(self._invariant_findings),
            summaries={
                monitor.name: monitor.summary()
                for monitor, _ in self._monitor_entries
            },
        )

    def _ledger_add(self, key: str, delta: np.ndarray) -> None:
        """Attribute one mass-moving event: ``delta`` is the exact
        per-column change of participant mass it caused."""
        delta = np.asarray(delta, dtype=np.float64)
        if key in self._ledger:
            self._ledger[key] = self._ledger[key] + delta
        else:
            self._ledger[key] = delta.copy()

    def _observe_invariants(self, executed_cycle: int) -> None:
        self._backend.sync()
        ledger = self._ledger
        rebase = self._ledger_rebase
        self._ledger = {}
        self._ledger_rebase = False
        strict_violations: List[InvariantFinding] = []
        for monitor, strict in self._monitor_entries:
            for finding in monitor.observe(
                self, executed_cycle, ledger, rebase
            ):
                self._invariant_findings.append(finding)
                if strict and finding.is_violation:
                    strict_violations.append(finding)
        if strict_violations:
            first = strict_violations[0]
            raise InvariantViolation(
                f"invariant {first.monitor!r} violated at cycle "
                f"{first.cycle}: {first.message}",
                findings=strict_violations,
            )

    # -- failure injection -----------------------------------------------

    def crash(self, node_ids: Sequence[int]) -> None:
        """Crash-stop nodes; their approximations leave the system and
        (under churn) their slots become recyclable."""
        version = self._mask_version
        for node_id in node_ids:
            if not 0 <= node_id < self.capacity:
                raise ConfigurationError(f"node id {node_id} out of range")
            if self._alive[node_id]:
                if self._monitor_entries and self._participant[node_id]:
                    self._backend.sync()
                    self._ledger_add("crash", -self._matrix[node_id])
                self._alive[node_id] = False
                self._participant[node_id] = False
                self._mask_version += 1
                if self._dynamic:
                    self._free_slots.append(int(node_id))
        if self._retry is not None and len(node_ids):
            # a crashed node's outstanding exchange dies with it; a
            # recycled slot must not inherit pending/push-only state
            self._mf_clear_slots(np.asarray(list(node_ids), dtype=np.int64))
        if self._mask_version != version:
            self._provider.on_mask_change(self._mask_version)

    def _mf_clear_slots(self, slots: np.ndarray) -> None:
        """Drop all retry-protocol state of ``slots`` (departed or
        freshly admitted nodes)."""
        self._mf_partner[slots] = -1
        self._mf_kind[slots] = 0
        self._mf_attempt[slots] = 0
        self._mf_due[slots] = 0
        self._mf_push_only[slots] = False

    # -- adversary -------------------------------------------------------

    def _apply_adversary_state(self) -> None:
        """The pre-exchange adversary hook: under an active
        ``kind="inject"`` spec every adversarial participant resets its
        whole row to the injected value before this cycle's exchanges
        (the stubborn-node attack — the corruption then spreads through
        ordinary gossip). The other kinds touch no state here: lying is
        applied at observation time, partition/eclipse act on the
        exchange plan."""
        spec = self._adversary
        if spec.kind != "inject" or not spec.active_at(self.cycle):
            return
        rows = np.flatnonzero(self._adv_mask & self._participant)
        if len(rows) == 0:
            return
        # in-place matrix write — the pipelined sharded backend must
        # drain any in-flight cycle first
        self._backend.sync()
        if self._monitor_entries:
            k = self._matrix.shape[1]
            injected = np.full(k, spec.value * len(rows))
            self._ledger_add("inject", injected - self._matrix[rows].sum(axis=0))
        self._matrix[rows] = spec.value

    # -- churn -----------------------------------------------------------

    def _apply_churn(self) -> None:
        """One cycle's declarative churn: departures leave (taking their
        approximation mass), joiners are admitted into recycled or
        fresh slots."""
        spec = self._churn
        alive_count = self.alive_count
        step = spec.model.step(self.cycle, alive_count)
        leaves = min(int(step.leaves), max(alive_count - 1, 0))
        if leaves > 0:
            alive_ids = np.nonzero(self._alive)[0]
            picks = self._rng.choice(len(alive_ids), size=leaves, replace=False)
            leavers = alive_ids[picks]
            if self._monitor_entries:
                departing = self._participant[leavers]
                if departing.any():
                    self._backend.sync()
                    self._ledger_add(
                        "leave",
                        -self._matrix[leavers[departing]].sum(axis=0),
                    )
            if self._retry is not None:
                self._mf_clear_slots(leavers)
            self._alive[leavers] = False
            self._participant[leavers] = False
            self._mask_version += 1
            self._free_slots.extend(int(s) for s in leavers)
            self._provider.on_mask_change(self._mask_version)
        if step.joins > 0:
            self._admit(int(step.joins))

    def _ensure_capacity(self, needed: int) -> None:
        capacity = self.capacity
        if needed <= capacity:
            return
        # geometric growth amortizes repeated joins to O(1) per node
        new_capacity = max(needed, capacity + (capacity >> 1))
        grow = new_capacity - capacity
        # the backend owns the growth so it costs exactly one matrix
        # copy: the sharded backend maps a larger shared segment and
        # copies the old rows straight into it (this used to vstack
        # into a heap array here and copy again in adopt_matrix);
        # geometric growth keeps remaps O(log n)
        self._matrix = self._backend.grow_matrix(self._matrix, new_capacity)
        self._alive = np.concatenate(
            [self._alive, np.zeros(grow, dtype=bool)]
        )
        self._participant = np.concatenate(
            [self._participant, np.zeros(grow, dtype=bool)]
        )
        if self._attributes is not None:
            self._attributes = np.vstack(
                [self._attributes, np.zeros((grow, self._attributes.shape[1]))]
            )
        if self._adv_mask is not None:
            # fresh capacity is always honest; recycled slots keep the
            # departed node's flag (the attacker holds the position)
            self._adv_mask = np.concatenate(
                [self._adv_mask, np.zeros(grow, dtype=bool)]
            )
        if self._mf_partner is not None:
            # fresh capacity starts with no outstanding exchanges
            self._mf_partner = np.concatenate(
                [self._mf_partner, np.full(grow, -1, dtype=np.int64)]
            )
            self._mf_kind = np.concatenate(
                [self._mf_kind, np.zeros(grow, dtype=np.int8)]
            )
            self._mf_attempt = np.concatenate(
                [self._mf_attempt, np.zeros(grow, dtype=np.int64)]
            )
            self._mf_due = np.concatenate(
                [self._mf_due, np.zeros(grow, dtype=np.int64)]
            )
            self._mf_cache = np.vstack(
                [self._mf_cache,
                 np.zeros((grow, self._mf_cache.shape[1]))]
            )
            self._mf_sent = np.vstack(
                [self._mf_sent,
                 np.zeros((grow, self._mf_sent.shape[1]))]
            )
            self._mf_push_only = np.concatenate(
                [self._mf_push_only, np.zeros(grow, dtype=bool)]
            )
        # provider-held per-node state (newscast view rows) grows with
        # the same geometric schedule
        self._provider.grow(new_capacity)

    def _admit(self, count: int) -> np.ndarray:
        """Admit ``count`` joiners: recycle departed slots (LIFO), then
        extend the matrix. Returns the assigned slot ids."""
        # joiner rows are written below — the pipelined sharded backend
        # must finish any in-flight cycle before the matrix mutates
        self._backend.sync()
        recycled = [
            self._free_slots.pop()
            for _ in range(min(count, len(self._free_slots)))
        ]
        fresh = count - len(recycled)
        if fresh > 0:
            self._ensure_capacity(self._top + fresh)
            fresh_slots = np.arange(self._top, self._top + fresh, dtype=np.int64)
            self._top += fresh
        else:
            fresh_slots = np.empty(0, dtype=np.int64)
        slots = np.concatenate(
            [np.asarray(recycled, dtype=np.int64), fresh_slots]
        )
        self._alive[slots] = True
        # under epochs a joiner waits for the next restart (§4); under
        # plain churn it participates immediately
        self._participant[slots] = self._epochs is None
        self._mask_version += 1

        spec = self._churn
        k = self._matrix.shape[1]
        if spec.join_values is not None:
            drawn = np.asarray(
                spec.join_values(count, self._rng), dtype=np.float64
            )
            if drawn.ndim == 1:
                if drawn.shape != (count,):
                    raise SimulationError(
                        f"join_values returned shape {drawn.shape}, "
                        f"expected ({count},) or ({count}, {k})"
                    )
                rows = np.repeat(drawn[:, None], k, axis=1)
            elif drawn.shape == (count, k):
                rows = drawn
            else:
                raise SimulationError(
                    f"join_values returned shape {drawn.shape}, "
                    f"expected ({count},) or ({count}, {k})"
                )
        else:
            rows = np.zeros((count, k))
        if spec.rejoin == "keep":
            # recycled slots keep the departed node's state; only
            # fresh slots are seeded
            seed_slots, seed_rows = fresh_slots, rows[len(recycled):]
        else:
            seed_slots, seed_rows = slots, rows
        self._matrix[seed_slots] = seed_rows
        if self._attributes is not None:
            self._attributes[seed_slots] = seed_rows
        if self._retry is not None and len(slots):
            # a joiner starts with a clean protocol state even when it
            # recycles the slot of a node that left mid-exchange
            self._mf_clear_slots(slots)
        if self._monitor_entries and self._epochs is None and len(slots):
            # under plain churn joiners participate immediately: their
            # (possibly recycled) rows enter the participant mass
            self._ledger_add("join", self._matrix[slots].sum(axis=0))
        # membership hooks last, after the joiners' values landed: the
        # provider may draw bootstrap randomness (newscast contact
        # lists) — a fixed point in the stream either way, and a no-op
        # for the oracle
        self._provider.on_mask_change(self._mask_version)
        self._provider.on_join(slots, self._rng)
        return slots

    # -- epochs ----------------------------------------------------------

    def _start_epoch(self, cycle: int) -> None:
        """Restart the protocol (§4): every alive node becomes a
        participant and its row is re-seeded in place."""
        # rows are re-seeded in place — drain in-flight cycles first
        self._backend.sync()
        if self._monitor_entries:
            # a restart deliberately replaces the participant mass; the
            # mass monitor re-anchors instead of attributing deltas
            self._ledger_rebase = True
        if self._retry is not None:
            # a restart is a full protocol restart: outstanding
            # exchanges and push-only fallbacks are forgotten
            self._alloc_retry_state(self.capacity, self._matrix.shape[1])
        self.epoch += 1
        np.copyto(self._participant, self._alive)
        self._mask_version += 1
        self._provider.on_mask_change(self._mask_version)
        participants = np.nonzero(self._participant)[0]
        self._epoch_start_cycle = cycle
        self._size_at_epoch_start = len(participants)
        spec = self._epochs
        if spec.reseed is None:
            self._matrix[participants] = self._attributes[participants]
            return
        context = EpochRestart(
            epoch=self.epoch,
            cycle=cycle,
            participants=participants.copy(),
            rng=self._rng,
            previous=tuple(self._epoch_results),
        )
        rows = np.asarray(spec.reseed(context), dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[:, np.newaxis]
        if rows.ndim != 2 or rows.shape[0] != len(participants):
            raise SimulationError(
                f"reseed returned shape {rows.shape} for "
                f"{len(participants)} participants"
            )
        k_new = rows.shape[1]
        if k_new != self._matrix.shape[1]:
            if k_new < 1:
                raise SimulationError("reseed must return at least one column")
            # the instance count changed (e.g. a fresh leader set):
            # rebuild the matrix with positional instance ids, every
            # column running the epoch spec's AGGREGATE
            self._functions = (spec.function,) * k_new
            self._names = tuple(range(k_new))
            # a fresh zero matrix straight from the backend: the
            # sharded backend maps a new zero-filled segment (no heap
            # array, no copy at all — the old zeros-then-adopt path
            # wrote every byte twice)
            self._matrix = self._backend.allocate_matrix(
                self.capacity, k_new
            )
            if self._retry is not None:
                # cached combined rows are per-column; track the new k
                self._alloc_retry_state(self.capacity, k_new)
        self._matrix[participants] = rows

    def _finalize_epoch(self, end_cycle: int) -> None:
        if self.epoch < 0 or self.epoch <= self._last_finalized_epoch:
            return
        self._last_finalized_epoch = self.epoch
        spec = self._epochs
        if spec.finalize is None:
            return
        self._backend.sync()
        participants = np.nonzero(self._participant)[0]
        view = EpochView(
            epoch=self.epoch,
            start_cycle=self._epoch_start_cycle,
            end_cycle=end_cycle,
            size_at_start=self._size_at_epoch_start,
            size_at_end=self.alive_count,
            participants=participants,
            matrix=self._matrix[participants].copy(),
        )
        output = spec.finalize(view)
        if output is not None:
            self._epoch_results.append(output)

    @property
    def epoch_results(self) -> List[Any]:
        """Finalize outputs of every completed epoch so far (copy)."""
        return list(self._epoch_results)

    # -- checkpoint / resume ---------------------------------------------

    @property
    def _instances_rebuilt(self) -> bool:
        """Whether an epoch restart replaced the scenario's instance
        layout with positional ids (the Figure 4 leader-count case)."""
        return self._names != self.scenario.instance_names

    def checkpoint(self, directory: Union[str, Path]) -> Path:
        """Serialize the full run state to ``directory`` and return the
        new checkpoint's manifest path.

        The snapshot captures everything the next cycle reads — value
        matrix, alive/participant masks, RNG state, cycle and epoch
        counters, slot-recycling bookkeeping, membership views, pair-φ
        log — so :meth:`restore` resumes bitwise-identically on any
        backend. The write is observation-grade: it drains in-flight
        work like any matrix read but consumes no randomness and
        mutates nothing, so a checkpointed run's trajectory equals an
        uncheckpointed one's. Files land atomically (payload, then the
        manifest as the commit record); see :mod:`repro.kernel.checkpoint`
        for the format.
        """
        if self._closed:
            raise SimulationError(
                "this engine is closed; nothing left to checkpoint"
            )
        self._backend.sync()
        arrays: Dict[str, np.ndarray] = {
            "matrix": self._matrix,
            "alive": self._alive,
            "participant": self._participant,
            "free_slots": np.asarray(self._free_slots, dtype=np.int64),
            "rng_state": pickle_payload(self._rng.bit_generator.state),
            "epoch_results": pickle_payload(self._epoch_results),
        }
        if self._attributes is not None:
            arrays["attributes"] = self._attributes
        if self._adv_mask is not None:
            arrays["adv_mask"] = self._adv_mask
        views = self._provider.view_matrix
        if views is not None:
            arrays["views"] = views
        if self._phi_log:
            arrays["phi_log"] = np.stack(self._phi_log)
        if self._retry is not None:
            arrays["mf_partner"] = self._mf_partner
            arrays["mf_kind"] = self._mf_kind
            arrays["mf_attempt"] = self._mf_attempt
            arrays["mf_due"] = self._mf_due
            arrays["mf_cache"] = self._mf_cache
            arrays["mf_sent"] = self._mf_sent
            arrays["mf_push_only"] = self._mf_push_only
            arrays["mf_stats"] = pickle_payload(self._mf_stats)
        manifest = {
            "cycle": int(self.cycle),
            "n": int(self.scenario.n),
            "capacity": int(self.capacity),
            "k": int(self._matrix.shape[1]),
            "instances": [str(name) for name in self._names],
            "instances_rebuilt": self._instances_rebuilt,
            "membership": self._provider.name,
            "bit_generator": type(self._rng.bit_generator).__name__,
            "pair_mode": self._pair is not None,
            "dynamic": bool(self._dynamic),
            "backend": self.backend_name,
            "epoch": int(self.epoch),
            "epoch_start_cycle": int(self._epoch_start_cycle),
            "size_at_epoch_start": int(self._size_at_epoch_start),
            "last_finalized_epoch": int(self._last_finalized_epoch),
            "top": int(self._top),
            "mask_version": int(self._mask_version),
        }
        return write_checkpoint(directory, arrays, manifest)

    def _load_state(self, manifest: Dict[str, Any],
                    arrays: Dict[str, np.ndarray]) -> None:
        """Overwrite this (freshly constructed) engine's mutable state
        with a checkpoint's. Construction already consumed the same
        construction-time randomness (adversary draw, provider
        bootstrap) the checkpointed engine did; the restored RNG state
        then discards it, so the resumed stream continues exactly where
        the checkpointed run left off."""
        scenario = self.scenario
        checks = (
            ("n", scenario.n),
            ("membership", self._provider.name),
            ("pair_mode", self._pair is not None),
            ("dynamic", bool(self._dynamic)),
            ("bit_generator", type(self._rng.bit_generator).__name__),
        )
        for key, expected in checks:
            if manifest.get(key) != expected:
                raise CheckpointError(
                    f"checkpoint was taken under {key}="
                    f"{manifest.get(key)!r}; this scenario has "
                    f"{key}={expected!r}"
                )
        saved_matrix = np.ascontiguousarray(
            arrays["matrix"], dtype=np.float64
        )
        capacity, k = saved_matrix.shape
        rebuilt = bool(manifest.get("instances_rebuilt"))
        if rebuilt:
            if self._epochs is None:
                raise CheckpointError(
                    "checkpoint holds an epoch-rebuilt instance layout "
                    "but this scenario declares no epochs"
                )
            # positional instance ids, every column running the epoch
            # spec's AGGREGATE — exactly what _start_epoch rebuilds
            self._functions = (self._epochs.function,) * k
            self._names = tuple(range(k))
        elif [str(name) for name in scenario.instance_names] != list(
            manifest.get("instances", ())
        ):
            raise CheckpointError(
                f"checkpoint instances {manifest.get('instances')} do "
                f"not match the scenario's "
                f"{[str(n) for n in scenario.instance_names]}"
            )
        self._matrix = self._backend.restore_matrix(
            self._matrix, saved_matrix
        )
        self._alive = np.ascontiguousarray(arrays["alive"], dtype=bool)
        self._participant = np.ascontiguousarray(
            arrays["participant"], dtype=bool
        )
        if self._attributes is not None:
            if "attributes" not in arrays:
                raise CheckpointError(
                    "checkpoint is missing the epoch attribute matrix "
                    "this scenario's default restart reseeds from"
                )
            self._attributes = np.ascontiguousarray(
                arrays["attributes"], dtype=np.float64
            )
        if self._adv_mask is not None:
            if "adv_mask" not in arrays:
                raise CheckpointError(
                    "checkpoint is missing the adversary mask this "
                    "scenario's AdversarySpec requires"
                )
            self._adv_mask = np.ascontiguousarray(
                arrays["adv_mask"], dtype=bool
            )
        self._provider.load_state(
            arrays.get("views")
        )
        if self._retry is not None:
            if "mf_partner" not in arrays:
                raise CheckpointError(
                    "checkpoint is missing the pending-exchange tables "
                    "this scenario's RetrySpec requires"
                )
            self._mf_partner = np.ascontiguousarray(
                arrays["mf_partner"], dtype=np.int64
            )
            self._mf_kind = np.ascontiguousarray(
                arrays["mf_kind"], dtype=np.int8
            )
            self._mf_attempt = np.ascontiguousarray(
                arrays["mf_attempt"], dtype=np.int64
            )
            self._mf_due = np.ascontiguousarray(
                arrays["mf_due"], dtype=np.int64
            )
            self._mf_cache = np.ascontiguousarray(
                arrays["mf_cache"], dtype=np.float64
            )
            self._mf_sent = np.ascontiguousarray(
                arrays["mf_sent"], dtype=np.float64
            )
            self._mf_push_only = np.ascontiguousarray(
                arrays["mf_push_only"], dtype=bool
            )
            self._mf_stats = dict(unpickle_payload(arrays["mf_stats"]))
        self._free_slots = [int(slot) for slot in arrays["free_slots"]]
        self._phi_log = (
            [row.copy() for row in arrays["phi_log"]]
            if "phi_log" in arrays
            else []
        )
        self._epoch_results = list(unpickle_payload(arrays["epoch_results"]))
        state = unpickle_payload(arrays["rng_state"])
        self._rng.bit_generator.state = state
        self.cycle = int(manifest["cycle"])
        self.epoch = int(manifest["epoch"])
        self._epoch_start_cycle = int(manifest["epoch_start_cycle"])
        self._size_at_epoch_start = int(manifest["size_at_epoch_start"])
        self._last_finalized_epoch = int(manifest["last_finalized_epoch"])
        self._top = int(manifest["top"])
        self._mask_version = int(manifest["mask_version"])
        # fresh per-cycle scratch: buffers resize on first use and the
        # initiator cache re-keys on the restored mask version
        self._plan = CyclePlan()

    @classmethod
    def restore(
        cls,
        scenario: Scenario,
        path: Union[str, Path],
        *,
        trace=None,
    ) -> "GossipEngine":
        """An engine resumed from a checkpoint, bitwise-identical to
        the engine that wrote it.

        ``scenario`` must be the checkpointed run's scenario (it holds
        the callables — aggregates, churn models, epoch hooks — that a
        checkpoint deliberately does not serialize); the ``backend``
        field may differ, which is how a run checkpointed under the
        sharded pool resumes in-process and vice versa. ``path`` may
        be a manifest, a payload file, or a checkpoint directory (the
        newest valid checkpoint wins).
        """
        manifest, arrays = read_checkpoint(path)
        engine = cls(scenario, trace=trace)
        try:
            engine._load_state(manifest, arrays)
        except BaseException:
            engine.close()
            raise
        return engine

    # -- execution -------------------------------------------------------

    def _run_pair_cycle(self) -> int:
        """One cycle of algorithm AVG (Figure 2): ``N`` elementary
        midpoint steps from the selector's pre-materialized pair
        sequence. The pair draw is the cycle's only RNG consumption, so
        both backends replay identical sequences; the vectorized
        backend segments the sequence into conflict-free batches that
        preserve each node's step order (PM halves are conflict-free by
        construction and need exactly two batches)."""
        pairs = self._pair_draw(self._rng)
        if self._pair.track_phi:
            self._phi_log.append(
                np.bincount(pairs.ravel(), minlength=self.capacity)
            )
        self._backend.apply_pairs(
            self._matrix,
            self._functions,
            pairs[:, 0],
            pairs[:, 1],
            plan=self._pair_plan,
            chunk=self._pair.chunk,
            cycle=self.cycle,
            trace=self._trace,
        )
        self.cycle += 1
        return int(pairs.shape[0])

    def run_cycle(self) -> int:
        """One synchronous cycle (every participant initiates once, in
        slot order). Returns the number of successful exchanges —
        partial exchanges (a lost reply after the partner applied the
        request) count, silently cancelled ones (a lost request) do
        not. Registered invariant monitors observe the post-cycle
        state; a strict monitor's violation raises
        :class:`~repro.errors.InvariantViolation`."""
        executed = self.cycle
        count = self._run_cycle_inner()
        if self._monitor_entries:
            self._observe_invariants(executed)
        return count

    def _loss_coins(
        self, count: int, p: float, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The one loss-coin idiom every stochastic drop shares: a
        boolean survival mask (``True`` = delivered) from one batched
        uniform draw. ``p == 0`` consumes no RNG and returns all-True,
        so inactive fault processes leave the stream untouched; every
        caller draws ``rng.random(count)`` against the same threshold
        rule, so coins can never diverge between the fused-mask path,
        the fault path and the retry path."""
        if p <= 0.0:
            if out is None:
                return np.ones(count, dtype=bool)
            out[:] = True
            return out
        if out is None:
            return self._rng.random(count) >= p
        return np.greater_equal(self._rng.random(count), p, out=out)

    def _run_cycle_inner(self) -> int:
        """The cycle body (see :meth:`run_cycle`)."""
        if self._closed:
            # a closed engine's matrix is detached from its backend; a
            # sharded backend would silently respawn a pool and run on
            # a stale copy — fail loudly instead
            raise SimulationError("this engine is closed; build a new "
                                  "GossipEngine to run again")
        if self._pair is not None:
            return self._run_pair_cycle()
        scenario = self.scenario
        if (
            self._epochs is not None
            and self.cycle % self._epochs.cycles_per_epoch == 0
        ):
            if self.cycle > 0:
                self._finalize_epoch(self.cycle - 1)
            self._start_epoch(self.cycle)
        if scenario.crash_plan is not None:
            victims = scenario.crash_plan.crashing_at(self.cycle)
            if victims:
                self.crash(victims)
        if self._churn is not None:
            self._apply_churn()
        if self._adversary is not None:
            self._apply_adversary_state()
        mf_blocked = None
        if self._retry is not None:
            # snapshot BEFORE retry processing: a node whose exchange
            # resolves this cycle (repair or give-up) sits the cycle
            # out — its retry already was its protocol action
            blocked = (self._mf_partner >= 0) | self._mf_push_only
            if blocked.any():
                mf_blocked = blocked
            self._process_retries()
        rng = self._rng
        plan = self._plan
        plan.ensure(self.capacity)
        provider = self._provider
        if self._dynamic:
            # dynamic overlays draw among current participants — the
            # oracle provider uniformly (the paper's uniform overlay,
            # self-picks shifted), newscast from its partial views
            initiators = plan.initiators(self._participant, self._mask_version)
            if mf_blocked is not None:
                initiators = initiators[~mf_blocked[initiators]]
            count = len(initiators)
            if count < 2:
                self.cycle += 1
                return 0
            provider.begin_cycle(initiators, self._alive, rng)
            partners = provider.draw(
                initiators, rng, plan.partners[:count]
            )
            ok = plan.ok[:count]
            loss = scenario.loss_at(self.cycle)
            if provider.draws_valid_participants:
                self._loss_coins(count, loss, out=ok)
            else:
                # view draws can land on departed or not-yet-restarted
                # nodes — contacting one fails the exchange, exactly
                # like contacting a crashed neighbor on a static overlay
                np.take(self._participant, partners, out=ok)
                if loss > 0.0:
                    ok &= self._loss_coins(count, loss)
            if self._adversary_partition and self._adversary.active_at(
                self.cycle
            ):
                adv = self._adv_mask
                ok &= ~(adv[initiators] ^ adv[partners])
        else:
            initiators = plan.initiators(
                self._alive, self._mask_version, exclude=self._isolated
            )
            if mf_blocked is not None:
                initiators = initiators[~mf_blocked[initiators]]
            count = len(initiators)
            provider.begin_cycle(initiators, self._alive, rng)
            partners = provider.draw(
                initiators, rng, plan.partners[:count]
            )
            if self._eclipse is not None and self._adversary.active_at(
                self.cycle
            ):
                # eclipse capture: a victim's draw lands on its captor
                # no matter which neighbor it picked. The draw itself
                # still happens (same RNG consumption as without the
                # adversary), only the result is overridden.
                redirect = self._eclipse[initiators]
                captured = redirect >= 0
                if captured.any():
                    partners[captured] = redirect[captured]
            if self._no_failure_filters and self._mask_version == 0:
                # static fast path: every node alive (no crash has ever
                # bumped the mask version) and nothing can fail an
                # exchange, so the survivors ARE (initiators, partners)
                # — skip the mask pass and the compaction entirely.
                # No RNG is consumed either way, so trajectories stay
                # bitwise-identical to the filtered path.
                self._backend.apply_exchanges(
                    self._matrix,
                    self._functions,
                    initiators,
                    partners,
                    cycle=self.cycle,
                    trace=self._trace,
                )
                self.cycle += 1
                return count
            loss = scenario.loss_at(self.cycle)
            # one fused mask pass: contacting a crashed neighbor fails
            # the exchange, then loss coins, then the partition filter
            ok = plan.ok[:count]
            np.take(self._alive, partners, out=ok)
            if loss > 0.0:
                ok &= self._loss_coins(count, loss)
            partition = scenario.partition
            if partition is not None and partition.active_at(self.cycle):
                ok &= ~partition.blocks_array(self.cycle, initiators, partners)
            if self._adversary_partition and self._adversary.active_at(
                self.cycle
            ):
                # targeted partition: exchanges crossing the
                # honest/adversarial boundary fail
                adv = self._adv_mask
                ok &= ~(adv[initiators] ^ adv[partners])
        if self._faults is not None:
            return self._finish_cycle_with_faults(initiators, partners, ok)
        exch_i, exch_j = plan.compact(initiators, partners, ok)
        self._backend.apply_exchanges(
            self._matrix,
            self._functions,
            exch_i,
            exch_j,
            cycle=self.cycle,
            trace=self._trace,
        )
        self.cycle += 1
        return len(exch_i)

    # -- message faults ---------------------------------------------------

    def _finish_cycle_with_faults(
        self,
        initiators: np.ndarray,
        partners: np.ndarray,
        ok: np.ndarray,
    ) -> int:
        """Split this cycle's surviving exchanges by the message-fault
        coins and finish the cycle.

        ``ok`` is the legacy survival mask (dead partner, symmetric
        loss, partitions) — the fault coins layer on top of it, in
        fixed RNG order *request, reply, duplication* so trajectories
        are reproducible across backends and retry configurations:

        * ``delivered``: the request arrived at a partner willing to
          serve it — the partner applies AGGREGATE and sends the reply,
        * ``full = delivered & reply_ok``: the atomic exchange — goes
          through the execution backend's batch like any other,
        * ``partial = delivered & ~reply_ok``: the paper's one-sided
          exchange — partner adopts the combined value, initiator keeps
          its old one; applied engine-side after the batch,
        * a *busy* partner (one with its own outstanding exchange — its
          value is frozen) refuses with a NACK reply: the exchange
          fails cleanly unless the NACK itself is lost (same reply
          coin), in which case the initiator cannot tell it from a
          lost request;
        * with a :class:`~repro.kernel.messages.RetrySpec` every
          initiator that heard *nothing* becomes pending — a partial's
          initiator too, since a lost reply and a lost request look
          identical from its side.

        Returns full + partial exchange count (a partial did change
        system state; a silently cancelled exchange did not).
        """
        faults = self._faults
        retry = self._retry
        cycle = self.cycle
        count = len(initiators)
        req_ok = self._loss_coins(count, faults.request_loss_at(cycle))
        rep_ok = self._loss_coins(count, faults.reply_loss_at(cycle))
        dup = ~self._loss_coins(count, faults.duplication_at(cycle))
        delivered = ok & req_ok
        nacked = None
        if retry is not None:
            busy = self._mf_partner[partners] >= 0
            refused = delivered & busy
            delivered &= ~busy
            # a surviving NACK tells the initiator the exchange did not
            # happen — a clean failure, not a timeout
            nacked = refused & rep_ok
        full = delivered & rep_ok
        partial = delivered & ~rep_ok
        dup &= delivered
        payload = None
        if dup.any() or partial.any():
            # engine-side matrix writes ahead: drain in-flight work so
            # reads see this cycle's true pre-state
            self._backend.sync()
        if dup.any():
            # the duplicate carries the payload the initiator *sent* —
            # its row before any of this cycle's exchanges applied
            payload = self._matrix[initiators[dup]].copy()
        exch_i, exch_j = self._plan.compact(initiators, partners, full)
        full_count = len(exch_i)
        self._backend.apply_exchanges(
            self._matrix,
            self._functions,
            exch_i,
            exch_j,
            cycle=cycle,
            trace=self._trace,
        )
        partial_count = int(np.count_nonzero(partial))
        combined = sent = None
        if partial_count:
            self._backend.sync()
            combined, sent = self._apply_partial_exchanges(
                initiators[partial], partners[partial]
            )
        if payload is not None:
            self._backend.sync()
            self._apply_duplicates(partners[dup], payload)
        if retry is not None:
            unanswered = ok & ~full & ~nacked
            if unanswered.any():
                slots = initiators[unanswered]
                self._mf_partner[slots] = partners[unanswered]
                self._mf_kind[slots] = 1
                self._mf_attempt[slots] = 0
                self._mf_due[slots] = cycle + retry.delay(0)
                if partial_count:
                    # the partner serviced these and holds (for the
                    # engine: we cache) the combined reply plus the
                    # request it answered — a retransmission is
                    # answered from the cache
                    pslots = initiators[partial]
                    self._mf_kind[pslots] = 2
                    self._mf_cache[pslots] = combined
                    self._mf_sent[pslots] = sent
        self.cycle += 1
        return full_count + partial_count

    def _combine_rows(
        self, rows_i: np.ndarray, rows_j: np.ndarray
    ) -> np.ndarray:
        """Column-wise AGGREGATE over aligned row blocks (the
        ``combine_array`` contract keeps this bitwise-equal to the
        scalar ``combine`` path)."""
        out = np.empty_like(rows_i)
        for column, function in enumerate(self._functions):
            out[:, column] = function.combine_array(
                rows_i[:, column], rows_j[:, column]
            )
        return out

    def _apply_partial_exchanges(
        self, pi: np.ndarray, pj: np.ndarray
    ) -> np.ndarray:
        """The one-sided exchange: each partner ``j`` adopts
        ``AGGREGATE(x_i, x_j)``, the initiator ``i`` is left untouched.
        Applied in list order (an exchange sees every earlier write,
        the same sequential semantics the backends implement); the
        conflict-free case runs as one vectorized block, which is
        bitwise-identical. Returns ``(combined, sent)``: the combined
        rows and the initiator rows they answered — the retry protocol
        caches both as the partner's pending reply."""
        matrix = self._matrix
        n = len(pi)
        touched = np.concatenate([pi, pj])
        if len(np.unique(touched)) == len(touched):
            old = matrix[pj]
            sent = matrix[pi]
            combined = self._combine_rows(sent, old)
            matrix[pj] = combined
            delta = (combined - old).sum(axis=0)
        else:
            combined = np.empty((n, matrix.shape[1]), dtype=np.float64)
            sent = np.empty((n, matrix.shape[1]), dtype=np.float64)
            delta = np.zeros(matrix.shape[1], dtype=np.float64)
            for t in range(n):
                i = int(pi[t])
                j = int(pj[t])
                for column, function in enumerate(self._functions):
                    value = function.combine(
                        matrix[i, column], matrix[j, column]
                    )
                    delta[column] += value - matrix[j, column]
                    combined[t, column] = value
                    sent[t, column] = matrix[i, column]
                    matrix[j, column] = value
        if self._monitor_entries:
            self._ledger_add("partial", delta)
        self._mf_stats["partials"] += n
        return combined, sent

    def _apply_duplicates(
        self, dj: np.ndarray, payload: np.ndarray
    ) -> None:
        """Service duplicated requests: one more one-sided combine at
        each partner, against the stale ``payload`` the duplicate
        carried. Runs after the cycle's regular exchanges (the network
        redelivered the datagram late)."""
        matrix = self._matrix
        n = len(dj)
        if len(np.unique(dj)) == n:
            old = matrix[dj]
            combined = self._combine_rows(payload, old)
            matrix[dj] = combined
            delta = (combined - old).sum(axis=0)
        else:
            delta = np.zeros(matrix.shape[1], dtype=np.float64)
            for t in range(n):
                j = int(dj[t])
                for column, function in enumerate(self._functions):
                    value = function.combine(
                        payload[t, column], matrix[j, column]
                    )
                    delta[column] += value - matrix[j, column]
                    matrix[j, column] = value
        if self._monitor_entries:
            self._ledger_add("duplicate", delta)
        self._mf_stats["duplicates"] += n

    def _apply_retry_exchanges(
        self, fi: np.ndarray, fj: np.ndarray, adopt_i: np.ndarray
    ) -> np.ndarray:
        """Fresh exchanges started by retrying initiators: the partner
        ``j`` always adopts the combined value (it serviced the
        request); the initiator adopts it only where the reply survived
        (``adopt_i``) — elsewhere the episode went partial again.
        Returns ``(combined, sent)``."""
        matrix = self._matrix
        n = len(fi)
        touched = np.concatenate([fi, fj])
        if len(np.unique(touched)) == len(touched):
            old = matrix[fj]
            sent = matrix[fi]
            combined = self._combine_rows(sent, old)
            matrix[fj] = combined
            matrix[fi[adopt_i]] = combined[adopt_i]
            stranded = ~adopt_i
            delta = (combined[stranded] - old[stranded]).sum(axis=0)
        else:
            combined = np.empty((n, matrix.shape[1]), dtype=np.float64)
            sent = np.empty((n, matrix.shape[1]), dtype=np.float64)
            delta = np.zeros(matrix.shape[1], dtype=np.float64)
            for t in range(n):
                i = int(fi[t])
                j = int(fj[t])
                take = bool(adopt_i[t])
                for column, function in enumerate(self._functions):
                    value = function.combine(
                        matrix[i, column], matrix[j, column]
                    )
                    if not take:
                        delta[column] += value - matrix[j, column]
                    combined[t, column] = value
                    sent[t, column] = matrix[i, column]
                    matrix[j, column] = value
                    if take:
                        matrix[i, column] = value
        if self._monitor_entries:
            # the atomic subset conserves mass; only the stranded
            # partials drift
            self._ledger_add("partial", delta)
        self._mf_stats["partials"] += int(np.count_nonzero(~adopt_i))
        return combined, sent

    def _apply_repairs(self, slots: np.ndarray) -> None:
        """Deliver a retransmitted cached reply to each initiator in
        ``slots``: the initiator finally completes the exchange it
        requested with value ``sent`` and got reply ``cache`` for.

        For mean columns it applies the exchange as the *increment*
        ``x += cache - sent`` — together with the partner's recorded
        partial this sums to exactly zero mass, even if the initiator's
        value moved in between (it can have served as a partner in the
        very cycle its own exchange went partial — concurrent messages
        were already in flight). When the initiator's value is still
        frozen at ``sent`` (the common case) this reduces to adopting
        ``cache`` outright. Non-mean columns merge the late reply
        through AGGREGATE, which is the protocol-natural move for the
        idempotent combiners (max/min)."""
        cache = self._mf_cache[slots]
        sent = self._mf_sent[slots]
        old = self._matrix[slots]
        repaired = np.empty_like(cache)
        for column, function in enumerate(self._functions):
            if isinstance(function, MeanAggregate):
                repaired[:, column] = old[:, column] + (
                    cache[:, column] - sent[:, column]
                )
            else:
                repaired[:, column] = function.combine_array(
                    cache[:, column], old[:, column]
                )
        self._matrix[slots] = repaired
        if self._monitor_entries:
            self._ledger_add("repair", (repaired - old).sum(axis=0))
        self._mf_stats["repairs"] += len(slots)

    def _clear_pending(self, slots: np.ndarray) -> None:
        """Resolve outstanding episodes (``push_only`` is permanent and
        survives — only slot recycling clears it)."""
        self._mf_partner[slots] = -1
        self._mf_kind[slots] = 0
        self._mf_attempt[slots] = 0
        self._mf_due[slots] = 0

    def _process_retries(self) -> int:
        """Fire every pending exchange whose backoff timer is due.

        Runs at the top of the cycle, before this cycle's partner
        draws. Per due initiator, in slot order:

        1. Budget check — an initiator that already burned its retry
           budget gives up *now* via the spec's fallback (``accept``:
           rejoin and keep the drift; ``push_only``: permanently stop
           initiating). No coins are drawn for it.
        2. Target — ``retransmit`` resends to the recorded partner,
           ``redraw`` draws a fresh one through the partner provider.
        3. Coins — request then reply, from the shared loss-coin
           helper; a dead target is unreachable, and a target that is
           itself pending refuses *fresh* exchanges (its value is
           frozen) but still answers retransmissions from its cache.
        4. Outcome — a contacted partner that already serviced the
           original request (kind 2, retransmit mode) answers from its
           cached combined value: the initiator adopting it repairs the
           partial's mass drift *exactly*. Otherwise a fresh exchange
           runs (:meth:`_apply_retry_exchanges`). Unresolved episodes
           back off exponentially and burn one attempt.
        """
        retry = self._retry
        pending = self._mf_partner >= 0
        if not pending.any():
            return 0
        due = np.flatnonzero(pending & (self._mf_due <= self.cycle))
        if len(due) == 0:
            return 0
        self._backend.sync()
        faults = self._faults
        cycle = self.cycle
        exhausted = self._mf_attempt[due] >= retry.budget
        if exhausted.any():
            spent = due[exhausted]
            if retry.fallback == "push_only":
                self._mf_push_only[spent] = True
            self._clear_pending(spent)
            self._mf_stats["giveups"] += len(spent)
            due = due[~exhausted]
        n = len(due)
        if n == 0:
            return 0
        self._mf_stats["retries"] += n
        if retry.mode == "redraw":
            targets = self._provider.redraw(
                due.astype(np.int32), self._rng,
                np.empty(n, dtype=np.int32),
            ).astype(np.int64)
        else:
            targets = self._mf_partner[due]
        req_ok = self._loss_coins(n, faults.request_loss_at(cycle))
        rep_ok = self._loss_coins(n, faults.reply_loss_at(cycle))
        reachable = req_ok & self._participant[targets]
        # a fresh exchange needs a partner that is free to combine; a
        # kind-2 retransmission only needs the partner's *cache*, which
        # it serves without touching its own (possibly frozen) state —
        # otherwise a saturated loss burst deadlocks the whole network
        # into mutually-refusing pending nodes
        available = reachable & ~pending[targets]
        resolved = np.zeros(n, dtype=bool)
        if retry.mode == "retransmit":
            cached = reachable & (self._mf_kind[due] == 2)
            repaired = cached & rep_ok
            if repaired.any():
                self._apply_repairs(due[repaired])
                resolved |= repaired
            fresh = available & (self._mf_kind[due] == 1)
        else:
            # a redraw abandons the old episode: any cached reply at
            # the original partner is stale and never collected
            fresh = available
        if fresh.any():
            fi = due[fresh]
            fj = targets[fresh]
            adopt = rep_ok[fresh]
            combined, sent = self._apply_retry_exchanges(fi, fj, adopt)
            resolved |= fresh & rep_ok
            stranded = fresh & ~rep_ok
            if stranded.any():
                # the partner serviced this retry but the reply was
                # lost: the episode is now a cached partial against the
                # *new* target
                slots = due[stranded]
                self._mf_partner[slots] = targets[stranded]
                self._mf_kind[slots] = 2
                self._mf_cache[slots] = combined[~adopt]
                self._mf_sent[slots] = sent[~adopt]
        if resolved.any():
            self._clear_pending(due[resolved])
        unresolved = ~resolved
        if unresolved.any():
            slots = due[unresolved]
            attempts = self._mf_attempt[slots] + 1
            self._mf_attempt[slots] = attempts
            self._mf_due[slots] = cycle + np.array(
                [retry.delay(int(a)) for a in attempts], dtype=np.int64
            )
        return n

    def run(
        self,
        cycles: Optional[int] = None,
        *,
        record: str = "cycle",
        checkpoint: Optional[CheckpointSpec] = None,
    ) -> KernelRunResult:
        """Run ``cycles`` cycles (default: the scenario's budget).

        ``record="cycle"`` captures per-instance variance and mean after
        every cycle (the figures' trajectories); ``record="end"``
        captures only the initial and final snapshot, keeping scale runs
        free of per-cycle reduction passes. Epoch-restarted runs skip
        the per-instance records (the instance count may change every
        epoch) but always record the per-cycle ``alive_counts`` size
        trace and collect ``epoch_results``; an epoch that ends exactly
        at the cycle budget is finalized before returning.

        ``checkpoint`` enables periodic auto-checkpointing: after every
        ``spec.every_cycles`` completed cycles the engine writes a
        checkpoint to ``spec.directory`` (atomically — a crash mid-write
        never corrupts the last good one) and prunes to the ``spec.keep``
        newest. Checkpointing consumes no randomness, so the recorded
        trajectory is identical with or without it.
        """
        if cycles is None:
            cycles = self.scenario.cycles
        if cycles < 0:
            raise ConfigurationError(
                f"cycles must be non-negative, got {cycles}"
            )
        if record not in ("cycle", "end"):
            raise ConfigurationError(
                f"record must be 'cycle' or 'end', got {record!r}"
            )
        if checkpoint is not None and not isinstance(
            checkpoint, CheckpointSpec
        ):
            raise ConfigurationError(
                f"checkpoint must be a CheckpointSpec, got "
                f"{type(checkpoint).__name__}"
            )
        epoch_mode = self._epochs is not None
        # like exchange_counts/alive_counts, epoch_results are per-run:
        # only epochs completed during *this* call are reported (the
        # engine-level epoch_results property stays cumulative)
        epochs_already_reported = len(self._epoch_results)
        phi_already_reported = len(self._phi_log)
        result = KernelRunResult(instance_names=self._names)
        if not epoch_mode:
            for name in self._names:
                result.variances[name] = [self.variance(name)]
                result.means[name] = [self.mean(name)]
        result.alive_counts.append(self.alive_count)
        per_cycle = record == "cycle"
        for _ in range(cycles):
            exchanges = self.run_cycle()
            if per_cycle:
                if not epoch_mode:
                    for name in self._names:
                        result.variances[name].append(self.variance(name))
                        result.means[name].append(self.mean(name))
                result.alive_counts.append(self.alive_count)
            result.exchange_counts.append(exchanges)
            if (
                checkpoint is not None
                and self.cycle % checkpoint.every_cycles == 0
            ):
                self.checkpoint(checkpoint.directory)
                if checkpoint.keep is not None:
                    prune_checkpoints(checkpoint.directory, checkpoint.keep)
        if not per_cycle and cycles > 0:
            if not epoch_mode:
                for name in self._names:
                    result.variances[name].append(self.variance(name))
                    result.means[name].append(self.mean(name))
            result.alive_counts.append(self.alive_count)
        if (
            epoch_mode
            and self.cycle > 0
            and self.cycle % self._epochs.cycles_per_epoch == 0
        ):
            # a run ending exactly on an epoch boundary publishes that
            # epoch's converged estimates
            self._finalize_epoch(self.cycle - 1)
        result.epoch_results = self._epoch_results[epochs_already_reported:]
        result.phi_counts = self._phi_log[phi_already_reported:]
        return result


def run_scenario(
    scenario: Scenario, *, cycles: Optional[int] = None, trace=None
) -> KernelRunResult:
    """Build an engine for ``scenario``, run it to completion, and
    release its backend (sharded scenarios spawn a worker pool)."""
    engine = GossipEngine(scenario, trace=trace)
    try:
        return engine.run(cycles)
    finally:
        engine.close()
