"""The unified gossip engine.

:class:`GossipEngine` executes a :class:`~repro.kernel.scenario.Scenario`
under the synchronous cycle model of §3: every alive node, in index
order, contacts a random neighbor and both endpoints adopt
``AGGREGATE(x_i, x_j)`` for *every* aggregation instance at once
(GETPAIR_SEQ with §4 piggybacking). The engine owns everything
stochastic and everything stateful:

* node state as an ``(n, k)`` structure-of-arrays value matrix plus an
  alive mask — one column per aggregation instance,
* the cycle's randomness as two batched draws (one
  ``random_neighbor_array`` call for partners, one ``Generator.random``
  call for loss coins), identical no matter which backend executes, and
* the failure machinery (crash plan, loss schedule, partition).

What remains — applying the cycle's successful exchanges to the matrix
— is delegated to a pluggable
:class:`~repro.kernel.backends.ExecutionBackend`. Because backends see
identical inputs and the vectorized backend preserves per-node exchange
order, a scenario produces the same trajectory on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..rng import make_rng
from .backends import ExecutionBackend, make_backend
from .scenario import Scenario


@dataclass
class KernelRunResult:
    """Per-cycle trajectories of one engine run, per instance."""

    instance_names: Tuple[Hashable, ...]
    variances: Dict[Hashable, List[float]] = field(default_factory=dict)
    means: Dict[Hashable, List[float]] = field(default_factory=dict)
    exchange_counts: List[int] = field(default_factory=list)
    alive_counts: List[int] = field(default_factory=list)

    @property
    def primary(self) -> Hashable:
        """The first (usually only) instance id."""
        return self.instance_names[0]

    def variance_array(self, name: Optional[Hashable] = None) -> np.ndarray:
        """σ²₀ … σ²_T of one instance (default: the primary one)."""
        return np.asarray(self.variances[self.primary if name is None else name])

    def mean_array(self, name: Optional[Hashable] = None) -> np.ndarray:
        """Per-cycle means of one instance (default: the primary one)."""
        return np.asarray(self.means[self.primary if name is None else name])


class GossipEngine:
    """Cycle-driven execution of a :class:`Scenario`.

    The engine is incremental: :meth:`run` may be called repeatedly and
    :meth:`crash` may be invoked between runs, which is how the
    robustness ablations inject mid-run failures.
    """

    def __init__(self, scenario: Scenario, *, trace=None):
        self.scenario = scenario
        self._names = scenario.instance_names
        self._functions = scenario.functions
        self._matrix = scenario.initial_matrix()
        self._alive = np.ones(scenario.n, dtype=bool)
        self._rng = make_rng(scenario.seed)
        self._trace = trace
        backend_name = scenario.resolve_backend()
        if trace is not None:
            if len(self._names) > 1:
                raise SimulationError(
                    "exchange tracing supports single-instance scenarios only"
                )
            # telemetry needs the sequential per-exchange path
            backend_name = "reference"
        self._backend: ExecutionBackend = make_backend(backend_name)
        self.cycle = 0

    # -- observation -----------------------------------------------------

    @property
    def backend_name(self) -> str:
        """The concrete backend executing this engine."""
        return self._backend.name

    @property
    def instance_names(self) -> Tuple[Hashable, ...]:
        """Instance ids in column order."""
        return self._names

    @property
    def matrix(self) -> np.ndarray:
        """The ``(n, k)`` value matrix (copy; includes crashed nodes)."""
        return self._matrix.copy()

    @property
    def alive_mask(self) -> np.ndarray:
        """Boolean alive mask (copy)."""
        return self._alive.copy()

    @property
    def alive_count(self) -> int:
        """Number of alive nodes."""
        return int(self._alive.sum())

    def _column_index(self, name: Optional[Hashable]) -> int:
        if name is None:
            return 0
        try:
            return self._names.index(name)
        except ValueError:
            raise ConfigurationError(
                f"no aggregation instance {name!r}; have {self._names}"
            ) from None

    def column(self, name: Optional[Hashable] = None) -> np.ndarray:
        """One instance's approximations over *all* nodes (copy)."""
        return self._matrix[:, self._column_index(name)].copy()

    def alive_column(self, name: Optional[Hashable] = None) -> np.ndarray:
        """One instance's approximations over alive nodes."""
        return self._matrix[self._alive, self._column_index(name)]

    def variance(self, name: Optional[Hashable] = None) -> float:
        """Unbiased variance of alive approximations (eq. 3)."""
        alive = self.alive_column(name)
        if len(alive) < 2:
            return 0.0
        return float(alive.var(ddof=1))

    def mean(self, name: Optional[Hashable] = None) -> float:
        """Mean of alive approximations."""
        return float(self.alive_column(name).mean())

    # -- failure injection -----------------------------------------------

    def crash(self, node_ids: Sequence[int]) -> None:
        """Crash-stop nodes; their approximations leave the system."""
        for node_id in node_ids:
            if not 0 <= node_id < self.scenario.n:
                raise ConfigurationError(f"node id {node_id} out of range")
            self._alive[node_id] = False

    # -- execution -------------------------------------------------------

    def run_cycle(self) -> int:
        """One synchronous cycle (every alive node initiates once, in
        index order). Returns the number of successful exchanges."""
        scenario = self.scenario
        if scenario.crash_plan is not None:
            victims = scenario.crash_plan.crashing_at(self.cycle)
            if victims:
                self.crash(victims)
        rng = self._rng
        initiators = np.nonzero(self._alive)[0]
        partners = scenario.topology.random_neighbor_array(initiators, rng)
        loss = scenario.loss_at(self.cycle)
        # contacting a crashed neighbor fails the exchange
        ok = self._alive[partners]
        if loss > 0.0:
            ok &= rng.random(len(initiators)) >= loss
        partition = scenario.partition
        if partition is not None and partition.active_at(self.cycle):
            ok &= ~partition.blocks_array(self.cycle, initiators, partners)
        self._backend.apply_exchanges(
            self._matrix,
            self._functions,
            initiators[ok],
            partners[ok],
            cycle=self.cycle,
            trace=self._trace,
        )
        self.cycle += 1
        return int(ok.sum())

    def run(
        self, cycles: Optional[int] = None, *, record: str = "cycle"
    ) -> KernelRunResult:
        """Run ``cycles`` cycles (default: the scenario's budget).

        ``record="cycle"`` captures per-instance variance and mean after
        every cycle (the figures' trajectories); ``record="end"``
        captures only the initial and final snapshot, keeping scale runs
        free of per-cycle reduction passes.
        """
        if cycles is None:
            cycles = self.scenario.cycles
        if cycles < 0:
            raise ConfigurationError(
                f"cycles must be non-negative, got {cycles}"
            )
        if record not in ("cycle", "end"):
            raise ConfigurationError(
                f"record must be 'cycle' or 'end', got {record!r}"
            )
        result = KernelRunResult(instance_names=self._names)
        for name in self._names:
            result.variances[name] = [self.variance(name)]
            result.means[name] = [self.mean(name)]
        result.alive_counts.append(self.alive_count)
        per_cycle = record == "cycle"
        for _ in range(cycles):
            exchanges = self.run_cycle()
            if per_cycle:
                for name in self._names:
                    result.variances[name].append(self.variance(name))
                    result.means[name].append(self.mean(name))
                result.alive_counts.append(self.alive_count)
            result.exchange_counts.append(exchanges)
        if not per_cycle and cycles > 0:
            for name in self._names:
                result.variances[name].append(self.variance(name))
                result.means[name].append(self.mean(name))
            result.alive_counts.append(self.alive_count)
        return result


def run_scenario(
    scenario: Scenario, *, cycles: Optional[int] = None, trace=None
) -> KernelRunResult:
    """Build an engine for ``scenario`` and run it to completion."""
    return GossipEngine(scenario, trace=trace).run(cycles)
