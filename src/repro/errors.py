"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``
etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class BackendSpecError(ConfigurationError):
    """An execution-backend spec could not be parsed or resolved.

    Raised for unknown backend names and malformed parameterized specs
    (e.g. ``"sharded:zero"``). Carries the offending ``spec`` and the
    tuple of ``valid_backends`` so user-facing layers can print the
    complete set of accepted forms.
    """

    def __init__(self, spec, *, valid=(), reason=None):
        self.spec = spec
        self.valid_backends = tuple(valid)
        detail = f" ({reason})" if reason else ""
        options = ", ".join(repr(form) for form in self.valid_backends)
        super().__init__(
            f"invalid execution backend {spec!r}{detail}; "
            f"valid backends: {options}"
        )


class TopologyError(ReproError):
    """An overlay topology is malformed or cannot be constructed.

    Examples: requesting a k-regular graph with ``n * k`` odd, asking for
    a neighbor of an isolated node, or referring to a node id outside the
    topology.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This indicates a bug in a protocol implementation (e.g. an event
    scheduled in the past) rather than a user mistake.
    """


def _rebuild_shard_pool_error(phase, worker, detail):
    """Unpickling hook for :class:`ShardPoolError` (module-level so the
    pickle payload names an importable callable)."""
    return ShardPoolError(phase, worker=worker, detail=detail)


class ShardPoolError(SimulationError):
    """The sharded backend's worker pool failed, stalled or died.

    Wraps the raw multiprocessing failures (a broken pipe to a dead
    worker, a :class:`threading.BrokenBarrierError` from a barrier
    timeout, a missing acknowledgement) in one typed error naming the
    ``phase`` of the shard protocol that failed (``"command"``,
    ``"remap"``, ``"apply"``, ``"barrier"``) and, where it is known,
    the index of the ``worker`` that stalled or exited. The full
    worker diagnostics (tracebacks drained from the command pipes)
    ride in ``detail``.
    """

    def __init__(self, phase, *, worker=None, detail=""):
        self.phase = phase
        self.worker = worker
        self.detail = detail
        culprit = (
            f"worker {worker} stalled or exited"
            if worker is not None
            else "a worker stalled or exited"
        )
        message = (
            f"sharded worker pool failed during {phase}: {culprit}"
        )
        if detail:
            message = f"{message}\n{detail}"
        super().__init__(message)

    def __reduce__(self):
        # the default reduce would re-call __init__ with the assembled
        # *message* as the positional phase argument; spell the real
        # constructor arguments out so the error crosses process
        # boundaries (worker -> parent pipes, CI subprocesses) intact
        return _rebuild_shard_pool_error, (
            self.phase, self.worker, self.detail,
        )

    def __repr__(self):
        # one greppable CI-log line: phase + worker + collapsed detail
        detail = " | ".join(
            line.strip() for line in self.detail.splitlines() if line.strip()
        )
        if len(detail) > 160:
            detail = detail[:157] + "..."
        return (
            f"ShardPoolError(phase={self.phase!r}, worker={self.worker!r}, "
            f"detail={detail!r})"
        )


class InvariantViolation(SimulationError):
    """A registered invariant monitor found a violated run invariant.

    Raised by :class:`~repro.kernel.engine.GossipEngine` at the end of
    the offending cycle when the violated monitor was registered in
    ``strict`` mode; carries the structured ``findings`` (a tuple of
    :class:`~repro.kernel.invariants.InvariantFinding`) so callers can
    attribute the failure without re-parsing the message.
    """

    def __init__(self, message, findings=()):
        self.findings = tuple(findings)
        super().__init__(message)


class CheckpointError(SimulationError):
    """A checkpoint could not be written, read or validated.

    Raised for missing or torn checkpoint files, checksum mismatches,
    format-version skew, and restore-time fingerprint mismatches (a
    checkpoint resumed against an incompatible scenario).
    """


class ProtocolError(ReproError):
    """A protocol message or state transition violated the protocol rules."""


class PairSelectionError(ReproError):
    """A GETPAIR implementation could not produce a valid pair.

    Raised, for instance, when a perfect matching is requested on a
    topology that admits none, or when a selector is exhausted.
    """


class EstimationError(ReproError):
    """An aggregate estimate could not be produced (e.g. no leader instance
    reached the node during the epoch)."""
