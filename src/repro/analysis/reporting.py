"""Plain-text reporting for benchmark harnesses.

The benchmarks print the same rows/series the paper's figures plot;
these helpers render them as aligned ASCII tables so `pytest
benchmarks/ --benchmark-only` output is directly comparable to the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from ..errors import ConfigurationError

Cell = Union[str, float, int]


def _render_cell(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@dataclass
class Table:
    """A small column-aligned table builder."""

    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells: Cell) -> None:
        """Append a row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_render_cell(c) for c in cells])

    def render(self) -> str:
        """The aligned ASCII rendering."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Cell]]
) -> str:
    """One-shot table rendering."""
    table = Table(headers=list(headers), title=title)
    for row in rows:
        table.add_row(*row)
    return table.render()


def format_series(
    title: str, xs: Sequence[Cell], ys: Sequence[Cell], *, x_name: str = "x",
    y_name: str = "y"
) -> str:
    """Render a single (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"series length mismatch: {len(xs)} xs vs {len(ys)} ys"
        )
    return format_table(title, [x_name, y_name], list(zip(xs, ys)))
