"""Multi-seed replication and parameter sweeps.

Experiments in the paper are "averages over 50 independent runs";
:func:`replicate` runs an experiment function once per independent seed
stream and collects the outputs, and :func:`sweep` crosses that with a
parameter axis (e.g. network size for Figure 3(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, spawn_streams


@dataclass
class ReplicateResult:
    """Outputs of replicated runs of one experiment configuration."""

    outputs: List[Any] = field(default_factory=list)

    def as_array(self) -> np.ndarray:
        """Stack scalar or array outputs into a numpy array."""
        return np.asarray(self.outputs)


def replicate(
    experiment: Callable[[np.random.Generator], Any],
    *,
    runs: int,
    seed: SeedLike = None,
) -> ReplicateResult:
    """Run ``experiment`` once per independent RNG stream.

    ``experiment`` receives a dedicated generator; its return values are
    collected in order.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    result = ReplicateResult()
    for rng in spawn_streams(seed, runs):
        result.outputs.append(experiment(rng))
    return result


def sweep(
    experiment: Callable[[Any, np.random.Generator], Any],
    parameters: Sequence[Any],
    *,
    runs: int,
    seed: SeedLike = None,
) -> Dict[Any, ReplicateResult]:
    """Replicate ``experiment`` over every value of a parameter axis.

    Each parameter point gets its own independent seed streams, so
    adding points never perturbs existing ones.
    """
    if len(parameters) == 0:
        raise ConfigurationError("parameter axis is empty")
    outcomes: Dict[Any, ReplicateResult] = {}
    point_seeds = spawn_streams(seed, len(parameters))
    for parameter, point_rng in zip(parameters, point_seeds):
        result = ReplicateResult()
        for rng in spawn_streams(point_rng, runs):
            result.outputs.append(experiment(parameter, rng))
        outcomes[parameter] = result
    return outcomes
