"""Multi-seed replication and parameter sweeps.

Experiments in the paper are "averages over 50 independent runs";
:func:`replicate` runs an experiment function once per independent seed
stream and collects the outputs, and :func:`sweep` crosses that with a
parameter axis (e.g. network size for Figure 3(a)).

Kernel-native entry points: :func:`replicate_scenario` replicates one
declarative :class:`~repro.kernel.Scenario` across independent seed
streams, and :func:`sweep_scenario` crosses a scenario factory with a
parameter axis (see e.g. the A2 failure ablation in
``benchmarks/bench_ablation_failures.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..kernel.engine import run_scenario
from ..kernel.scenario import Scenario
from ..rng import SeedLike, spawn_streams


@dataclass
class ReplicateResult:
    """Outputs of replicated runs of one experiment configuration."""

    outputs: List[Any] = field(default_factory=list)

    def as_array(self) -> np.ndarray:
        """Stack scalar or array outputs into a numpy array."""
        return np.asarray(self.outputs)


def replicate(
    experiment: Callable[[np.random.Generator], Any],
    *,
    runs: int,
    seed: SeedLike = None,
) -> ReplicateResult:
    """Run ``experiment`` once per independent RNG stream.

    ``experiment`` receives a dedicated generator; its return values are
    collected in order.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    result = ReplicateResult()
    for rng in spawn_streams(seed, runs):
        result.outputs.append(experiment(rng))
    return result


def sweep(
    experiment: Callable[[Any, np.random.Generator], Any],
    parameters: Sequence[Any],
    *,
    runs: int,
    seed: SeedLike = None,
) -> Dict[Any, ReplicateResult]:
    """Replicate ``experiment`` over every value of a parameter axis.

    Each parameter point gets its own independent seed streams, so
    adding points never perturbs existing ones.
    """
    if len(parameters) == 0:
        raise ConfigurationError("parameter axis is empty")
    outcomes: Dict[Any, ReplicateResult] = {}
    point_seeds = spawn_streams(seed, len(parameters))
    for parameter, point_rng in zip(parameters, point_seeds):
        result = ReplicateResult()
        for rng in spawn_streams(point_rng, runs):
            result.outputs.append(experiment(parameter, rng))
        outcomes[parameter] = result
    return outcomes


def replicate_scenario(
    scenario: Scenario,
    *,
    runs: int,
    seed: SeedLike = None,
) -> ReplicateResult:
    """Run one kernel scenario once per independent seed stream.

    Each run executes a copy of ``scenario`` re-seeded from the master
    ``seed`` (default: the scenario's own seed), so runs are independent
    and the whole replication is reproducible from one integer. Outputs
    are :class:`~repro.kernel.KernelRunResult` objects.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    master = scenario.seed if seed is None else seed
    result = ReplicateResult()
    for rng in spawn_streams(master, runs):
        result.outputs.append(run_scenario(scenario.replace(seed=rng)))
    return result


def sweep_scenario(
    factory: Callable[[Any], Scenario],
    parameters: Sequence[Any],
    *,
    runs: int,
    seed: SeedLike = None,
) -> Dict[Any, ReplicateResult]:
    """Cross a scenario factory with a parameter axis (e.g. network
    size), replicating each point over independent seed streams."""
    if len(parameters) == 0:
        raise ConfigurationError("parameter axis is empty")
    outcomes: Dict[Any, ReplicateResult] = {}
    point_seeds = spawn_streams(seed, len(parameters))
    for parameter, point_rng in zip(parameters, point_seeds):
        outcomes[parameter] = replicate_scenario(
            factory(parameter), runs=runs, seed=point_rng
        )
    return outcomes
