"""Experiment harness: statistics, multi-seed runners and reporting."""

from .stats import (
    SeriesSummary,
    summarize,
    confidence_interval,
    geometric_mean,
)
from .runner import (
    replicate,
    replicate_scenario,
    sweep,
    sweep_scenario,
    ReplicateResult,
)
from .reporting import format_table, format_series, Table
from .robustness import (
    MESSAGE_FAULT_DIRECTIONS,
    MESSAGE_FAULT_POLICIES,
    MessageFaultSweep,
    RobustnessSweep,
    render_message_fault_svg,
    render_robustness_svg,
    retry_for_policy,
    run_message_fault_sweep,
    run_robustness_sweep,
)
from .validation import (
    chi_square_statistic,
    chi_square_critical,
    poisson_fit_ok,
)

__all__ = [
    "chi_square_statistic",
    "chi_square_critical",
    "poisson_fit_ok",
    "SeriesSummary",
    "summarize",
    "confidence_interval",
    "geometric_mean",
    "replicate",
    "replicate_scenario",
    "sweep",
    "sweep_scenario",
    "ReplicateResult",
    "format_table",
    "format_series",
    "Table",
    "MESSAGE_FAULT_DIRECTIONS",
    "MESSAGE_FAULT_POLICIES",
    "MessageFaultSweep",
    "RobustnessSweep",
    "render_message_fault_svg",
    "render_robustness_svg",
    "retry_for_policy",
    "run_message_fault_sweep",
    "run_robustness_sweep",
]
