"""Statistical summaries for experiment outputs.

The paper reports "averages over 50 independent runs" and error bars
showing ranges; these helpers compute exactly those summaries without
pulling in scipy (a normal-approximation CI is plenty for 50 runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SeriesSummary:
    """Mean / spread summary of replicated scalar observations."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        return self.std / np.sqrt(self.count) if self.count > 0 else float("nan")


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summary statistics of a sample (ddof=1 std for n >= 2)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    return SeriesSummary(
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
        count=int(array.size),
    )


def confidence_interval(
    values: Sequence[float], *, z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation CI for the mean (default 95 %)."""
    summary = summarize(values)
    half_width = z * summary.standard_error
    return summary.mean - half_width, summary.mean + half_width


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    The right way to average per-cycle variance *ratios* across runs.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("cannot average an empty sample")
    if np.any(array <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.log(array).mean()))
