"""Result serialization: write experiment outputs to JSON and CSV.

Benchmarks archive plain-text tables; downstream users typically want
machine-readable artifacts too. These helpers write (and read back)
simple row-oriented result sets with no dependencies beyond the
standard library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from ..errors import ConfigurationError

PathLike = Union[str, Path]
Row = Dict[str, Any]


def _validate_rows(rows: Sequence[Row]) -> List[str]:
    if not rows:
        raise ConfigurationError("no rows to write")
    fieldnames = list(rows[0].keys())
    expected = set(fieldnames)
    for index, row in enumerate(rows):
        if set(row.keys()) != expected:
            raise ConfigurationError(
                f"row {index} has fields {sorted(row.keys())}, "
                f"expected {sorted(expected)}"
            )
    return fieldnames


def write_json(path: PathLike, rows: Sequence[Row], *,
               metadata: Dict[str, Any] | None = None) -> None:
    """Write rows (plus optional run metadata) as a JSON document."""
    _validate_rows(rows)
    document = {"metadata": metadata or {}, "rows": list(rows)}
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def read_json(path: PathLike) -> Dict[str, Any]:
    """Read a document written by :func:`write_json`."""
    document = json.loads(Path(path).read_text())
    if "rows" not in document:
        raise ConfigurationError(f"{path} is not a repro result document")
    return document


def write_csv(path: PathLike, rows: Sequence[Row]) -> None:
    """Write rows as CSV with a header line."""
    fieldnames = _validate_rows(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def read_csv(path: PathLike) -> List[Row]:
    """Read a CSV written by :func:`write_csv`; numeric strings are
    converted back to int/float where possible."""
    with open(path, newline="") as handle:
        raw_rows = list(csv.DictReader(handle))

    def convert(text: str) -> Any:
        for cast in (int, float):
            try:
                return cast(text)
            except ValueError:
                continue
        return text

    return [{k: convert(v) for k, v in row.items()} for row in raw_rows]
