"""Declarative robustness sweeps: estimation error under adversaries.

The scenario-diversity flagship: a :class:`RobustnessSweep` declares a
matrix of adversary kind × adversary fraction × churn rate × topology
cells, every cell runs the §4 size-estimation workload (the COUNT
bundle of :class:`~repro.kernel.robust.MultiAggregateSpec`) under the
declared :class:`~repro.kernel.adversary.AdversarySpec`, and the per
cell output is the relative estimation error of each report reduction
(plain mean, median, trimmed mean) over independent replications —
the robustness-report figure in one JSON-able payload.

The sweep is fully declarative: :meth:`RobustnessSweep.from_mapping`
builds one from a plain mapping (parsed YAML/JSON — see
``docs/scenarios.md`` for the config cookbook), the ``repro robustness``
CLI subcommand and ``benchmarks/bench_adversary.py`` both drive it, and
:func:`render_robustness_svg` turns the payload into a dependency-free
SVG figure.

Cell semantics:

* static cells (churn rate 0) run ``cycles`` cycles on the declared
  overlay; ground truth is the full network size ``n``;
* churn cells add ``ConstantRateChurn`` (``rate * n`` nodes joining AND
  leaving per cycle) plus the §4 epoch machinery (two epochs, a fresh
  leader elected per epoch start), and measure the final epoch's
  converged estimate against the size at that epoch's start — Figure
  4's one-epoch lag. Churn requires the uniform overlay, so churn cells
  run on the complete topology only (sparse cells are static).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..failures.churn import ConstantRateChurn
from ..kernel.adversary import ADVERSARY_KINDS, AdversarySpec
from ..kernel.engine import GossipEngine
from ..kernel.lifecycle import ChurnSpec, EpochSpec
from ..kernel.robust import (
    ROBUST_REDUCTIONS,
    DEFAULT_TRIM,
    MultiAggregateSpec,
    median_of_runs,
    robust_reduce,
    size_from_count,
)
from ..rng import SeedLike, spawn_streams
from ..topology.base import Topology
from ..topology.complete import CompleteTopology
from ..topology.random_regular import RandomRegularTopology


@dataclass(frozen=True)
class RobustnessSweep:
    """One declarative robustness sweep, fully specified.

    ``fractions`` × ``kinds`` × ``topologies`` (static cells) plus
    ``fractions`` × ``kinds`` × nonzero ``churn_rates`` (complete
    overlay) — each cell replicated over ``runs`` independent seed
    streams derived from ``seed``.
    """

    n: int = 100_000
    cycles: int = 30
    cycles_per_epoch: int = 30
    runs: int = 3
    value: float = 1.0
    kinds: Tuple[str, ...] = ("lying", "inject")
    fractions: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)
    churn_rates: Tuple[float, ...] = (0.0, 0.01)
    topologies: Tuple[str, ...] = ("complete", "regular20")
    backend: str = "auto"
    seed: SeedLike = 2004
    trim: float = DEFAULT_TRIM

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if self.cycles < 1 or self.cycles_per_epoch < 1:
            raise ConfigurationError("cycles and cycles_per_epoch must be >= 1")
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")
        for sequence_name in ("kinds", "fractions", "churn_rates", "topologies"):
            object.__setattr__(
                self, sequence_name, tuple(getattr(self, sequence_name))
            )
        for kind in self.kinds:
            if kind not in ADVERSARY_KINDS:
                raise ConfigurationError(
                    f"unknown adversary kind {kind!r}; expected one of "
                    f"{ADVERSARY_KINDS}"
                )
        for fraction in self.fractions:
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"adversary fractions must be in [0, 1], got {fraction}"
                )
        for rate in self.churn_rates:
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"churn rates must be in [0, 1), got {rate}"
                )
        for name in self.topologies:
            _parse_topology_name(name)  # validate eagerly, build lazily

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "RobustnessSweep":
        """Build a sweep from a declarative config mapping (the parsed
        YAML/JSON form); unknown keys fail loudly."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(mapping) - known
        if unknown:
            raise ConfigurationError(
                f"unknown robustness-sweep keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(mapping))

    def build_topology(self, name: str) -> Topology:
        """Resolve a declarative topology name (``"complete"`` or
        ``"regular<k>"``) into an overlay of size ``n``. Overlays are
        immutable, so cells sharing a name share one cached graph —
        sparse construction at paper scale is paid once per sweep, not
        once per replication."""
        degree = _parse_topology_name(name)
        if degree is None:
            return CompleteTopology(self.n)
        return _cached_regular_topology(self.n, degree)

    def cells(self) -> List[Dict[str, Any]]:
        """The cell matrix, in execution order."""
        matrix: List[Dict[str, Any]] = []
        for kind in self.kinds:
            for topology_name in self.topologies:
                for fraction in self.fractions:
                    matrix.append({
                        "kind": kind,
                        "topology": topology_name,
                        "churn_rate": 0.0,
                        "fraction": fraction,
                    })
            for rate in self.churn_rates:
                if rate == 0.0 or kind == "eclipse":
                    # rate 0 duplicates the static complete cell;
                    # eclipse needs a static overlay
                    continue
                for fraction in self.fractions:
                    matrix.append({
                        "kind": kind,
                        "topology": "complete",
                        "churn_rate": rate,
                        "fraction": fraction,
                    })
        return matrix


def _parse_topology_name(name: str) -> Optional[int]:
    """``None`` for the complete overlay, the degree for
    ``"regular<k>"``; raises on anything else."""
    if name == "complete":
        return None
    if isinstance(name, str) and name.startswith("regular"):
        try:
            degree = int(name[len("regular"):])
        except ValueError:
            degree = 0
        if degree >= 1:
            return degree
    raise ConfigurationError(
        f"unknown topology {name!r}; expected 'complete' or 'regular<k>'"
    )


@lru_cache(maxsize=4)
def _cached_regular_topology(n: int, degree: int) -> RandomRegularTopology:
    # construction seed is a pure function of the overlay shape, so the
    # sweep is reproducible and cells share the graph
    return RandomRegularTopology(n, degree, seed=97 + 31 * degree + n)


def _indicator_reseed(context) -> np.ndarray:
    """Epoch restart for the counting instance: the lowest participant
    slot becomes the epoch's leader (holds 1), everyone else 0."""
    rows = np.zeros(len(context.participants), dtype=np.float64)
    rows[0] = 1.0
    return rows


def _run_cell_once(
    sweep: RobustnessSweep, cell: Mapping[str, Any], seed: SeedLike
) -> Dict[str, Any]:
    """One replication of one cell: run the COUNT workload under the
    cell's adversary, reduce the reported estimates every way, and
    return per-reduction size estimates plus the ground truth."""
    bundle = MultiAggregateSpec.counting(sweep.n, trim=sweep.trim)
    adversary = AdversarySpec(
        kind=cell["kind"], fraction=cell["fraction"], value=sweep.value
    )
    rate = cell["churn_rate"]
    if rate > 0.0:
        per_cycle = max(int(round(rate * sweep.n)), 1)
        scenario = bundle.scenario(
            CompleteTopology(sweep.n),
            churn=ChurnSpec(model=ConstantRateChurn(per_cycle, per_cycle)),
            epochs=EpochSpec(
                cycles_per_epoch=sweep.cycles_per_epoch,
                reseed=_indicator_reseed,
            ),
            adversary=adversary,
            seed=seed,
            backend=sweep.backend,
        )
        cycles = 2 * sweep.cycles_per_epoch
    else:
        scenario = bundle.scenario(
            sweep.build_topology(cell["topology"]),
            adversary=adversary,
            seed=seed,
            backend=sweep.backend,
        )
        cycles = sweep.cycles
    engine = GossipEngine(scenario)
    try:
        result = engine.run(cycles, record="cycle")
        if rate > 0.0:
            # the final epoch's estimate describes the size at its own
            # start (Figure 4's one-epoch lag)
            truth = float(result.alive_counts[sweep.cycles_per_epoch])
        else:
            truth = float(engine.alive_count)
        reports = engine.reported_column("count")
    finally:
        engine.close()
    cap = 100.0 * sweep.n
    estimates = {
        method: size_from_count(
            robust_reduce(reports, method, trim=sweep.trim), cap=cap
        )
        for method in ROBUST_REDUCTIONS
    }
    return {"truth": truth, "estimates": estimates}


def run_robustness_sweep(sweep: RobustnessSweep) -> Dict[str, Any]:
    """Execute the whole matrix and aggregate across replications.

    Each row carries, per reduction, the mean relative estimation error
    over the ``runs`` replications (``error_<method>``) and the error
    of the median-of-runs combined estimate
    (``runs_error_<method>`` — the UBLCS-2003-16 cross-run defense).
    """
    rows: List[Dict[str, Any]] = []
    for cell in sweep.cells():
        cell_seed = (
            "robustness", sweep.seed, cell["kind"], cell["topology"],
            cell["churn_rate"], cell["fraction"],
        )
        outcomes = [
            _run_cell_once(sweep, cell, run_rng)
            for run_rng in spawn_streams(_fold_seed(cell_seed), sweep.runs)
        ]
        row: Dict[str, Any] = dict(cell)
        row["runs"] = sweep.runs
        for method in ROBUST_REDUCTIONS:
            errors = [
                abs(outcome["estimates"][method] - outcome["truth"])
                / outcome["truth"]
                for outcome in outcomes
            ]
            row[f"error_{method}"] = float(np.mean(errors))
            combined = median_of_runs(
                [outcome["estimates"][method] for outcome in outcomes]
            )
            mean_truth = float(np.mean([o["truth"] for o in outcomes]))
            row[f"runs_error_{method}"] = float(
                abs(combined - mean_truth) / mean_truth
            )
        rows.append(row)
    return {
        "n": sweep.n,
        "cycles": sweep.cycles,
        "cycles_per_epoch": sweep.cycles_per_epoch,
        "runs": sweep.runs,
        "value": sweep.value,
        "backend": sweep.backend,
        "trim": sweep.trim,
        "kinds": list(sweep.kinds),
        "fractions": list(sweep.fractions),
        "churn_rates": list(sweep.churn_rates),
        "topologies": list(sweep.topologies),
        "rows": rows,
    }


def _fold_seed(parts: Tuple[Any, ...]) -> int:
    """Deterministic 63-bit seed from a mixed tuple (cells must keep
    their seed streams when the matrix gains or loses other cells)."""
    accumulator = 1469598103934665603  # FNV-1a offset basis
    for byte in repr(parts).encode():
        accumulator = ((accumulator ^ byte) * 1099511628211) % (1 << 63)
    return accumulator


# -- the robustness-report figure ---------------------------------------

_SVG_COLORS = {"mean": "#c0392b", "median": "#2471a3", "trimmed": "#1e8449"}


def render_robustness_svg(
    payload: Mapping[str, Any], *, width: int = 960, height: int = 360
) -> str:
    """The robustness-report figure as a dependency-free SVG string:
    one panel per adversary kind, relative estimation error (log scale)
    vs adversary fraction, one line per reduction — solid on the static
    complete overlay, dashed under the highest churn rate."""
    kinds = list(payload["kinds"])
    rows = payload["rows"]
    churn_rates = [rate for rate in payload["churn_rates"] if rate > 0.0]
    top_rate = max(churn_rates) if churn_rates else None
    panel_width = width // max(len(kinds), 1)
    margin = 52
    floor = 1e-8
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    fractions = sorted({row["fraction"] for row in rows})
    if not fractions or not kinds:
        parts.append("</svg>")
        return "\n".join(parts)
    log_low, log_high = np.log10(floor), 0.5

    def x_at(panel: int, fraction: float) -> float:
        span = max(fractions[-1] - fractions[0], 1e-9)
        inner = panel_width - margin - 16
        return panel * panel_width + margin + (
            (fraction - fractions[0]) / span
        ) * inner

    def y_at(error: float) -> float:
        level = np.clip(np.log10(max(error, floor)), log_low, log_high)
        inner = height - margin - 28
        return 28 + (log_high - level) / (log_high - log_low) * inner

    for panel, kind in enumerate(kinds):
        left = panel * panel_width
        parts.append(
            f'<text x="{left + margin}" y="16" font-weight="bold">'
            f'{kind} adversary — N={payload["n"]}</text>'
        )
        parts.append(
            f'<line x1="{left + margin}" y1="{height - margin}" '
            f'x2="{left + panel_width - 16}" y2="{height - margin}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<line x1="{left + margin}" y1="28" x2="{left + margin}" '
            f'y2="{height - margin}" stroke="black"/>'
        )
        for fraction in fractions:
            x = x_at(panel, fraction)
            parts.append(
                f'<text x="{x - 10}" y="{height - margin + 14}">'
                f'{fraction:g}</text>'
            )
        for decade in range(int(log_low), 1):
            y = y_at(10.0 ** decade)
            parts.append(
                f'<text x="{left + 6}" y="{y + 4}">1e{decade}</text>'
            )
        series = [("complete-static", 0.0, "none")]
        if top_rate is not None and kind != "eclipse":
            series.append((f"churn {top_rate:g}", top_rate, "6,4"))
        for label, rate, dash in series:
            for method in ROBUST_REDUCTIONS:
                points = []
                for fraction in fractions:
                    match = [
                        row for row in rows
                        if row["kind"] == kind
                        and row["topology"] == "complete"
                        and row["churn_rate"] == rate
                        and row["fraction"] == fraction
                    ]
                    if match:
                        points.append(
                            (x_at(panel, fraction),
                             y_at(match[0][f"error_{method}"]))
                        )
                if len(points) < 2:
                    continue
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
                dash_attr = (
                    f' stroke-dasharray="{dash}"' if dash != "none" else ""
                )
                parts.append(
                    f'<polyline points="{path}" fill="none" '
                    f'stroke="{_SVG_COLORS[method]}" stroke-width="1.6"'
                    f'{dash_attr}/>'
                )
        legend_y = 30
        for method in ROBUST_REDUCTIONS:
            parts.append(
                f'<rect x="{left + panel_width - 110}" y="{legend_y}" '
                f'width="10" height="10" fill="{_SVG_COLORS[method]}"/>'
            )
            parts.append(
                f'<text x="{left + panel_width - 96}" y="{legend_y + 9}">'
                f'{method}</text>'
            )
            legend_y += 14
        parts.append(
            f'<text x="{left + margin}" y="{height - 6}">'
            f'adversary fraction (dashed = churn)</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
