"""Declarative robustness sweeps: estimation error under adversaries.

The scenario-diversity flagship: a :class:`RobustnessSweep` declares a
matrix of adversary kind × adversary fraction × churn rate × topology
cells, every cell runs the §4 size-estimation workload (the COUNT
bundle of :class:`~repro.kernel.robust.MultiAggregateSpec`) under the
declared :class:`~repro.kernel.adversary.AdversarySpec`, and the per
cell output is the relative estimation error of each report reduction
(plain mean, median, trimmed mean) over independent replications —
the robustness-report figure in one JSON-able payload.

The sweep is fully declarative: :meth:`RobustnessSweep.from_mapping`
builds one from a plain mapping (parsed YAML/JSON — see
``docs/scenarios.md`` for the config cookbook), the ``repro robustness``
CLI subcommand and ``benchmarks/bench_adversary.py`` both drive it, and
:func:`render_robustness_svg` turns the payload into a dependency-free
SVG figure.

Cell semantics:

* static cells (churn rate 0) run ``cycles`` cycles on the declared
  overlay; ground truth is the full network size ``n``;
* churn cells add ``ConstantRateChurn`` (``rate * n`` nodes joining AND
  leaving per cycle) plus the §4 epoch machinery (two epochs, a fresh
  leader elected per epoch start), and measure the final epoch's
  converged estimate against the size at that epoch's start — Figure
  4's one-epoch lag. Churn requires the uniform overlay, so churn cells
  run on the complete topology only (sparse cells are static).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..failures.churn import ConstantRateChurn
from ..kernel.adversary import ADVERSARY_KINDS, AdversarySpec
from ..kernel.engine import GossipEngine
from ..kernel.invariants import MassConservationMonitor
from ..kernel.lifecycle import ChurnSpec, EpochSpec
from ..kernel.messages import MessageFaultSpec, RetrySpec
from ..kernel.robust import (
    ROBUST_REDUCTIONS,
    DEFAULT_TRIM,
    MultiAggregateSpec,
    median_of_runs,
    robust_reduce,
    size_from_count,
)
from ..kernel.scenario import Scenario
from ..rng import SeedLike, make_rng, spawn_streams
from ..topology.base import Topology
from ..topology.complete import CompleteTopology
from ..topology.random_regular import RandomRegularTopology


@dataclass(frozen=True)
class RobustnessSweep:
    """One declarative robustness sweep, fully specified.

    ``fractions`` × ``kinds`` × ``topologies`` (static cells) plus
    ``fractions`` × ``kinds`` × nonzero ``churn_rates`` (complete
    overlay) — each cell replicated over ``runs`` independent seed
    streams derived from ``seed``.
    """

    n: int = 100_000
    cycles: int = 30
    cycles_per_epoch: int = 30
    runs: int = 3
    value: float = 1.0
    kinds: Tuple[str, ...] = ("lying", "inject")
    fractions: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)
    churn_rates: Tuple[float, ...] = (0.0, 0.01)
    topologies: Tuple[str, ...] = ("complete", "regular20")
    backend: str = "auto"
    seed: SeedLike = 2004
    trim: float = DEFAULT_TRIM

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if self.cycles < 1 or self.cycles_per_epoch < 1:
            raise ConfigurationError("cycles and cycles_per_epoch must be >= 1")
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")
        for sequence_name in ("kinds", "fractions", "churn_rates", "topologies"):
            object.__setattr__(
                self, sequence_name, tuple(getattr(self, sequence_name))
            )
        for kind in self.kinds:
            if kind not in ADVERSARY_KINDS:
                raise ConfigurationError(
                    f"unknown adversary kind {kind!r}; expected one of "
                    f"{ADVERSARY_KINDS}"
                )
        for fraction in self.fractions:
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"adversary fractions must be in [0, 1], got {fraction}"
                )
        for rate in self.churn_rates:
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"churn rates must be in [0, 1), got {rate}"
                )
        for name in self.topologies:
            _parse_topology_name(name)  # validate eagerly, build lazily

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "RobustnessSweep":
        """Build a sweep from a declarative config mapping (the parsed
        YAML/JSON form); unknown keys fail loudly."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(mapping) - known
        if unknown:
            raise ConfigurationError(
                f"unknown robustness-sweep keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(mapping))

    def build_topology(self, name: str) -> Topology:
        """Resolve a declarative topology name (``"complete"`` or
        ``"regular<k>"``) into an overlay of size ``n``. Overlays are
        immutable, so cells sharing a name share one cached graph —
        sparse construction at paper scale is paid once per sweep, not
        once per replication."""
        degree = _parse_topology_name(name)
        if degree is None:
            return CompleteTopology(self.n)
        return _cached_regular_topology(self.n, degree)

    def cells(self) -> List[Dict[str, Any]]:
        """The cell matrix, in execution order."""
        matrix: List[Dict[str, Any]] = []
        for kind in self.kinds:
            for topology_name in self.topologies:
                for fraction in self.fractions:
                    matrix.append({
                        "kind": kind,
                        "topology": topology_name,
                        "churn_rate": 0.0,
                        "fraction": fraction,
                    })
            for rate in self.churn_rates:
                if rate == 0.0 or kind == "eclipse":
                    # rate 0 duplicates the static complete cell;
                    # eclipse needs a static overlay
                    continue
                for fraction in self.fractions:
                    matrix.append({
                        "kind": kind,
                        "topology": "complete",
                        "churn_rate": rate,
                        "fraction": fraction,
                    })
        return matrix


def _parse_topology_name(name: str) -> Optional[int]:
    """``None`` for the complete overlay, the degree for
    ``"regular<k>"``; raises on anything else."""
    if name == "complete":
        return None
    if isinstance(name, str) and name.startswith("regular"):
        try:
            degree = int(name[len("regular"):])
        except ValueError:
            degree = 0
        if degree >= 1:
            return degree
    raise ConfigurationError(
        f"unknown topology {name!r}; expected 'complete' or 'regular<k>'"
    )


@lru_cache(maxsize=4)
def _cached_regular_topology(n: int, degree: int) -> RandomRegularTopology:
    # construction seed is a pure function of the overlay shape, so the
    # sweep is reproducible and cells share the graph
    return RandomRegularTopology(n, degree, seed=97 + 31 * degree + n)


def _indicator_reseed(context) -> np.ndarray:
    """Epoch restart for the counting instance: the lowest participant
    slot becomes the epoch's leader (holds 1), everyone else 0."""
    rows = np.zeros(len(context.participants), dtype=np.float64)
    rows[0] = 1.0
    return rows


def _run_cell_once(
    sweep: RobustnessSweep, cell: Mapping[str, Any], seed: SeedLike
) -> Dict[str, Any]:
    """One replication of one cell: run the COUNT workload under the
    cell's adversary, reduce the reported estimates every way, and
    return per-reduction size estimates plus the ground truth."""
    bundle = MultiAggregateSpec.counting(sweep.n, trim=sweep.trim)
    adversary = AdversarySpec(
        kind=cell["kind"], fraction=cell["fraction"], value=sweep.value
    )
    rate = cell["churn_rate"]
    if rate > 0.0:
        per_cycle = max(int(round(rate * sweep.n)), 1)
        scenario = bundle.scenario(
            CompleteTopology(sweep.n),
            churn=ChurnSpec(model=ConstantRateChurn(per_cycle, per_cycle)),
            epochs=EpochSpec(
                cycles_per_epoch=sweep.cycles_per_epoch,
                reseed=_indicator_reseed,
            ),
            adversary=adversary,
            seed=seed,
            backend=sweep.backend,
        )
        cycles = 2 * sweep.cycles_per_epoch
    else:
        scenario = bundle.scenario(
            sweep.build_topology(cell["topology"]),
            adversary=adversary,
            seed=seed,
            backend=sweep.backend,
        )
        cycles = sweep.cycles
    engine = GossipEngine(scenario)
    try:
        result = engine.run(cycles, record="cycle")
        if rate > 0.0:
            # the final epoch's estimate describes the size at its own
            # start (Figure 4's one-epoch lag)
            truth = float(result.alive_counts[sweep.cycles_per_epoch])
        else:
            truth = float(engine.alive_count)
        reports = engine.reported_column("count")
    finally:
        engine.close()
    cap = 100.0 * sweep.n
    estimates = {
        method: size_from_count(
            robust_reduce(reports, method, trim=sweep.trim), cap=cap
        )
        for method in ROBUST_REDUCTIONS
    }
    return {"truth": truth, "estimates": estimates}


def run_robustness_sweep(sweep: RobustnessSweep) -> Dict[str, Any]:
    """Execute the whole matrix and aggregate across replications.

    Each row carries, per reduction, the mean relative estimation error
    over the ``runs`` replications (``error_<method>``) and the error
    of the median-of-runs combined estimate
    (``runs_error_<method>`` — the UBLCS-2003-16 cross-run defense).
    """
    rows: List[Dict[str, Any]] = []
    for cell in sweep.cells():
        cell_seed = (
            "robustness", sweep.seed, cell["kind"], cell["topology"],
            cell["churn_rate"], cell["fraction"],
        )
        outcomes = [
            _run_cell_once(sweep, cell, run_rng)
            for run_rng in spawn_streams(_fold_seed(cell_seed), sweep.runs)
        ]
        row: Dict[str, Any] = dict(cell)
        row["runs"] = sweep.runs
        for method in ROBUST_REDUCTIONS:
            errors = [
                abs(outcome["estimates"][method] - outcome["truth"])
                / outcome["truth"]
                for outcome in outcomes
            ]
            row[f"error_{method}"] = float(np.mean(errors))
            combined = median_of_runs(
                [outcome["estimates"][method] for outcome in outcomes]
            )
            mean_truth = float(np.mean([o["truth"] for o in outcomes]))
            row[f"runs_error_{method}"] = float(
                abs(combined - mean_truth) / mean_truth
            )
        rows.append(row)
    return {
        "n": sweep.n,
        "cycles": sweep.cycles,
        "cycles_per_epoch": sweep.cycles_per_epoch,
        "runs": sweep.runs,
        "value": sweep.value,
        "backend": sweep.backend,
        "trim": sweep.trim,
        "kinds": list(sweep.kinds),
        "fractions": list(sweep.fractions),
        "churn_rates": list(sweep.churn_rates),
        "topologies": list(sweep.topologies),
        "rows": rows,
    }


def _fold_seed(parts: Tuple[Any, ...]) -> int:
    """Deterministic 63-bit seed from a mixed tuple (cells must keep
    their seed streams when the matrix gains or loses other cells)."""
    accumulator = 1469598103934665603  # FNV-1a offset basis
    for byte in repr(parts).encode():
        accumulator = ((accumulator ^ byte) * 1099511628211) % (1 << 63)
    return accumulator


# -- the robustness-report figure ---------------------------------------

_SVG_COLORS = {"mean": "#c0392b", "median": "#2471a3", "trimmed": "#1e8449"}


def render_robustness_svg(
    payload: Mapping[str, Any], *, width: int = 960, height: int = 360
) -> str:
    """The robustness-report figure as a dependency-free SVG string:
    one panel per adversary kind, relative estimation error (log scale)
    vs adversary fraction, one line per reduction — solid on the static
    complete overlay, dashed under the highest churn rate."""
    kinds = list(payload["kinds"])
    rows = payload["rows"]
    churn_rates = [rate for rate in payload["churn_rates"] if rate > 0.0]
    top_rate = max(churn_rates) if churn_rates else None
    panel_width = width // max(len(kinds), 1)
    margin = 52
    floor = 1e-8
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    fractions = sorted({row["fraction"] for row in rows})
    if not fractions or not kinds:
        parts.append("</svg>")
        return "\n".join(parts)
    log_low, log_high = np.log10(floor), 0.5

    def x_at(panel: int, fraction: float) -> float:
        span = max(fractions[-1] - fractions[0], 1e-9)
        inner = panel_width - margin - 16
        return panel * panel_width + margin + (
            (fraction - fractions[0]) / span
        ) * inner

    def y_at(error: float) -> float:
        level = np.clip(np.log10(max(error, floor)), log_low, log_high)
        inner = height - margin - 28
        return 28 + (log_high - level) / (log_high - log_low) * inner

    for panel, kind in enumerate(kinds):
        left = panel * panel_width
        parts.append(
            f'<text x="{left + margin}" y="16" font-weight="bold">'
            f'{kind} adversary — N={payload["n"]}</text>'
        )
        parts.append(
            f'<line x1="{left + margin}" y1="{height - margin}" '
            f'x2="{left + panel_width - 16}" y2="{height - margin}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<line x1="{left + margin}" y1="28" x2="{left + margin}" '
            f'y2="{height - margin}" stroke="black"/>'
        )
        for fraction in fractions:
            x = x_at(panel, fraction)
            parts.append(
                f'<text x="{x - 10}" y="{height - margin + 14}">'
                f'{fraction:g}</text>'
            )
        for decade in range(int(log_low), 1):
            y = y_at(10.0 ** decade)
            parts.append(
                f'<text x="{left + 6}" y="{y + 4}">1e{decade}</text>'
            )
        series = [("complete-static", 0.0, "none")]
        if top_rate is not None and kind != "eclipse":
            series.append((f"churn {top_rate:g}", top_rate, "6,4"))
        for label, rate, dash in series:
            for method in ROBUST_REDUCTIONS:
                points = []
                for fraction in fractions:
                    match = [
                        row for row in rows
                        if row["kind"] == kind
                        and row["topology"] == "complete"
                        and row["churn_rate"] == rate
                        and row["fraction"] == fraction
                    ]
                    if match:
                        points.append(
                            (x_at(panel, fraction),
                             y_at(match[0][f"error_{method}"]))
                        )
                if len(points) < 2:
                    continue
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
                dash_attr = (
                    f' stroke-dasharray="{dash}"' if dash != "none" else ""
                )
                parts.append(
                    f'<polyline points="{path}" fill="none" '
                    f'stroke="{_SVG_COLORS[method]}" stroke-width="1.6"'
                    f'{dash_attr}/>'
                )
        legend_y = 30
        for method in ROBUST_REDUCTIONS:
            parts.append(
                f'<rect x="{left + panel_width - 110}" y="{legend_y}" '
                f'width="10" height="10" fill="{_SVG_COLORS[method]}"/>'
            )
            parts.append(
                f'<text x="{left + panel_width - 96}" y="{legend_y + 9}">'
                f'{method}</text>'
            )
            legend_y += 14
        parts.append(
            f'<text x="{left + margin}" y="{height - 6}">'
            f'adversary fraction (dashed = churn)</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


# -- the message-fault degradation figure -------------------------------

#: retry policies the degradation sweep compares; ``"none"`` runs the
#: fault spec without any :class:`~repro.kernel.messages.RetrySpec`
MESSAGE_FAULT_POLICIES = ("none", "retransmit", "redraw", "push_only")

#: loss directions the sweep degrades along (the asymmetry is the
#: point: request loss cancels cleanly, reply loss leaks mass)
MESSAGE_FAULT_DIRECTIONS = ("request", "reply")

_POLICY_COLORS = {
    "none": "#7f8c8d",
    "retransmit": "#2471a3",
    "redraw": "#1e8449",
    "push_only": "#c0392b",
}


def retry_for_policy(policy: str) -> Optional[RetrySpec]:
    """The :class:`RetrySpec` a sweep policy name stands for (``None``
    for the no-retry baseline)."""
    if policy == "none":
        return None
    if policy == "retransmit":
        return RetrySpec()
    if policy == "redraw":
        return RetrySpec(mode="redraw")
    if policy == "push_only":
        return RetrySpec(budget=2, fallback="push_only")
    raise ConfigurationError(
        f"unknown retry policy {policy!r}; expected one of "
        f"{MESSAGE_FAULT_POLICIES}"
    )


@dataclass(frozen=True)
class MessageFaultSweep:
    """The degradation-figure sweep: convergence factor and attributed
    mass drift vs loss rate × direction × retry policy.

    Every cell runs a plain AVG workload (normal(10, 4) initial values
    on the complete overlay) under a
    :class:`~repro.kernel.messages.MessageFaultSpec` that loses the
    cell's direction (request or reply) at the cell's rate, replicated
    over ``runs`` independent seed streams. A
    :class:`~repro.kernel.invariants.MassConservationMonitor` rides
    along, so the reported drift is the *attributed* fault drift —
    partials + duplicates offset by repairs — not a noisy end-state
    difference. Zero-rate cells run once per direction (policy
    ``"none"``): with the loss coins never flipped, every policy is
    trajectory-identical there.
    """

    n: int = 100_000
    cycles: int = 40
    runs: int = 5
    loss_rates: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2)
    directions: Tuple[str, ...] = MESSAGE_FAULT_DIRECTIONS
    policies: Tuple[str, ...] = MESSAGE_FAULT_POLICIES
    duplication: float = 0.0
    backend: str = "auto"
    seed: SeedLike = 2004

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if self.cycles < 2:
            raise ConfigurationError(
                f"cycles must be >= 2 for a convergence factor, got "
                f"{self.cycles}"
            )
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")
        for name in ("loss_rates", "directions", "policies"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        for rate in self.loss_rates:
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"loss rates must be in [0, 1), got {rate}"
                )
        for direction in self.directions:
            if direction not in MESSAGE_FAULT_DIRECTIONS:
                raise ConfigurationError(
                    f"unknown loss direction {direction!r}; expected one "
                    f"of {MESSAGE_FAULT_DIRECTIONS}"
                )
        for policy in self.policies:
            retry_for_policy(policy)  # validate eagerly
        if not 0.0 <= self.duplication < 1.0:
            raise ConfigurationError(
                f"duplication must be in [0, 1), got {self.duplication}"
            )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "MessageFaultSweep":
        """Build a sweep from a declarative config mapping; unknown
        keys fail loudly."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(mapping) - known
        if unknown:
            raise ConfigurationError(
                f"unknown message-fault-sweep keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(mapping))

    def cells(self) -> List[Dict[str, Any]]:
        """The cell matrix, in execution order. Rate-0 cells collapse
        onto the ``"none"`` policy (all policies coincide there)."""
        matrix: List[Dict[str, Any]] = []
        for direction in self.directions:
            for policy in self.policies:
                for rate in self.loss_rates:
                    if rate == 0.0 and policy != "none":
                        continue
                    matrix.append({
                        "direction": direction,
                        "policy": policy,
                        "loss_rate": rate,
                    })
        return matrix


def _convergence_factor(variances: np.ndarray) -> float:
    """Geometric per-cycle variance reduction rate over the longest
    prefix where the variance stays positive (late cycles underflow to
    exactly 0.0 on converged runs)."""
    variances = np.asarray(variances, dtype=np.float64)
    positive = np.flatnonzero(variances > 0.0)
    if len(positive) < 2 or positive[0] != 0:
        return float("nan")
    last = int(positive[-1])
    return float((variances[last] / variances[0]) ** (1.0 / last))


def _run_fault_cell_once(
    sweep: MessageFaultSweep,
    cell: Mapping[str, Any],
    seed: SeedLike,
    values: np.ndarray,
) -> Dict[str, float]:
    """One replication of one degradation cell."""
    rate = cell["loss_rate"]
    spec = MessageFaultSpec(
        request_loss=rate if cell["direction"] == "request" else 0.0,
        reply_loss=rate if cell["direction"] == "reply" else 0.0,
        duplication=sweep.duplication,
    )
    scenario = Scenario(
        CompleteTopology(sweep.n),
        values,
        message_faults=spec,
        retry=retry_for_policy(cell["policy"]),
        seed=seed,
        backend=sweep.backend,
    )
    engine = GossipEngine(scenario)
    monitor = engine.register_monitor(MassConservationMonitor())
    try:
        result = engine.run(sweep.cycles, record="cycle")
        estimate_error = abs(engine.mean() - float(values.mean()))
        stats = dict(engine.message_fault_stats)
        pending = engine.pending_retry_count
    finally:
        engine.close()
    report = monitor.summary()
    return {
        "convergence_factor": _convergence_factor(result.variance_array()),
        "drift_per_node": abs(monitor.fault_drift) / sweep.n,
        "estimate_error": float(estimate_error),
        "max_residual": float(report["max_residual"]),
        "partials": float(stats.get("partials", 0)),
        "repairs": float(stats.get("repairs", 0)),
        "retries": float(stats.get("retries", 0)),
        "giveups": float(stats.get("giveups", 0)),
        "pending_final": float(pending),
    }


def run_message_fault_sweep(sweep: MessageFaultSweep) -> Dict[str, Any]:
    """Execute the degradation matrix and aggregate across replications.

    Each row carries the replication mean of the convergence factor,
    the per-node attributed mass drift and the end-state estimate
    error, plus 95 % acceptance bands (normal-approximation half
    widths) — the statistical bands the degradation figure draws as
    whiskers.
    """
    values = make_rng(_fold_seed(("message-values", sweep.seed))).normal(
        10.0, 4.0, sweep.n
    )
    rows: List[Dict[str, Any]] = []
    for cell in sweep.cells():
        cell_seed = (
            "messages", sweep.seed, cell["direction"], cell["policy"],
            cell["loss_rate"],
        )
        outcomes = [
            _run_fault_cell_once(sweep, cell, run_rng, values)
            for run_rng in spawn_streams(_fold_seed(cell_seed), sweep.runs)
        ]
        row: Dict[str, Any] = dict(cell)
        row["runs"] = sweep.runs
        for metric in ("convergence_factor", "drift_per_node",
                       "estimate_error"):
            samples = np.asarray(
                [outcome[metric] for outcome in outcomes], dtype=np.float64
            )
            row[metric] = float(np.nanmean(samples))
            spread = (
                float(np.nanstd(samples, ddof=1)) if len(samples) > 1 else 0.0
            )
            row[f"{metric}_band"] = float(
                1.96 * spread / np.sqrt(max(len(samples), 1))
            )
        for counter in ("partials", "repairs", "retries", "giveups",
                        "pending_final", "max_residual"):
            row[counter] = float(
                np.mean([outcome[counter] for outcome in outcomes])
            )
        rows.append(row)
    return {
        "n": sweep.n,
        "cycles": sweep.cycles,
        "runs": sweep.runs,
        "duplication": sweep.duplication,
        "backend": sweep.backend,
        "loss_rates": list(sweep.loss_rates),
        "directions": list(sweep.directions),
        "policies": list(sweep.policies),
        "rows": rows,
    }


def _fault_row(
    rows: List[Dict[str, Any]], direction: str, policy: str, rate: float
) -> Optional[Dict[str, Any]]:
    """The matching sweep row; rate-0 lookups fall through to the
    shared ``"none"`` baseline cell."""
    for row in rows:
        if (
            row["direction"] == direction
            and row["loss_rate"] == rate
            and (row["policy"] == policy
                 or (rate == 0.0 and row["policy"] == "none"))
        ):
            return row
    return None


def render_message_fault_svg(
    payload: Mapping[str, Any], *, width: int = 960, height: int = 560
) -> str:
    """The degradation figure as a dependency-free SVG string: one
    column per loss direction; the top row plots per-node attributed
    mass drift (log scale), the bottom row the convergence factor
    (linear), both vs loss rate with one line per retry policy and
    95 % acceptance-band whiskers."""
    directions = list(payload["directions"])
    policies = list(payload["policies"])
    rows = payload["rows"]
    rates = sorted({row["loss_rate"] for row in rows})
    panel_width = width // max(len(directions), 1)
    panel_height = height // 2
    margin = 56
    floor = 1e-9
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if not rates or not directions:
        parts.append("</svg>")
        return "\n".join(parts)
    log_low, log_high = np.log10(floor), 0.0

    def x_at(panel: int, rate: float) -> float:
        span = max(rates[-1] - rates[0], 1e-9)
        inner = panel_width - margin - 16
        return panel * panel_width + margin + (
            (rate - rates[0]) / span
        ) * inner

    def y_drift(top: int, drift: float) -> float:
        level = np.clip(np.log10(max(drift, floor)), log_low, log_high)
        inner = panel_height - margin - 28
        return top + 28 + (log_high - level) / (log_high - log_low) * inner

    def y_factor(top: int, factor: float) -> float:
        level = np.clip(factor, 0.0, 1.0)
        inner = panel_height - margin - 28
        return top + 28 + (1.0 - level) * inner

    panel_rows = [
        ("mass drift / node (log)", "drift_per_node", y_drift),
        ("convergence factor", "convergence_factor", y_factor),
    ]
    for panel, direction in enumerate(directions):
        left = panel * panel_width
        for row_index, (title, metric, y_at) in enumerate(panel_rows):
            top = row_index * panel_height
            parts.append(
                f'<text x="{left + margin}" y="{top + 16}" '
                f'font-weight="bold">{direction}-loss — {title}, '
                f'N={payload["n"]}</text>'
            )
            parts.append(
                f'<line x1="{left + margin}" '
                f'y1="{top + panel_height - margin}" '
                f'x2="{left + panel_width - 16}" '
                f'y2="{top + panel_height - margin}" stroke="black"/>'
            )
            parts.append(
                f'<line x1="{left + margin}" y1="{top + 28}" '
                f'x2="{left + margin}" '
                f'y2="{top + panel_height - margin}" stroke="black"/>'
            )
            for rate in rates:
                x = x_at(panel, rate)
                parts.append(
                    f'<text x="{x - 10}" '
                    f'y="{top + panel_height - margin + 14}">'
                    f'{rate:g}</text>'
                )
            if metric == "drift_per_node":
                for decade in range(int(log_low), 1, 2):
                    y = y_at(top, 10.0 ** decade)
                    parts.append(
                        f'<text x="{left + 6}" y="{y + 4}">1e{decade}</text>'
                    )
            else:
                for tick in (0.0, 0.5, 1.0):
                    y = y_at(top, tick)
                    parts.append(
                        f'<text x="{left + 12}" y="{y + 4}">{tick:g}</text>'
                    )
            for policy in policies:
                color = _POLICY_COLORS.get(policy, "#34495e")
                points = []
                for rate in rates:
                    row = _fault_row(rows, direction, policy, rate)
                    if row is None:
                        continue
                    x = x_at(panel, rate)
                    y = y_at(top, row[metric])
                    points.append((x, y))
                    band = row.get(f"{metric}_band", 0.0)
                    if band > 0.0:
                        y_lo = y_at(top, max(row[metric] - band, 0.0))
                        y_hi = y_at(top, row[metric] + band)
                        parts.append(
                            f'<line x1="{x:.1f}" y1="{y_lo:.1f}" '
                            f'x2="{x:.1f}" y2="{y_hi:.1f}" '
                            f'stroke="{color}" stroke-width="1"/>'
                        )
                if len(points) < 2:
                    continue
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
                parts.append(
                    f'<polyline points="{path}" fill="none" '
                    f'stroke="{color}" stroke-width="1.6"/>'
                )
            legend_y = top + 30
            for policy in policies:
                color = _POLICY_COLORS.get(policy, "#34495e")
                parts.append(
                    f'<rect x="{left + panel_width - 116}" y="{legend_y}" '
                    f'width="10" height="10" fill="{color}"/>'
                )
                parts.append(
                    f'<text x="{left + panel_width - 102}" '
                    f'y="{legend_y + 9}">{policy}</text>'
                )
                legend_y += 14
            parts.append(
                f'<text x="{left + margin}" '
                f'y="{top + panel_height - 6}">loss rate '
                f'(whiskers = 95% band)</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)
