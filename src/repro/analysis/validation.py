"""Statistical validation helpers.

Lightweight goodness-of-fit machinery (no scipy dependency) used by the
test suite to check the paper's *distributional* claims — e.g. that
GETPAIR_RAND's φ really is Poisson(2) — rather than just moments.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


def chi_square_statistic(
    observed_counts: Sequence[float], expected_probabilities: Sequence[float]
) -> float:
    """Pearson χ² statistic, pooling the tail so every expected bin ≥ 5.

    ``observed_counts[k]`` is how many samples equal k;
    ``expected_probabilities[k]`` the model pmf. Both are pooled from
    the right until the smallest expected bin is at least 5 counts.
    """
    observed = np.asarray(observed_counts, dtype=np.float64)
    probabilities = np.asarray(expected_probabilities, dtype=np.float64)
    if observed.ndim != 1 or probabilities.ndim != 1:
        raise ConfigurationError("expected 1-D count and probability arrays")
    size = max(len(observed), len(probabilities))
    observed = np.pad(observed, (0, size - len(observed)))
    probabilities = np.pad(probabilities, (0, size - len(probabilities)))
    total = observed.sum()
    if total <= 0:
        raise ConfigurationError("no observations")
    remaining = 1.0 - probabilities.sum()
    if remaining > 1e-12:
        probabilities[-1] += remaining  # absorb the truncated tail
    expected = probabilities * total
    # pool small-expectation bins from the right
    while len(expected) > 2 and expected[-1] < 5:
        expected[-2] += expected[-1]
        observed[-2] += observed[-1]
        expected = expected[:-1]
        observed = observed[:-1]
    positive = expected > 0
    return float(((observed[positive] - expected[positive]) ** 2
                  / expected[positive]).sum())


def chi_square_critical(degrees: int, *, alpha: float = 0.01) -> float:
    """Approximate χ² critical value via the Wilson–Hilferty transform.

    Accurate to a few percent for degrees ≥ 3 — ample for pass/fail
    tests at α = 0.01/0.001.
    """
    if degrees < 1:
        raise ConfigurationError(f"degrees must be >= 1, got {degrees}")
    z = _normal_quantile(1.0 - alpha)
    h = 2.0 / (9.0 * degrees)
    return float(degrees * (1.0 - h + z * math.sqrt(h)) ** 3)


def _normal_quantile(p: float) -> float:
    """Acklam's rational approximation to the standard normal quantile."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    # coefficients for the central and tail regions
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def poisson_fit_ok(
    samples: Sequence[int], lam: float, *, alpha: float = 0.001,
    shift: int = 0,
) -> bool:
    """Whether integer ``samples`` are consistent with ``shift +
    Poisson(lam)`` by a pooled χ² test at level ``alpha``."""
    samples = np.asarray(samples, dtype=np.int64) - shift
    if np.any(samples < 0):
        return False
    max_k = int(samples.max()) + 1
    observed = np.bincount(samples, minlength=max_k)
    probabilities = np.array(
        [math.exp(k * math.log(lam) - lam - math.lgamma(k + 1)) if lam > 0
         else float(k == 0)
         for k in range(max_k)]
    )
    statistic = chi_square_statistic(observed, probabilities)
    # pooled bin count is implicit; use a conservative df = bins - 1
    pooled_bins = max(
        2, int(min(max_k, max(3, (probabilities * len(samples) >= 5).sum())))
    )
    critical = chi_square_critical(pooled_bins - 1, alpha=alpha)
    return statistic <= critical
