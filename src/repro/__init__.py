"""repro — Epidemic-style proactive aggregation in large overlay networks.

A complete reproduction of Jelasity & Montresor (ICDCS 2004): the
anti-entropy aggregation protocol, the AVG variance-reduction framework
with its GETPAIR case studies and convergence theory, the epoch-based
adaptive restarting with network size estimation, plus the simulation
substrates (topologies, event-driven and cycle-driven engines,
membership, failure models) needed to regenerate every figure in the
paper.

Quickstart::

    from repro import CompleteTopology, GetPairSeq, ValueVector, run_avg

    topology = CompleteTopology(1000)
    vector = ValueVector.uniform(1000, seed=1)
    result = run_avg(vector, GetPairSeq(topology), cycles=20, seed=2)
    print(result.geometric_mean_reduction())   # ~0.303 = 1/(2*sqrt(e))
"""

from .errors import (
    ReproError,
    ConfigurationError,
    TopologyError,
    SimulationError,
    ProtocolError,
    PairSelectionError,
    EstimationError,
)
from .rng import make_rng, spawn_streams, spawn_runs, derive_seed
from .topology import (
    Topology,
    AdjacencyTopology,
    CompleteTopology,
    RandomRegularTopology,
    ErdosRenyiTopology,
    RingTopology,
    WattsStrogatzTopology,
    BarabasiAlbertTopology,
    StarTopology,
)
from .core import (
    AggregateFunction,
    MeanAggregate,
    MaxAggregate,
    MinAggregate,
    GeometricMeanAggregate,
    GossipNetwork,
    AggregationNode,
    ConstantWaiting,
    ExponentialWaiting,
    EpochSchedule,
    SizeEstimationConfig,
    SizeEstimationExperiment,
    estimate_network_size,
    estimate_sum,
    estimate_variance_from_moments,
    PushPullBroadcast,
    AggregationService,
    AggregationReport,
    RobustAverager,
)
from .avg import (
    ValueVector,
    PairSelector,
    GetPairPerfectMatching,
    GetPairRand,
    GetPairSeq,
    GetPairPMRand,
    AvgAlgorithm,
    RunResult,
    run_avg,
    RATE_PM,
    RATE_RAND,
    RATE_SEQ,
    convergence_rate,
)
from .kernel import (
    Scenario,
    ChurnSpec,
    ChurnTrace,
    EpochSpec,
    NewscastSpec,
    PairProtocolSpec,
    GossipEngine,
    KernelRunResult,
    run_scenario,
    ExecutionBackend,
    ReferenceBackend,
    VectorizedBackend,
)
from .simulator import EventDrivenSimulator
from .simulator.cycle_sim import CycleSimulator
from .membership import StaticMembership, NewscastMembership
from .failures import (
    OscillatingChurn,
    ConstantRateChurn,
    NoChurn,
    CrashPlan,
    random_crash_plan,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "SimulationError",
    "ProtocolError",
    "PairSelectionError",
    "EstimationError",
    "make_rng",
    "spawn_streams",
    "spawn_runs",
    "derive_seed",
    "Topology",
    "AdjacencyTopology",
    "CompleteTopology",
    "RandomRegularTopology",
    "ErdosRenyiTopology",
    "RingTopology",
    "WattsStrogatzTopology",
    "BarabasiAlbertTopology",
    "StarTopology",
    "ValueVector",
    "PairSelector",
    "GetPairPerfectMatching",
    "GetPairRand",
    "GetPairSeq",
    "GetPairPMRand",
    "AvgAlgorithm",
    "RunResult",
    "run_avg",
    "RATE_PM",
    "RATE_RAND",
    "RATE_SEQ",
    "convergence_rate",
    "AggregateFunction",
    "MeanAggregate",
    "MaxAggregate",
    "MinAggregate",
    "GeometricMeanAggregate",
    "GossipNetwork",
    "AggregationNode",
    "ConstantWaiting",
    "ExponentialWaiting",
    "EpochSchedule",
    "SizeEstimationConfig",
    "SizeEstimationExperiment",
    "estimate_network_size",
    "estimate_sum",
    "estimate_variance_from_moments",
    "PushPullBroadcast",
    "AggregationService",
    "AggregationReport",
    "RobustAverager",
    "Scenario",
    "ChurnSpec",
    "ChurnTrace",
    "EpochSpec",
    "NewscastSpec",
    "PairProtocolSpec",
    "GossipEngine",
    "KernelRunResult",
    "run_scenario",
    "ExecutionBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "EventDrivenSimulator",
    "CycleSimulator",
    "StaticMembership",
    "NewscastMembership",
    "OscillatingChurn",
    "ConstantRateChurn",
    "NoChurn",
    "CrashPlan",
    "random_crash_plan",
    "__version__",
]
