"""Seeded random-number-stream management.

Every stochastic component in the library draws randomness from a
:class:`numpy.random.Generator`. This module centralizes how those
generators are created so that

* a single integer seed reproduces an entire experiment, and
* independent components (nodes, runs, churn model, transport) receive
  *independent* streams, via :meth:`numpy.random.SeedSequence.spawn`.

The paper reports averages over 50 independent runs; :func:`spawn_runs`
produces the per-run generators for exactly that pattern.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .errors import ConfigurationError

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (OS entropy), an ``int``, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged,
    which lets APIs accept either a seed or a ready-made stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise ConfigurationError(f"unsupported seed type: {type(seed).__name__}")


def spawn_streams(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from ``seed``.

    Uses ``SeedSequence.spawn`` so the streams are independent even when
    ``seed`` is small or sequential.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own bit stream.
        children = np.random.SeedSequence(
            seed.integers(0, 2**63 - 1, size=4).tolist()
        ).spawn(count)
    elif isinstance(seed, np.random.SeedSequence):
        children = seed.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def spawn_runs(seed: SeedLike, runs: int) -> List[np.random.Generator]:
    """Per-run generators for a multi-run experiment (alias of
    :func:`spawn_streams` with intent-revealing name)."""
    return spawn_streams(seed, runs)


def derive_seed(seed: SeedLike, *path: int) -> np.random.SeedSequence:
    """Derive a child ``SeedSequence`` identified by an integer ``path``.

    Useful when a component needs a stable stream identity, e.g.
    ``derive_seed(seed, run_index, node_id)``.
    """
    for component in path:
        if component < 0:
            raise ConfigurationError("seed path components must be non-negative")
    base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(
        seed if isinstance(seed, (int, np.integer)) else None
    )
    return np.random.SeedSequence(
        entropy=base.entropy, spawn_key=tuple(base.spawn_key) + tuple(path)
    )


def random_permutation(rng: np.random.Generator, n: int) -> np.ndarray:
    """A uniformly random permutation of ``range(n)`` as an int64 array."""
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    return rng.permutation(n)


def choice_excluding(
    rng: np.random.Generator, n: int, excluded: int
) -> int:
    """Uniform draw from ``range(n)`` excluding ``excluded``.

    Implemented without rejection: draw from ``n - 1`` values and shift.
    """
    if n < 2:
        raise ConfigurationError("need at least two values to exclude one")
    draw = int(rng.integers(0, n - 1))
    return draw + 1 if draw >= excluded else draw
