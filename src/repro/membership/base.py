"""Membership protocol interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np


class MembershipProtocol(ABC):
    """Supplies each node with a view: a set of gossip partners.

    The aggregation layer only ever asks for a random partner; how the
    views are maintained (statically, or by a gossip protocol of their
    own) is this layer's concern.
    """

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of member nodes."""

    @abstractmethod
    def view(self, node: int) -> List[int]:
        """The current view (neighbor candidates) of ``node``."""

    @abstractmethod
    def random_partner(self, node: int, rng: np.random.Generator) -> int:
        """A uniformly random partner from ``node``'s current view."""

    @abstractmethod
    def advance_cycle(self, rng: np.random.Generator) -> None:
        """Run one cycle of the membership protocol itself (no-op for
        static membership)."""
