"""Membership management substrates.

Anti-entropy aggregation "assumes that each node has a neighbor set …
[but] does not address the issue of the maintenance of these sets"
(§1.2). The paper points at gossip membership protocols [5, 7, 9] that
maintain approximately random overlays. This package supplies that
substrate: a trivial static membership and a Newscast-style peer
sampling service whose views approximate a random graph.
"""

from .base import MembershipProtocol
from .static import StaticMembership
from .newscast import NewscastMembership
from .adapter import MembershipTopologyAdapter
from .failure_detector import GossipFailureDetector

__all__ = [
    "MembershipProtocol",
    "StaticMembership",
    "NewscastMembership",
    "MembershipTopologyAdapter",
    "GossipFailureDetector",
]
