"""Membership management substrates — deprecated shells.

Anti-entropy aggregation "assumes that each node has a neighbor set …
[but] does not address the issue of the maintenance of these sets"
(§1.2). The membership layer now lives on the kernel as the pluggable
partner-provider protocol (:mod:`repro.kernel.membership`): select it
per scenario with ``Scenario(membership="newscast")``. The classes
here keep the historical object API as thin shells over that layer and
emit one :class:`DeprecationWarning` per class on first instantiation.
"""

from .base import MembershipProtocol
from .static import StaticMembership
from .newscast import NewscastMembership
from .adapter import MembershipTopologyAdapter
from .failure_detector import GossipFailureDetector

__all__ = [
    "MembershipProtocol",
    "StaticMembership",
    "NewscastMembership",
    "MembershipTopologyAdapter",
    "GossipFailureDetector",
]
