"""Static membership: views are frozen topology neighborhoods."""

from __future__ import annotations

from typing import List

import numpy as np

from ..topology.base import Topology
from .base import MembershipProtocol
from ._deprecation import warn_deprecated


class StaticMembership(MembershipProtocol):
    """Wraps a fixed :class:`~repro.topology.base.Topology` as a
    membership service — the setting of the paper's own experiments.

    .. deprecated::
        The kernel draws static partners directly from the topology via
        :class:`repro.kernel.membership.OracleProvider`; pass the
        topology to :class:`~repro.kernel.scenario.Scenario` instead.
    """

    def __init__(self, topology: Topology):
        warn_deprecated(
            "StaticMembership",
            "Scenario(topology=...) with the kernel's OracleProvider",
        )
        self._topology = topology

    @property
    def n(self) -> int:
        return self._topology.n

    @property
    def topology(self) -> Topology:
        """The underlying overlay graph."""
        return self._topology

    def view(self, node: int) -> List[int]:
        return [int(x) for x in self._topology.neighbors(node)]

    def random_partner(self, node: int, rng: np.random.Generator) -> int:
        return self._topology.random_neighbor(node, rng)

    def advance_cycle(self, rng: np.random.Generator) -> None:
        """Static views never change."""
