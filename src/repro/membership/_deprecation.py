"""One-shot deprecation warnings for the legacy membership shells.

The classes in :mod:`repro.membership` predate the kernel-hosted
partner-provider layer (:mod:`repro.kernel.membership`). They remain
importable and behave as before, but each class warns once — on first
instantiation, not at import time, since ``repro/__init__`` imports the
names eagerly.
"""

from __future__ import annotations

import warnings

_warned: set = set()


def warn_deprecated(name: str, replacement: str) -> None:
    """Emit a single :class:`DeprecationWarning` per class per process."""
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.membership.{name} is deprecated; use {replacement} "
        "instead. The legacy class is a thin shell over the kernel "
        "layer and will be removed in a future release.",
        DeprecationWarning,
        stacklevel=3,
    )
