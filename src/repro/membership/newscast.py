"""Newscast-style gossip peer sampling — deprecated shell.

The Newscast protocol the paper cites ([9], Jelasity & van Steen 2002)
now lives on the kernel as
:class:`repro.kernel.membership.NewscastProvider`: an int32 partial-view
matrix refreshed by batched view exchanges through the execution
backends, selectable per scenario with ``Scenario(membership=
"newscast")``. This module keeps the historical object API —
per-node ``view()`` lists, ``random_partner``, ``advance_cycle`` — as a
thin shell over the same :class:`~repro.kernel.membership.NewscastViews`
machinery, emitting one :class:`DeprecationWarning` on first use.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..kernel.backends import VectorizedBackend
from ..kernel.membership import NewscastViews
from ..rng import SeedLike, make_rng
from .base import MembershipProtocol
from ._deprecation import warn_deprecated


class NewscastMembership(MembershipProtocol):
    """Gossip-maintained random-ish views of a fixed node population.

    .. deprecated::
        Use ``Scenario(membership="newscast")`` — the kernel-hosted
        :class:`repro.kernel.membership.NewscastProvider` — which runs
        the same view-exchange machinery through the execution backends.

    Parameters
    ----------
    n:
        Number of nodes.
    view_size:
        Entries kept per node (the paper's experiments use 20).
    seed:
        Seed for the bootstrap views.
    """

    def __init__(self, n: int, view_size: int = 20, *, seed: SeedLike = None):
        warn_deprecated(
            "NewscastMembership",
            'Scenario(membership="newscast") or '
            "repro.kernel.membership.NewscastProvider",
        )
        if n < 2:
            raise ConfigurationError("newscast needs at least two nodes")
        if view_size < 1:
            raise ConfigurationError(f"view_size must be >= 1, got {view_size}")
        self._n = n
        self._views = NewscastViews(n, view_size, make_rng(seed))
        self._backend = VectorizedBackend()
        self._everyone = np.arange(n, dtype=np.int64)
        self._alive = np.ones(n, dtype=bool)

    @property
    def n(self) -> int:
        return self._n

    @property
    def view_size(self) -> int:
        """Maximum number of entries per view (capped at ``n - 1``)."""
        return self._views.view_size

    def view(self, node: int) -> List[int]:
        return sorted(int(peer) for peer in self._views.views[node])

    def random_partner(self, node: int, rng: np.random.Generator) -> int:
        row = self._views.views[node]
        return int(row[int(rng.integers(0, len(row)))])

    def advance_cycle(self, rng: np.random.Generator) -> None:
        """One Newscast exchange cycle: every node initiates a view
        exchange with a random entry of its view; merges interleave the
        recency-ordered views so stale entries drift off the tail."""
        self._views.refresh(self._everyone, self._alive, rng, self._backend)

    # -- analysis helpers ---------------------------------------------------

    def in_degree_distribution(self) -> np.ndarray:
        """How many view entries point at each node — flatness indicates
        the overlay is close to random (no hubs, no starvation)."""
        return self._views.in_degree_distribution()
