"""Newscast-style gossip peer sampling.

A faithful, simple variant of the Newscast protocol the paper cites
([9], Jelasity & van Steen 2002): each node keeps a small *view* of
(peer id, age) entries. Once per cycle every node picks a random peer
from its view, the two merge their views plus fresh self-entries, and
each keeps the ``view_size`` youngest entries for distinct peers. The
resulting overlay is connected with overwhelming probability and close
to a random graph — exactly the topology the aggregation analysis
assumes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .base import MembershipProtocol

#: a view entry is (peer id, age in cycles)
ViewEntry = Tuple[int, int]


class NewscastMembership(MembershipProtocol):
    """Gossip-maintained random-ish views of a fixed node population.

    Parameters
    ----------
    n:
        Number of nodes.
    view_size:
        Entries kept per node (the paper's experiments use 20).
    seed:
        Seed for the bootstrap views.
    """

    def __init__(self, n: int, view_size: int = 20, *, seed: SeedLike = None):
        if n < 2:
            raise ConfigurationError("newscast needs at least two nodes")
        if view_size < 1:
            raise ConfigurationError(f"view_size must be >= 1, got {view_size}")
        self._n = n
        self._view_size = min(view_size, n - 1)
        rng = make_rng(seed)
        # bootstrap: each node knows `view_size` random other nodes
        self._views: List[Dict[int, int]] = []
        for node in range(n):
            peers: Dict[int, int] = {}
            while len(peers) < self._view_size:
                candidate = int(rng.integers(0, n))
                if candidate != node:
                    peers[candidate] = 0
            self._views.append(peers)

    @property
    def n(self) -> int:
        return self._n

    @property
    def view_size(self) -> int:
        """Maximum number of entries per view."""
        return self._view_size

    def view(self, node: int) -> List[int]:
        return sorted(self._views[node])

    def random_partner(self, node: int, rng: np.random.Generator) -> int:
        peers = list(self._views[node])
        if not peers:
            raise ConfigurationError(f"node {node} has an empty view")
        return peers[int(rng.integers(0, len(peers)))]

    def advance_cycle(self, rng: np.random.Generator) -> None:
        """One Newscast exchange cycle.

        Ages increment, then every node (in random order) merges views
        with a random partner; both keep the youngest entries.
        """
        for view in self._views:
            for peer in view:
                view[peer] += 1
        order = rng.permutation(self._n)
        for node in order.tolist():
            view = self._views[node]
            if not view:
                continue
            peers = list(view)
            partner = peers[int(rng.integers(0, len(peers)))]
            self._merge(node, partner, rng)

    def _merge(self, a: int, b: int, rng: np.random.Generator) -> None:
        """Exchange views between ``a`` and ``b`` with fresh self-entries."""
        pool: Dict[int, int] = {}
        for entry_owner in (a, b):
            for peer, age in self._views[entry_owner].items():
                if peer in pool:
                    pool[peer] = min(pool[peer], age)
                else:
                    pool[peer] = age
        pool[a] = 0
        pool[b] = 0
        self._views[a] = self._select(pool, exclude=a, rng=rng)
        self._views[b] = self._select(pool, exclude=b, rng=rng)

    def _select(
        self, pool: Dict[int, int], *, exclude: int, rng: np.random.Generator
    ) -> Dict[int, int]:
        """Keep the ``view_size`` youngest entries, breaking age ties
        uniformly at random.

        Deterministic tie-breaking (e.g. by peer id) systematically
        starves high-id nodes out of every view; the random tiebreak
        keeps the in-degree distribution flat, which is the property the
        aggregation layer relies on.
        """
        candidates = [(age, peer) for peer, age in pool.items() if peer != exclude]
        tiebreak = rng.random(len(candidates))
        ranked = sorted(
            zip(candidates, tiebreak), key=lambda item: (item[0][0], item[1])
        )
        return {
            peer: age for (age, peer), _ in ranked[: self._view_size]
        }

    # -- analysis helpers ---------------------------------------------------

    def in_degree_distribution(self) -> np.ndarray:
        """How many views each node appears in — flatness indicates the
        overlay is close to random (no hubs, no starvation)."""
        counts = np.zeros(self._n, dtype=np.int64)
        for view in self._views:
            for peer in view:
                counts[peer] += 1
        return counts
