"""Adapter exposing a membership protocol as a (dynamic) topology.

Lets every overlay-consuming API in the library (pair selectors, the
cycle simulator, graph analysis) run directly on top of a gossip
membership layer's *current* views — the deployment shape the paper
assumes in §1.2. The adapter is a live window: as the membership
protocol gossips, the adapter's neighborhoods change with it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import TopologyError
from ..topology.base import Topology
from .base import MembershipProtocol
from ._deprecation import warn_deprecated


class MembershipTopologyAdapter(Topology):
    """A :class:`~repro.topology.base.Topology` view over live
    membership views.

    Edges are directed view entries treated as usable links (a node can
    initiate toward anything in its view); ``neighbors`` returns the
    current view. ``random_edge`` samples an initiator uniformly and a
    partner from its view, matching how gossip traffic actually flows.

    .. deprecated::
        The kernel hosts membership directly — ``Scenario(membership=
        "newscast")`` draws partners from live views without any
        topology adapter in between.
    """

    def __init__(self, membership: MembershipProtocol):
        warn_deprecated(
            "MembershipTopologyAdapter",
            'Scenario(membership="newscast") — the kernel draws from '
            "live views directly",
        )
        super().__init__(membership.n)
        self._membership = membership

    @property
    def membership(self) -> MembershipProtocol:
        """The underlying membership protocol."""
        return self._membership

    def neighbors(self, node: int) -> np.ndarray:
        self._check_node(node)
        return np.asarray(self._membership.view(node), dtype=np.int64)

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._membership.view(node))

    def random_neighbor(self, node: int, rng: np.random.Generator) -> int:
        self._check_node(node)
        return self._membership.random_partner(node, rng)

    def random_edge(self, rng: np.random.Generator) -> Tuple[int, int]:
        node = int(rng.integers(0, self.n))
        view = self._membership.view(node)
        if not view:
            raise TopologyError(f"node {node} has an empty view")
        return node, self._membership.random_partner(node, rng)

    def edge_count(self) -> int:
        """Number of directed view entries (an upper bound on the
        undirected edge count)."""
        return sum(len(self._membership.view(node)) for node in range(self.n))

    def advance_cycle(self, rng: np.random.Generator) -> None:
        """Run one membership gossip cycle (views change underneath)."""
        self._membership.advance_cycle(rng)
