"""Gossip-style failure detection (van Renesse et al., the paper's [15]).

Anti-entropy aggregation assumes a membership layer that eventually
stops handing out crashed peers. The classic gossip failure detector
fills that role: every node keeps a heartbeat counter per peer; once
per cycle it increments its own counter and merges (elementwise max)
heartbeat tables with a random peer. A peer whose heartbeat has not
advanced for ``suspicion_cycles`` local cycles is *suspected*.

Heartbeats of live nodes spread epidemically (O(log N) cycles), so with
a suspicion horizon of a few multiples of log N the detector is both
complete (crashed nodes eventually suspected by everyone) and accurate
(live nodes almost never suspected).
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng


class GossipFailureDetector:
    """Heartbeat-gossip failure detector over a fixed node population.

    Parameters
    ----------
    n:
        Number of nodes.
    suspicion_cycles:
        Cycles without heartbeat progress before a peer is suspected.
        Should comfortably exceed the O(log N) dissemination time.
    seed:
        RNG seed for partner selection.
    """

    def __init__(self, n: int, *, suspicion_cycles: int = 20,
                 seed: SeedLike = None):
        if n < 2:
            raise ConfigurationError("failure detector needs at least two nodes")
        if suspicion_cycles < 1:
            raise ConfigurationError(
                f"suspicion_cycles must be >= 1, got {suspicion_cycles}"
            )
        self._n = n
        self._horizon = suspicion_cycles
        self._rng = make_rng(seed)
        # heartbeat[i][j] = highest heartbeat of j known to i
        self._heartbeats = np.zeros((n, n), dtype=np.int64)
        # last_advance[i][j] = local cycle at i when heartbeat[i][j] last grew
        self._last_advance = np.zeros((n, n), dtype=np.int64)
        self._alive = np.ones(n, dtype=bool)
        self.cycle = 0

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    def crash(self, node_ids) -> None:
        """Crash nodes: they stop incrementing and gossiping."""
        for node_id in node_ids:
            if not 0 <= node_id < self._n:
                raise ConfigurationError(f"node id {node_id} out of range")
            self._alive[node_id] = False

    def run_cycle(self) -> None:
        """One detector cycle: heartbeat bumps + one merge per node."""
        alive_ids = np.nonzero(self._alive)[0]
        for i in alive_ids.tolist():
            self._heartbeats[i, i] += 1
            self._last_advance[i, i] = self.cycle
        order = self._rng.permutation(alive_ids)
        for i in order.tolist():
            j = self._random_alive_peer(i)
            if j is None:
                continue
            self._merge(i, j)
            self._merge(j, i)
        self.cycle += 1

    def _random_alive_peer(self, node: int):
        # contacting a crashed peer silently fails; bounded resampling
        for _ in range(8):
            candidate = int(self._rng.integers(0, self._n - 1))
            candidate += candidate >= node
            if self._alive[candidate]:
                return candidate
        alive = [
            k for k in range(self._n) if self._alive[k] and k != node
        ]
        if not alive:
            return None
        return alive[int(self._rng.integers(0, len(alive)))]

    def _merge(self, receiver: int, sender: int) -> None:
        fresher = self._heartbeats[sender] > self._heartbeats[receiver]
        self._heartbeats[receiver, fresher] = self._heartbeats[sender, fresher]
        self._last_advance[receiver, fresher] = self.cycle

    def run(self, cycles: int) -> None:
        """Run several cycles."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        for _ in range(cycles):
            self.run_cycle()

    # -- queries -------------------------------------------------------------

    def suspects(self, node: int) -> Set[int]:
        """The peers ``node`` currently suspects (never includes itself)."""
        if not 0 <= node < self._n:
            raise ConfigurationError(f"node id {node} out of range")
        stale = self.cycle - self._last_advance[node] > self._horizon
        stale[node] = False
        return set(np.nonzero(stale)[0].tolist())

    def trusted_peers(self, node: int) -> List[int]:
        """Peers ``node`` does not suspect — the set a membership layer
        would hand to the aggregation protocol."""
        suspected = self.suspects(node)
        return [
            peer for peer in range(self._n)
            if peer != node and peer not in suspected
        ]

    def detection_complete(self, crashed) -> bool:
        """Whether every alive node suspects every node in ``crashed``."""
        crashed = set(crashed)
        for node in np.nonzero(self._alive)[0].tolist():
            if not crashed <= self.suspects(node):
                return False
        return True

    def false_suspicion_count(self) -> int:
        """Total (observer, alive-peer) suspicion pairs — accuracy metric."""
        count = 0
        for node in np.nonzero(self._alive)[0].tolist():
            count += sum(
                1 for suspect in self.suspects(node) if self._alive[suspect]
            )
        return count
