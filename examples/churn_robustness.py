"""Robustness study: what breaks anti-entropy aggregation, and how much?

The paper (§1.4, §3.2) analyzes the clean case and defers failures to
the companion TR. This example quantifies, on one screen, the three
failure modes a deployment will actually meet:

1. symmetric message loss  — slows convergence, never wrong
2. crash-stop failures     — lose unmixed mass, bias the result
3. asymmetric reply loss   — leaks mass continuously (event-driven)

Run:  python examples/churn_robustness.py
"""

import numpy as np

from repro import CompleteTopology, CycleSimulator, GossipNetwork
from repro.avg import fit_geometric_rate, rate_seq_with_loss
from repro.simulator import BernoulliLoss

N = 1500


def loss_study():
    print("1. symmetric message loss (cycle-driven, complete overlay)")
    print(f"{'loss p':>8} {'measured rate':>15} {'thinned-phi theory':>20}")
    for p in (0.0, 0.1, 0.2, 0.4):
        values = np.random.default_rng(1).normal(0, 1, N)
        sim = CycleSimulator(
            CompleteTopology(N), values, loss_probability=p, seed=2
        )
        rate = fit_geometric_rate(sim.run(12).variance_array)
        print(f"{p:>8.2f} {rate:>15.4f} {rate_seq_with_loss(p):>20.4f}")
    print()


def crash_study():
    print("2. crash-stop failures (30% of nodes crash at cycle c)")
    print(f"{'crash cycle':>12} {'bias of converged mean':>24}")
    for crash_cycle in (0, 1, 2, 4, 8):
        rng = np.random.default_rng(3)
        values = rng.normal(10.0, 4.0, N)
        truth = values.mean()
        sim = CycleSimulator(CompleteTopology(N), values, seed=4)
        sim.run(crash_cycle)
        victims = rng.choice(N, size=N * 3 // 10, replace=False)
        sim.crash(victims.tolist())
        sim.run(25)
        print(f"{crash_cycle:>12} {abs(sim.mean() - truth):>24.5f}")
    print("   (the later the crash, the more the victims' mass has")
    print("    already mixed into the survivors, the smaller the bias)\n")


def asymmetry_study():
    print("3. asymmetric loss: event-driven push-pull, lost replies leak mass")
    print(f"{'loss p':>8} {'|mean drift| after 20 cycles':>30}")
    for p in (0.0, 0.1, 0.3):
        drifts = []
        for seed in range(3):
            values = np.random.default_rng(5).normal(10.0, 4.0, 400)
            net = GossipNetwork(
                CompleteTopology(400), values,
                loss=BernoulliLoss(p), seed=seed,
            )
            net.run_cycles(20)
            drifts.append(abs(net.approximations().mean() - net.true_mean()))
        print(f"{p:>8.2f} {np.mean(drifts):>30.6f}")
    print("   (the companion TR's robust variants repair exactly this)")


def main():
    loss_study()
    crash_study()
    asymmetry_study()


if __name__ == "__main__":
    main()
