"""Adaptive monitoring: the aggregate follows a changing signal.

The paper's core motivation (§1): "if the aggregate changes due to
network dynamism or variations in the values to be aggregated, the
output of the aggregation protocol should follow this change reasonably
quickly". This example monitors the average load of a cluster whose
load level shifts twice during the run, using the event-driven epoch
protocol of §4: every epoch the protocol restarts from the current
values, so each epoch's converged output reflects the state at that
epoch's start.

Run:  python examples/adaptive_monitoring.py
"""

import numpy as np

from repro.core.epoch_protocol import EpochGossipNetwork

N = 300
CYCLES_PER_EPOCH = 25
EPOCHS = 6


def main():
    rng = np.random.default_rng(3)
    base_load = rng.uniform(0.2, 0.8, N)

    def load_multiplier(time):
        """A synthetic day: quiet, then a traffic spike, then recovery."""
        epoch = time / CYCLES_PER_EPOCH
        if epoch < 2:
            return 1.0
        if epoch < 4:
            return 3.0  # spike
        return 1.5  # partial recovery

    def provider(node_id, time):
        return float(base_load[node_id % N]) * load_multiplier(time)

    net = EpochGossipNetwork(
        N, provider, cycles_per_epoch=CYCLES_PER_EPOCH, seed=17
    )
    net.run_epochs(EPOCHS + 0.05)

    print(f"{N} nodes, epoch = {CYCLES_PER_EPOCH} cycles; load spikes 3x "
          "during epochs 2-3\n")
    print("epoch   true avg @ start   every node's converged estimate")
    for epoch in range(EPOCHS):
        truth = base_load.mean() * load_multiplier(epoch * CYCLES_PER_EPOCH)
        estimates = net.epoch_estimates(epoch)
        print(f"{epoch:>5}   {truth:>16.4f}   "
              f"{estimates.mean():>10.4f}  (spread {estimates.std():.2e}, "
              f"{len(estimates)} nodes)")
    print("\nthe estimate follows the signal with one-epoch latency and")
    print("machine-precision agreement across nodes — proactive aggregation.")


if __name__ == "__main__":
    main()
