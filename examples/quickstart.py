"""Quickstart: compute a network-wide average with anti-entropy gossip.

Every node holds a private value (say, its CPU load). After a handful
of gossip cycles every node's local approximation equals the global
average — no coordinator, no spanning tree, no global knowledge.

Run:  python examples/quickstart.py
"""

from repro import (
    CompleteTopology,
    GetPairSeq,
    RATE_SEQ,
    ValueVector,
    run_avg,
)


def main():
    n = 1000
    topology = CompleteTopology(n)

    # each node starts with a private value; the network-wide truth:
    vector = ValueVector.uniform(n, low=0.0, high=100.0, seed=7)
    true_average = vector.mean
    print(f"{n} nodes, true average = {true_average:.4f}")
    print(f"initial variance across nodes = {vector.variance:.4f}\n")

    # the practical protocol: every node contacts one random neighbor
    # per cycle (GETPAIR_SEQ) and both adopt the pair's mean
    result = run_avg(vector, GetPairSeq(topology), cycles=20, seed=42)

    print("cycle   variance          reduction")
    for stats in result.cycles[:10]:
        print(f"{stats.cycle:>5}   {stats.variance_after:.6e}   "
              f"{stats.reduction:.4f}")
    print("  ...")
    print(f"\ntheory predicts a per-cycle reduction of 1/(2*sqrt(e)) = "
          f"{RATE_SEQ:.4f}")
    print(f"measured geometric mean            = "
          f"{result.geometric_mean_reduction():.4f}")

    print(f"\nafter 20 cycles:")
    print(f"  every node's estimate  = {vector.values.min():.6f} .. "
          f"{vector.values.max():.6f}")
    print(f"  true average           = {true_average:.6f}")
    print(f"  worst node error       = {vector.max_error():.2e}")


if __name__ == "__main__":
    main()
