"""Aggregation over a gossip membership protocol (the full §1.2 stack).

The paper assumes "a connected unbiased random topology" maintained by
a peer-sampling protocol [5, 7, 9]. This example stacks the two layers
the way a real deployment would:

  Newscast peer sampling  →  random partner per cycle  →  anti-entropy
  averaging on top

and verifies that the convergence matches the theory for random
overlays, while the membership layer keeps the overlay healthy
(flat in-degrees, no starvation).

Run:  python examples/membership_stack.py
"""

import numpy as np

from repro import NewscastMembership, MeanAggregate, RATE_SEQ


def main():
    n = 2000
    cycles = 20
    rng = np.random.default_rng(5)
    membership = NewscastMembership(n, view_size=20, seed=6)

    values = rng.normal(50.0, 15.0, n).tolist()
    truth = float(np.mean(values))
    aggregate = MeanAggregate()

    print(f"{n} nodes, Newscast views of 20, {cycles} cycles\n")
    print("cycle  variance        in-degree min/max")
    variances = [float(np.var(values, ddof=1))]
    for cycle in range(1, cycles + 1):
        membership.advance_cycle(rng)  # membership gossip round
        for node in range(n):  # aggregation round over live views
            partner = membership.random_partner(node, rng)
            combined = aggregate.combine(values[node], values[partner])
            values[node] = combined
            values[partner] = combined
        variances.append(float(np.var(values, ddof=1)))
        if cycle <= 10 or cycle == cycles:
            in_degrees = membership.in_degree_distribution()
            print(f"{cycle:>5}  {variances[-1]:.6e}  "
                  f"{in_degrees.min():>3} / {in_degrees.max():<3}")

    ratios = np.array(variances[1:]) / np.array(variances[:-1])
    rate = float(np.exp(np.log(ratios[:12]).mean()))
    print(f"\nempirical per-cycle reduction : {rate:.4f}")
    print(f"theory for random overlays    : {RATE_SEQ:.4f}  (1/(2*sqrt(e)))")
    print(f"final network mean            : {np.mean(values):.6f}")
    print(f"ground truth                  : {truth:.6f}")


if __name__ == "__main__":
    main()
