"""Network size estimation in a churning P2P overlay (the paper's §4).

A tracker-less file-sharing network wants every peer to know roughly
how many peers are online, continuously, even as peers come and go on
a day/night cycle. One peer per epoch seeds a counting instance with
value 1 (everyone else starts at 0); averaging drives every node's
value to 1/N, and the protocol restarts every epoch so the estimate
adapts.

Run:  python examples/size_estimation.py
"""

from repro import (
    OscillatingChurn,
    SizeEstimationConfig,
    SizeEstimationExperiment,
)


def main():
    # a 10 000-peer swarm whose size swings ±10 % over a "day", with
    # 10 peers joining and 10 leaving every cycle on top
    config = SizeEstimationConfig(
        cycles=600,
        cycles_per_epoch=30,
        initial_size=10_000,
        expected_leaders=1.0,
        seed=2004,
    )
    churn = OscillatingChurn(
        mid=10_000, amplitude=1_000, period=300, fluctuation=10
    )

    experiment = SizeEstimationExperiment(config, churn=churn)
    experiment.run()

    print("epoch  end    actual@start   estimate (min .. max)        error")
    for report in experiment.reports:
        print(
            f"{report.epoch:>5}  {report.end_cycle:>4}   "
            f"{report.size_at_start:>10}   "
            f"{report.estimate_mean:>9.1f} "
            f"({report.estimate_min:>9.1f} .. {report.estimate_max:>9.1f})  "
            f"{report.relative_error:>7.3%}"
        )

    errors = [r.relative_error for r in experiment.reports]
    print(f"\nmean relative error across epochs: "
          f"{sum(errors) / len(errors):.3%}")
    print("note: each estimate describes the size at its epoch's START —")
    print("the curve tracks the real size translated by one epoch (Fig 4).")


if __name__ == "__main__":
    main()
