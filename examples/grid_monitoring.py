"""Grid monitoring: several aggregates at once over a realistic stack.

The paper's motivation (§1): "the identity of the most powerful peer in
a grid or the total amount of free space in a distributed storage".
This example runs the event-driven protocol (asynchronous activations,
real message latency, 2 % message loss) over a 20-regular overlay and
computes, via separate protocol instances and derived estimators:

* the average free disk space          (AGGREGATE_AVG),
* the maximum node capability          (AGGREGATE_MAX — epidemic flood),
* the minimum node capability          (AGGREGATE_MIN),
* the TOTAL free space                 (average x network size),
* the VARIANCE of free space           (from first and second moments).

Run:  python examples/grid_monitoring.py
"""

import numpy as np

from repro import (
    GossipNetwork,
    MaxAggregate,
    MinAggregate,
    RandomRegularTopology,
    estimate_sum,
    estimate_variance_from_moments,
)
from repro.core.aggregates import moment_values
from repro.simulator import BernoulliLoss, UniformLatency

N = 2000
CYCLES = 25


def run_instance(topology, values, aggregate=None, seed=0):
    """One protocol instance under latency and loss."""
    network = GossipNetwork(
        topology,
        values,
        aggregate=aggregate,
        latency=UniformLatency(0.01, 0.05),  # delays << cycle length
        loss=BernoulliLoss(0.02),
        seed=seed,
    )
    network.run_cycles(CYCLES)
    return network


def main():
    rng = np.random.default_rng(99)
    topology = RandomRegularTopology(N, 20, seed=1)

    free_space_gb = rng.lognormal(mean=4.0, sigma=0.8, size=N)
    capability = rng.uniform(1.0, 100.0, size=N)

    print(f"simulating {N} grid nodes, 20-regular overlay, "
          f"{CYCLES} cycles, 2% message loss\n")

    avg_net = run_instance(topology, free_space_gb, seed=10)
    sq_net = run_instance(topology, moment_values(free_space_gb, 2), seed=11)
    max_net = run_instance(topology, capability, MaxAggregate(), seed=12)
    min_net = run_instance(topology, capability, MinAggregate(), seed=13)

    # a typical node's view after convergence (node 0 here):
    mean_est = avg_net.nodes[0].approximation
    second_moment_est = sq_net.nodes[0].approximation
    max_est = max_net.nodes[0].approximation
    min_est = min_net.nodes[0].approximation

    total_est = estimate_sum(mean_est, N)  # N known or from counting
    var_est = estimate_variance_from_moments(mean_est, second_moment_est)

    rows = [
        ("average free space (GB)", mean_est, free_space_gb.mean()),
        ("total free space (GB)", total_est, free_space_gb.sum()),
        ("free-space std dev (GB)", np.sqrt(var_est), free_space_gb.std()),
        ("max capability", max_est, capability.max()),
        ("min capability", min_est, capability.min()),
    ]
    print(f"{'aggregate':<28}{'node-0 estimate':>18}{'ground truth':>16}"
          f"{'rel. err':>10}")
    for name, estimate, truth in rows:
        rel = abs(estimate - truth) / abs(truth)
        print(f"{name:<28}{estimate:>18.3f}{truth:>16.3f}{rel:>10.2%}")

    print("\nmax/min floods are exact (epidemic broadcast); averaging-based")
    print("estimates carry a small bias from the 2% asymmetric message loss.")


if __name__ == "__main__":
    main()
