"""Property-based tests (hypothesis) on the core invariants.

These encode the paper's structural guarantees:

* mass conservation — the elementary step and every full cycle conserve
  the vector sum exactly, for *any* inputs (§3.2: "the elementary
  variance reduction step … does not change the sum");
* monotone variance — no pair sequence can increase the variance;
* contraction — values stay within the initial [min, max] envelope;
* aggregate algebra — AGGREGATE functions are symmetric and bounded;
* adversary restrictions — the §3 invariants restricted to honest
  nodes survive any adversary the kernel can express (lying conserves
  all mass, a targeted partition conserves honest mass, injection can
  only move honest values inside the honest∪injected envelope).
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.avg import GetPairRand, GetPairSeq, ValueVector, run_avg
from repro.core import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
)
from repro.kernel import AdversarySpec, GossipEngine, Scenario
from repro.topology import CompleteTopology

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

value_lists = st.lists(finite_floats, min_size=4, max_size=64)

pair_indices = st.tuples(st.integers(0, 63), st.integers(0, 63))


class TestElementaryStepProperties:
    @given(values=value_lists, i=st.integers(0, 1000), j=st.integers(0, 1000))
    def test_mass_conserved(self, values, i, j):
        vec = ValueVector(values)
        i, j = i % vec.n, j % vec.n
        if i == j:
            j = (j + 1) % vec.n
        before = vec.total
        vec.elementary_step(i, j)
        assert math.isclose(vec.total, before, rel_tol=1e-12, abs_tol=1e-6)

    @given(values=value_lists, i=st.integers(0, 1000), j=st.integers(0, 1000))
    def test_variance_never_increases(self, values, i, j):
        vec = ValueVector(values)
        i, j = i % vec.n, j % vec.n
        if i == j:
            j = (j + 1) % vec.n
        before = vec.variance
        vec.elementary_step(i, j)
        # tiny float-noise allowance scaled to the data magnitude
        scale = max(abs(before), 1.0)
        assert vec.variance <= before + 1e-9 * scale

    @given(values=value_lists, i=st.integers(0, 1000), j=st.integers(0, 1000))
    def test_envelope_contracts(self, values, i, j):
        vec = ValueVector(values)
        i, j = i % vec.n, j % vec.n
        if i == j:
            j = (j + 1) % vec.n
        low, high = vec.values.min(), vec.values.max()
        vec.elementary_step(i, j)
        assert vec.values.min() >= low - 1e-9 * max(abs(low), 1.0)
        assert vec.values.max() <= high + 1e-9 * max(abs(high), 1.0)


class TestFullRunProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(finite_floats, min_size=4, max_size=40),
        cycles=st.integers(0, 5),
        seed=st.integers(0, 2**31),
    )
    def test_run_conserves_mean_seq(self, values, cycles, seed):
        vec = ValueVector(values)
        initial_mean = vec.mean
        run_avg(vec, GetPairSeq(CompleteTopology(vec.n)), cycles, seed=seed)
        assert math.isclose(
            vec.mean, initial_mean, rel_tol=1e-9, abs_tol=1e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(finite_floats, min_size=4, max_size=40),
        cycles=st.integers(1, 5),
        seed=st.integers(0, 2**31),
    )
    def test_run_variance_monotone_rand(self, values, cycles, seed):
        vec = ValueVector(values)
        result = run_avg(
            vec, GetPairRand(CompleteTopology(vec.n)), cycles, seed=seed
        )
        variances = result.variances
        scale = max(variances[0], 1.0)
        assert np.all(np.diff(variances) <= 1e-9 * scale)

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(finite_floats, min_size=4, max_size=40),
        seed=st.integers(0, 2**31),
    )
    def test_envelope_holds_across_run(self, values, seed):
        vec = ValueVector(values)
        low, high = vec.values.min(), vec.values.max()
        run_avg(vec, GetPairSeq(CompleteTopology(vec.n)), 4, seed=seed)
        margin = 1e-9 * max(abs(low), abs(high), 1.0)
        assert vec.values.min() >= low - margin
        assert vec.values.max() <= high + margin


class TestAggregateProperties:
    @given(x=finite_floats, y=finite_floats)
    def test_mean_symmetric(self, x, y):
        agg = MeanAggregate()
        assert agg.combine(x, y) == agg.combine(y, x)

    @given(x=finite_floats, y=finite_floats)
    def test_mean_between_inputs(self, x, y):
        combined = MeanAggregate().combine(x, y)
        assert min(x, y) <= combined <= max(x, y)

    @given(x=finite_floats, y=finite_floats)
    def test_max_is_one_of_inputs(self, x, y):
        assert MaxAggregate().combine(x, y) in (x, y)

    @given(x=finite_floats, y=finite_floats)
    def test_max_ge_min(self, x, y):
        assert MaxAggregate().combine(x, y) >= MinAggregate().combine(x, y)

    @given(x=finite_floats)
    def test_aggregates_idempotent(self, x):
        for agg in (MeanAggregate(), MaxAggregate(), MinAggregate()):
            assert agg.combine(x, x) == x

    @given(x=finite_floats, y=finite_floats, z=finite_floats)
    def test_max_associative(self, x, y, z):
        agg = MaxAggregate()
        assert agg.combine(agg.combine(x, y), z) == agg.combine(
            x, agg.combine(y, z)
        )


# small networks and budgets: each example is a whole engine run
adversary_values = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=8,
    max_size=32,
)


def adversary_run(values, kind, fraction, seed, value=0.0, cycles=3):
    scenario = Scenario(
        CompleteTopology(len(values)),
        np.asarray(values),
        adversary=AdversarySpec(kind=kind, fraction=fraction, value=value),
        seed=seed,
        backend="reference",
    )
    engine = GossipEngine(scenario)
    engine.run(cycles)
    return engine


class TestAdversaryInvariants:
    """The §3 invariants, restricted to honest nodes, under adversaries."""

    @settings(max_examples=15, deadline=None)
    @given(
        values=adversary_values,
        fraction=st.floats(0.0, 0.5),
        seed=st.integers(0, 2**31),
    )
    def test_lying_conserves_all_mass(self, values, fraction, seed):
        """Byzantine reporting never touches state: the full §3.2 mass
        invariant holds over *all* nodes, lies notwithstanding."""
        engine = adversary_run(values, "lying", fraction, seed, value=1e9)
        total = float(np.asarray(values).sum())
        assert math.isclose(
            float(engine.alive_column().sum()), total,
            rel_tol=1e-9, abs_tol=1e-3,
        )

    @settings(max_examples=15, deadline=None)
    @given(
        values=adversary_values,
        fraction=st.floats(0.0, 0.5),
        seed=st.integers(0, 2**31),
    )
    def test_partition_conserves_honest_mass(self, values, fraction, seed):
        """A targeted partition seals the boundary, so the mass
        invariant holds restricted to the honest block."""
        engine = adversary_run(values, "partition", fraction, seed)
        honest_total = float(np.asarray(values)[engine.honest_mask].sum())
        assert math.isclose(
            float(engine.honest_column().sum()), honest_total,
            rel_tol=1e-9, abs_tol=1e-3,
        )

    @settings(max_examples=15, deadline=None)
    @given(
        values=adversary_values,
        fraction=st.floats(0.0, 1.0),
        injected=st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        seed=st.integers(0, 2**31),
    )
    def test_inject_respects_extended_envelope(
        self, values, fraction, injected, seed
    ):
        """Injection breaks mass conservation by design, but the §3
        contraction envelope survives in extended form: every honest
        value stays inside [min, max] of the initial values plus the
        injected value — means of means cannot escape their inputs."""
        engine = adversary_run(
            values, "inject", fraction, seed, value=injected
        )
        honest = engine.honest_column()
        if len(honest) == 0:
            return
        low = min(min(values), injected)
        high = max(max(values), injected)
        margin = 1e-9 * max(abs(low), abs(high), 1.0)
        assert honest.min() >= low - margin
        assert honest.max() <= high + margin
