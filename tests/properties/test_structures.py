"""Property-based tests on the substrate data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.avg import GetPairPerfectMatching, GetPairSeq
from repro.core import EpochSchedule, MeanAggregate, MultiAggregateState, combine_multi
from repro.rng import choice_excluding, make_rng
from repro.simulator import EventDrivenSimulator
from repro.topology import CompleteTopology, RingTopology


class TestTopologyProperties:
    @given(n=st.integers(2, 40))
    def test_complete_neighbor_counts(self, n):
        topo = CompleteTopology(n)
        assert all(topo.degree(i) == n - 1 for i in range(n))

    @given(n=st.integers(3, 60), seed=st.integers(0, 2**31))
    def test_ring_symmetry(self, n, seed):
        topo = RingTopology(n, 2)
        for i, j in topo.edges():
            assert topo.has_edge(j, i)

    @given(n=st.integers(2, 50), excluded=st.integers(0, 49),
           seed=st.integers(0, 2**31))
    def test_choice_excluding_in_range(self, n, excluded, seed):
        excluded = excluded % n
        if n < 2:
            return
        rng = make_rng(seed)
        draw = choice_excluding(rng, n, excluded)
        assert 0 <= draw < n
        assert draw != excluded


class TestPairSelectorProperties:
    @settings(max_examples=30, deadline=None)
    @given(half_n=st.integers(2, 40), seed=st.integers(0, 2**31))
    def test_pm_always_two_disjoint_matchings(self, half_n, seed):
        n = 2 * half_n
        selector = GetPairPerfectMatching(CompleteTopology(n))
        pairs = selector.cycle_pairs(make_rng(seed))
        phi = selector.phi_counts(pairs)
        assert np.all(phi == 2)
        edges = {frozenset(p) for p in pairs.tolist()}
        assert len(edges) == n  # all N pairs distinct

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 60), seed=st.integers(0, 2**31))
    def test_seq_initiator_order(self, n, seed):
        selector = GetPairSeq(CompleteTopology(n))
        pairs = selector.cycle_pairs(make_rng(seed))
        assert pairs[:, 0].tolist() == list(range(n))
        assert np.all(pairs[:, 0] != pairs[:, 1])


class TestEpochScheduleProperties:
    @given(k=st.integers(1, 100), cycle=st.integers(0, 10_000))
    def test_epoch_partition(self, k, cycle):
        schedule = EpochSchedule(k)
        epoch = schedule.epoch_of(cycle)
        start = schedule.epoch_start_cycle(epoch)
        assert start <= cycle < start + k

    @given(k=st.integers(1, 100), cycle=st.integers(0, 10_000))
    def test_wait_lands_on_boundary(self, k, cycle):
        schedule = EpochSchedule(k)
        landing = cycle + schedule.cycles_until_next_epoch(cycle)
        assert schedule.is_epoch_start(landing)

    @given(a=st.integers(0, 1000), b=st.integers(0, 1000))
    def test_adoption_monotone(self, a, b):
        assert EpochSchedule.adopt(a, b) >= max(a, b)


class TestMultiAggregateProperties:
    @given(
        x=st.floats(-1e6, 1e6, allow_nan=False),
        y=st.floats(-1e6, 1e6, allow_nan=False),
    )
    def test_combine_converges_both_sides(self, x, y):
        left = MultiAggregateState()
        left.add_instance("m", MeanAggregate(), x)
        right = MultiAggregateState()
        right.add_instance("m", MeanAggregate(), y)
        combine_multi(left, right)
        assert left.get("m") == right.get("m")

    @given(values=st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                           min_size=1, max_size=8))
    def test_repeated_combine_idempotent(self, values):
        """Combining identical states leaves them unchanged."""
        left = MultiAggregateState()
        right = MultiAggregateState()
        for index, value in enumerate(values):
            left.add_instance(index, MeanAggregate(), value)
            right.add_instance(index, MeanAggregate(), value)
        combine_multi(left, right)
        for index, value in enumerate(values):
            assert left.get(index) == value


class TestEngineProperties:
    @settings(max_examples=30, deadline=None)
    @given(delays=st.lists(st.floats(0.0, 100.0, allow_nan=False),
                           min_size=1, max_size=30))
    def test_events_fire_in_time_order(self, delays):
        engine = EventDrivenSimulator()
        fired = []
        for delay in delays:
            engine.schedule_after(delay, lambda d=delay: fired.append(d))
        engine.run_until(100.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
