"""Property-based tests for the extension modules (churn, trace, io,
matrix, robust averaging)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.io import read_csv, read_json, write_csv, write_json
from repro.avg.matrix import cycle_matrix, is_doubly_stochastic
from repro.core import RobustAverager
from repro.failures import ConstantRateChurn, OscillatingChurn
from repro.rng import make_rng
from repro.simulator import ExchangeTrace
from repro.topology import CompleteTopology


class TestChurnProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        mid=st.integers(10, 5000),
        amplitude_fraction=st.floats(0.0, 0.9),
        period=st.integers(2, 500),
        cycle=st.integers(0, 2000),
    )
    def test_oscillation_target_within_bounds(
        self, mid, amplitude_fraction, period, cycle
    ):
        amplitude = int(mid * amplitude_fraction)
        churn = OscillatingChurn(mid, amplitude, period)
        target = churn.target_size(cycle)
        assert mid - amplitude - 1 <= target <= mid + amplitude + 1

    @settings(max_examples=40, deadline=None)
    @given(
        mid=st.integers(10, 2000),
        amplitude_fraction=st.floats(0.0, 0.5),
        period=st.integers(2, 200),
        fluctuation=st.integers(0, 20),
        start=st.integers(2, 4000),
    )
    def test_steps_never_empty_network(
        self, mid, amplitude_fraction, period, fluctuation, start
    ):
        amplitude = int(mid * amplitude_fraction)
        churn = OscillatingChurn(mid, amplitude, period,
                                 fluctuation=fluctuation)
        size = start
        for cycle in range(50):
            step = churn.step(cycle, size)
            assert step.joins >= 0
            assert 0 <= step.leaves < size or size <= 1
            size += step.joins - step.leaves
            assert size >= 1

    @settings(max_examples=30, deadline=None)
    @given(joins=st.integers(0, 50), leaves=st.integers(0, 50),
           size=st.integers(1, 500))
    def test_constant_rate_bounds(self, joins, leaves, size):
        step = ConstantRateChurn(joins, leaves).step(0, size)
        assert step.joins == joins
        assert step.leaves <= max(size - 1, 0)


class TestTraceProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(1, 50),
        count=st.integers(0, 120),
    )
    def test_ring_buffer_invariants(self, capacity, count):
        trace = ExchangeTrace(capacity=capacity)
        for k in range(count):
            trace.record(float(k), 0, 1, 0.0, 0.0, 0.0)
        assert len(trace) == min(count, capacity)
        assert trace.dropped == max(count - capacity, 0)
        times = [record.time for record in trace]
        assert times == sorted(times)  # order preserved

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(
        st.tuples(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)),
        min_size=1, max_size=30,
    ))
    def test_mass_delta_zero_for_midpoints(self, values):
        trace = ExchangeTrace()
        for x, y in values:
            trace.record(0.0, 0, 1, x, y, (x + y) / 2)
        scale = max(sum(abs(x) + abs(y) for x, y in values), 1.0)
        assert abs(trace.mass_delta()) < 1e-9 * scale


class TestIoProperties:
    simple_cell = st.one_of(
        st.integers(-10**9, 10**9),
        st.floats(-1e9, 1e9, allow_nan=False),
        st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
            min_size=1, max_size=10,
        ),
    )

    @settings(max_examples=25, deadline=None)
    @given(rows=st.lists(
        st.fixed_dictionaries({"a": simple_cell, "b": simple_cell}),
        min_size=1, max_size=10,
    ))
    def test_json_roundtrip(self, rows, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "rows.json"
        write_json(path, rows)
        assert read_json(path)["rows"] == rows


class TestMatrixProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 12),
        steps=st.integers(1, 30),
        seed=st.integers(0, 2**31),
    )
    def test_arbitrary_pair_products_doubly_stochastic(self, n, steps, seed):
        rng = make_rng(seed)
        pairs = []
        for _ in range(steps):
            i = int(rng.integers(0, n))
            j = int(rng.integers(0, n - 1))
            j = j + 1 if j >= i else j
            pairs.append((i, j))
        assert is_doubly_stochastic(cycle_matrix(n, pairs))


class TestRobustProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        instances=st.integers(1, 6),
        cycles=st.integers(0, 6),
        seed=st.integers(0, 2**31),
    )
    def test_every_instance_conserves_mass(self, instances, cycles, seed):
        values = np.linspace(-5.0, 5.0, 40)
        averager = RobustAverager(
            CompleteTopology(40), values, instances=instances, seed=seed
        )
        averager.run(cycles)
        for state in averager._state:
            assert abs(sum(state) - values.sum()) < 1e-8
