"""Smoke tests: the shipped examples must run and print sane output.

Only the fast examples run in the regular suite; the heavier ones are
exercised implicitly by the equivalent integration tests.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    """Execute an example script in-process and capture stdout."""
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "true average" in out
        assert "worst node error" in out

    def test_membership_stack(self):
        out = run_example("membership_stack.py")
        assert "empirical per-cycle reduction" in out
        # the printed empirical rate is in the random-overlay ballpark
        line = [l for l in out.splitlines()
                if "empirical per-cycle reduction" in l][0]
        rate = float(line.split(":")[1])
        assert 0.25 < rate < 0.40

    def test_adaptive_monitoring(self):
        out = run_example("adaptive_monitoring.py")
        assert "proactive aggregation" in out
        assert "300 nodes" in out

    def test_all_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "size_estimation.py",
            "grid_monitoring.py",
            "membership_stack.py",
            "churn_robustness.py",
            "adaptive_monitoring.py",
        } <= names
