"""Tests for ``tools/plot_history.py`` (the CI trend renderer).

The tool is stdlib-only (CI runners have no plotting stack), so the
tests exercise it end-to-end: JSONL in, well-formed SVG out, with the
timing and memory panels populated from the same keys that
``bench_history.py`` summarizes.
"""

import importlib.util
import json
import xml.dom.minidom
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parents[2] / "tools" / "plot_history.py"

spec = importlib.util.spec_from_file_location("plot_history", TOOL)
plot_history = importlib.util.module_from_spec(spec)
spec.loader.exec_module(plot_history)


def history_row(label, benches):
    return {
        "timestamp": "2026-08-08T00:00:00Z",
        "label": label,
        "commit": "abc1234",
        "benches": benches,
    }


def write_history(path, rows):
    path.write_text(
        "".join(json.dumps(row) + "\n" for row in rows)
    )


@pytest.fixture
def history_file(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    write_history(path, [
        history_row("run1", {
            "scale": {"n": 100000, "seconds": 0.25,
                      "reference_seconds": 2.4,
                      "peak_rss_bytes": 400_000_000},
            "shard": {"n": 1000000, "vectorized_seconds": 1.3,
                      "sharded_w1_seconds": 1.4,
                      "peak_rss_bytes": 410_000_000,
                      "peak_rss_children_bytes": 230_000_000},
        }),
        history_row("run2", {
            "scale": {"n": 100000, "seconds": 0.24,
                      "reference_seconds": 2.5,
                      "peak_rss_bytes": 402_000_000},
            # shard bench dropped this run: series must stay sparse
        }),
    ])
    return path


class TestRender:
    def test_writes_wellformed_svg_with_both_panels(self, history_file,
                                                    tmp_path):
        out = tmp_path / "history.svg"
        assert plot_history.main(
            ["--history", str(history_file), "--out", str(out)]
        ) == 0
        svg = out.read_text()
        xml.dom.minidom.parseString(svg)  # raises on malformed output
        assert "wall-clock timings" in svg
        assert "peak RSS" in svg
        # multi-point series draw polylines, and every series is
        # legended by its bench.key name
        assert "<polyline" in svg
        assert "scale.seconds" in svg
        assert "shard.vectorized_seconds" in svg
        assert "shard.peak_rss_bytes" in svg

    def test_single_run_renders_markers_without_polyline(self, tmp_path):
        path = tmp_path / "h.jsonl"
        write_history(path, [history_row("only", {
            "scale": {"seconds": 0.25, "peak_rss_bytes": 1_000_000},
        })])
        out = tmp_path / "single.svg"
        assert plot_history.main(
            ["--history", str(path), "--out", str(out)]
        ) == 0
        svg = out.read_text()
        xml.dom.minidom.parseString(svg)
        assert "<circle" in svg

    def test_last_limits_plotted_runs(self, history_file, tmp_path):
        out = tmp_path / "last.svg"
        assert plot_history.main(
            ["--history", str(history_file), "--out", str(out),
             "--last", "1"]
        ) == 0
        assert "run1" not in out.read_text()

    def test_real_repo_history_renders(self, tmp_path):
        """The git-tracked history must stay renderable."""
        history = TOOL.parent.parent / "BENCH_history.jsonl"
        out = tmp_path / "repo.svg"
        assert plot_history.main(
            ["--history", str(history), "--out", str(out)]
        ) == 0
        xml.dom.minidom.parseString(out.read_text())


class TestEdgeCases:
    def test_missing_history_is_an_error(self, tmp_path):
        assert plot_history.main(
            ["--history", str(tmp_path / "nope.jsonl"),
             "--out", str(tmp_path / "x.svg")]
        ) == 2

    def test_unplottable_history_writes_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_history(path, [history_row("r", {"scale": {"n": 1000}})])
        out = tmp_path / "none.svg"
        assert plot_history.main(
            ["--history", str(path), "--out", str(out)]
        ) == 0
        assert not out.exists()

    def test_timing_and_memory_key_filters(self):
        assert plot_history.is_timing_key("seconds")
        assert plot_history.is_timing_key("vectorized_seconds")
        assert not plot_history.is_timing_key("speedup")
        assert not plot_history.is_timing_key("n")
        assert plot_history.is_memory_key("peak_rss_bytes")
        assert plot_history.is_memory_key("peak_rss_children_bytes")
        assert not plot_history.is_memory_key("rss_budget_bytes")
