"""Tests for core.epoch — the §4 epoch schedule."""

import pytest

from repro.avg.theory import RATE_SEQ
from repro.core import EpochSchedule
from repro.errors import ConfigurationError


class TestSchedule:
    def test_epoch_of(self):
        schedule = EpochSchedule(30)
        assert schedule.epoch_of(0) == 0
        assert schedule.epoch_of(29) == 0
        assert schedule.epoch_of(30) == 1
        assert schedule.epoch_of(95) == 3

    def test_is_epoch_start(self):
        schedule = EpochSchedule(10)
        assert schedule.is_epoch_start(0)
        assert schedule.is_epoch_start(10)
        assert not schedule.is_epoch_start(5)

    def test_epoch_start_cycle(self):
        assert EpochSchedule(30).epoch_start_cycle(2) == 60

    def test_cycles_until_next_epoch(self):
        schedule = EpochSchedule(30)
        assert schedule.cycles_until_next_epoch(0) == 30
        assert schedule.cycles_until_next_epoch(29) == 1
        assert schedule.cycles_until_next_epoch(30) == 30

    def test_join_wait_is_consistent(self):
        """A joiner at cycle c waiting cycles_until_next_epoch lands on
        an epoch start."""
        schedule = EpochSchedule(7)
        for cycle in range(40):
            landing = cycle + schedule.cycles_until_next_epoch(cycle)
            assert schedule.is_epoch_start(landing)
            assert schedule.epoch_of(landing) == schedule.epoch_of(cycle) + 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpochSchedule(0)
        with pytest.raises(ConfigurationError):
            EpochSchedule(10).epoch_of(-1)
        with pytest.raises(ConfigurationError):
            EpochSchedule(10).epoch_start_cycle(-2)
        with pytest.raises(ConfigurationError):
            EpochSchedule(10).cycles_until_next_epoch(-1)
        with pytest.raises(ConfigurationError):
            EpochSchedule(10).is_epoch_start(-1)


class TestAdoption:
    def test_adopt_higher(self):
        assert EpochSchedule.adopt(3, 5) == 5

    def test_keep_current_when_higher(self):
        assert EpochSchedule.adopt(5, 3) == 5

    def test_equal(self):
        assert EpochSchedule.adopt(4, 4) == 4


class TestEpochLengthChoice:
    def test_required_length_from_rate(self):
        schedule = EpochSchedule(30)
        k = schedule.required_epoch_length(RATE_SEQ, 1e-4)
        # 0.303^k <= 1e-4  =>  k = 8
        assert k == 8
        assert RATE_SEQ**k <= 1e-4
        assert RATE_SEQ ** (k - 1) > 1e-4

    def test_paper_epoch_length_is_ample(self):
        """The Figure 4 epoch (30 cycles of SEQ) drives variance below
        1e-15 — machine-precision convergence, as the paper intends."""
        assert RATE_SEQ**30 < 1e-15
