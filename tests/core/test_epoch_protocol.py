"""Tests for core.epoch_protocol — the event-driven §4 mechanism."""

import numpy as np
import pytest

from repro.core.epoch_protocol import EpochGossipNetwork
from repro.errors import ConfigurationError
from repro.simulator import BernoulliLoss


def static_values(n, seed=1, mean=10.0, std=4.0):
    values = np.random.default_rng(seed).normal(mean, std, n)

    def provider(node_id, time):
        return float(values[node_id % n]) if node_id < n else 0.0

    return values, provider


class TestValidation:
    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            EpochGossipNetwork(1, lambda i, t: 0.0)

    def test_epoch_length_positive(self):
        with pytest.raises(ConfigurationError):
            EpochGossipNetwork(5, lambda i, t: 0.0, cycles_per_epoch=0)

    def test_delta_t_positive(self):
        with pytest.raises(ConfigurationError):
            EpochGossipNetwork(5, lambda i, t: 0.0, delta_t=0.0)


class TestConvergenceWithinEpoch:
    def test_epoch_outputs_converge_to_mean(self):
        n = 200
        values, provider = static_values(n)
        net = EpochGossipNetwork(
            n, provider, cycles_per_epoch=25, seed=2
        )
        net.run_epochs(1.05)
        estimates = net.epoch_estimates(0)
        assert len(estimates) == n
        assert np.allclose(estimates, values.mean(), atol=1e-4)

    def test_consecutive_epochs_all_converge(self):
        n = 150
        values, provider = static_values(n, seed=3)
        net = EpochGossipNetwork(n, provider, cycles_per_epoch=25, seed=4)
        net.run_epochs(3.05)
        for epoch in range(3):
            estimates = net.epoch_estimates(epoch)
            assert len(estimates) == n
            assert np.allclose(estimates, values.mean(), atol=1e-3)

    def test_short_epoch_less_converged(self):
        n = 150
        values, provider = static_values(n, seed=5)
        net = EpochGossipNetwork(n, provider, cycles_per_epoch=3, seed=6)
        net.run_epochs(1.05)
        estimates = net.epoch_estimates(0)
        assert estimates.std() > 0.01  # visibly unconverged


class TestAdaptivity:
    def test_tracks_changing_attribute(self):
        """The restart makes the aggregate adaptive: when the underlying
        attribute doubles mid-run, the next epoch's output reflects it."""
        n = 150
        base = np.random.default_rng(7).normal(10.0, 3.0, n)
        epoch_seconds = 25.0

        def provider(node_id, time):
            scale = 2.0 if time >= epoch_seconds else 1.0
            return float(base[node_id % n]) * scale

        net = EpochGossipNetwork(n, provider, cycles_per_epoch=25, seed=8)
        net.run_epochs(2.05)
        first = net.epoch_estimates(0)
        second = net.epoch_estimates(1)
        assert np.allclose(first, base.mean(), atol=1e-3)
        assert np.allclose(second, 2 * base.mean(), atol=2e-3)


class TestJoinProtocol:
    def test_joiner_waits_for_next_epoch(self):
        n = 100
        values, provider = static_values(n, seed=9)
        net = EpochGossipNetwork(n, provider, cycles_per_epoch=20, seed=10)
        net.run_epochs(0.5)  # mid-epoch 0
        joiner = net.join()
        # the joiner must not have recorded anything for epoch 0
        net.run_epochs(0.55)  # end of epoch 0 passes
        assert all(o.epoch != 0 for o in net.nodes[joiner].outputs)

    def test_joiner_participates_in_next_epoch(self):
        n = 100
        values, provider = static_values(n, seed=11)
        net = EpochGossipNetwork(n, provider, cycles_per_epoch=25, seed=12)
        net.run_epochs(0.5)
        joiner = net.join()
        net.run_epochs(1.6)  # epoch 1 completes
        estimates = net.epoch_estimates(1)
        assert len(estimates) == n + 1  # joiner reported too
        joiner_outputs = [
            o for o in net.nodes[joiner].outputs if o.epoch == 1
        ]
        assert len(joiner_outputs) == 1

    def test_join_requires_alive_contact(self):
        n = 3
        _, provider = static_values(n, seed=13)
        net = EpochGossipNetwork(n, provider, seed=14)
        net.crash_nodes(list(net.nodes))
        with pytest.raises(ConfigurationError):
            net.join()


class TestEpochAdoption:
    def test_straggler_pulled_forward(self):
        """A node whose epoch lags (simulated by direct manipulation)
        adopts the higher epoch on first contact — the epidemic
        epoch-start spreading of §4."""
        n = 50
        values, provider = static_values(n, seed=15)
        net = EpochGossipNetwork(n, provider, cycles_per_epoch=10, seed=16)
        net.start()
        straggler = net.nodes[0]
        straggler.epoch = 0
        for node_id in range(1, n):
            net.nodes[node_id].epoch = 3
        net.run_epochs(0.3)  # a few cycles of gossip
        assert straggler.epoch >= 3
        # the cut-short epochs were recorded as incomplete
        assert any(not o.completed for o in straggler.outputs)

    def test_no_cross_epoch_mixing(self):
        """Approximations never mix across epoch tags: with half the
        network one epoch ahead, the behind-half's values are unchanged
        until they adopt (mass from epoch e never leaks into e+1's sum
        except through the reset)."""
        n = 60
        values, provider = static_values(n, seed=17)
        net = EpochGossipNetwork(n, provider, cycles_per_epoch=1000, seed=18)
        net.run_epochs(0.01)  # a tiny warmup within epoch 0
        # bump one node to epoch 5 artificially
        net.nodes[0].epoch = 5
        net.nodes[0].approximation = 123.0
        net.run_epochs(0.01)
        # every node now at epoch >= 5 has either the reset attribute or
        # a mix of epoch-5 values only — never a blend with epoch-0 x's
        epoch5_nodes = [
            node for node in net.nodes.values() if node.epoch == 5
        ]
        assert len(epoch5_nodes) >= 1

    def test_crashed_nodes_ignored(self):
        n = 80
        values, provider = static_values(n, seed=19)
        net = EpochGossipNetwork(n, provider, cycles_per_epoch=25, seed=20)
        net.run_epochs(0.2)
        net.crash_nodes(range(20))
        net.run_epochs(1.9)  # epoch 1 ends at global time 2.0 epochs
        estimates = net.epoch_estimates(1)
        # only survivors report epoch 1
        assert len(estimates) == 60


class TestWithLoss:
    def test_epochs_survive_message_loss(self):
        n = 150
        values, provider = static_values(n, seed=21)
        net = EpochGossipNetwork(
            n, provider, cycles_per_epoch=30,
            loss=BernoulliLoss(0.1), seed=22,
        )
        net.run_epochs(1.05)
        estimates = net.epoch_estimates(0)
        assert len(estimates) == n
        # asymmetric loss causes small drift but epoch outputs stay
        # tightly clustered near the truth
        assert abs(estimates.mean() - values.mean()) < 0.5
        assert estimates.std() < 0.1
