"""Tests for clock drift in the event-driven protocol (relaxing §2)."""

import numpy as np
import pytest

from repro.core import GossipNetwork
from repro.errors import ConfigurationError
from repro.simulator import DriftingClock, PerfectClock
from repro.topology import CompleteTopology


def make_network(clocks=None, n=300, seed=3):
    values = np.random.default_rng(1).normal(10, 4, n)
    return GossipNetwork(
        CompleteTopology(n), values, clocks=clocks, seed=seed
    )


class TestClockWiring:
    def test_clock_count_validated(self):
        with pytest.raises(ConfigurationError):
            make_network(clocks=[PerfectClock()])

    def test_perfect_clocks_match_default(self):
        n = 300
        default = make_network(seed=5)
        clocked = make_network(clocks=[PerfectClock()] * n, seed=5)
        default.run_cycles(5)
        clocked.run_cycles(5)
        assert np.array_equal(
            default.approximations(), clocked.approximations()
        )

    def test_fast_clock_initiates_more(self):
        n = 100
        clocks = [DriftingClock(rate=3.0 if i == 0 else 1.0) for i in range(n)]
        net = make_network(clocks=clocks, n=n, seed=7)
        net.run_cycles(10)
        counts = [node.initiated_count for node in net.nodes]
        assert counts[0] > 2 * int(np.median(counts[1:]))


class TestConvergenceUnderDrift:
    @pytest.mark.parametrize("skew", [1e-4, 1e-2])
    def test_small_skew_harmless(self, skew):
        """Realistic crystal skew (1e-4) and even 1 % skew leave the
        convergence rate untouched: the protocol needs no synchronized
        clocks, only comparable cycle lengths."""
        n = 300
        rng = np.random.default_rng(11)
        clocks = [
            DriftingClock(rate=1.0 + rng.uniform(-skew, skew),
                          offset=rng.uniform(0, 1))
            for _ in range(n)
        ]
        net = make_network(clocks=clocks, n=n, seed=13)
        v0 = net.variance()
        net.run_cycles(10)
        assert net.variance() < v0 * 1e-3

    def test_mean_conserved_under_drift(self):
        n = 200
        rng = np.random.default_rng(17)
        clocks = [DriftingClock(rate=rng.uniform(0.9, 1.1)) for _ in range(n)]
        net = make_network(clocks=clocks, n=n, seed=19)
        truth = net.true_mean()
        net.run_cycles(10)
        assert net.approximations().mean() == pytest.approx(truth, abs=1e-9)

    def test_extreme_skew_still_converges(self):
        """Even 2x spread in clock rates only perturbs the φ
        distribution; variance still decays geometrically."""
        n = 200
        rng = np.random.default_rng(23)
        clocks = [DriftingClock(rate=rng.uniform(0.7, 1.4)) for _ in range(n)]
        net = make_network(clocks=clocks, n=n, seed=29)
        v0 = net.variance()
        net.run_cycles(15)
        assert net.variance() < v0 * 1e-4
