"""Tests for core.aggregates."""

import numpy as np
import pytest

from repro.core import (
    GeometricMeanAggregate,
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    estimate_network_size,
    estimate_sum,
    estimate_variance_from_moments,
    moment_values,
)
from repro.errors import ConfigurationError, EstimationError


class TestMean:
    def test_combine(self):
        assert MeanAggregate().combine(2.0, 4.0) == 3.0

    def test_symmetric(self):
        agg = MeanAggregate()
        assert agg.combine(1.0, 9.0) == agg.combine(9.0, 1.0)

    def test_fixed_point(self):
        assert MeanAggregate().combine(5.0, 5.0) == 5.0

    def test_callable(self):
        assert MeanAggregate()(2.0, 4.0) == 3.0

    def test_mass_conservation(self):
        agg = MeanAggregate()
        x, y = 3.7, -1.2
        combined = agg.combine(x, y)
        assert combined + combined == pytest.approx(x + y)


class TestMaxMin:
    def test_max(self):
        assert MaxAggregate().combine(2.0, 4.0) == 4.0

    def test_min(self):
        assert MinAggregate().combine(2.0, 4.0) == 2.0

    def test_idempotent(self):
        assert MaxAggregate().combine(4.0, 4.0) == 4.0
        assert MinAggregate().combine(4.0, 4.0) == 4.0

    def test_negative_values(self):
        assert MaxAggregate().combine(-5.0, -3.0) == -3.0
        assert MinAggregate().combine(-5.0, -3.0) == -5.0


class TestGeometricMean:
    def test_combine(self):
        assert GeometricMeanAggregate().combine(2.0, 8.0) == pytest.approx(4.0)

    def test_product_conserved(self):
        agg = GeometricMeanAggregate()
        x, y = 3.0, 12.0
        combined = agg.combine(x, y)
        assert combined * combined == pytest.approx(x * y)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            GeometricMeanAggregate().combine(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            GeometricMeanAggregate().combine(2.0, -1.0)


class TestDerivedEstimators:
    def test_network_size(self):
        assert estimate_network_size(0.001) == pytest.approx(1000.0)

    def test_network_size_rejects_nonpositive(self):
        with pytest.raises(EstimationError):
            estimate_network_size(0.0)

    def test_sum(self):
        assert estimate_sum(2.5, 100.0) == 250.0

    def test_sum_rejects_nonpositive_size(self):
        with pytest.raises(EstimationError):
            estimate_sum(1.0, 0.0)

    def test_moment_values(self):
        result = moment_values([1.0, 2.0, 3.0], 2)
        assert result.tolist() == [1.0, 4.0, 9.0]

    def test_moment_order_validated(self):
        with pytest.raises(ConfigurationError):
            moment_values([1.0], 0)

    def test_variance_from_moments(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        m1 = values.mean()
        m2 = (values**2).mean()
        assert estimate_variance_from_moments(m1, m2) == pytest.approx(
            values.var()
        )

    def test_variance_tiny_negative_clamped(self):
        assert estimate_variance_from_moments(1.0, 1.0 - 1e-15) == 0.0

    def test_variance_inconsistent_rejected(self):
        with pytest.raises(EstimationError):
            estimate_variance_from_moments(10.0, 1.0)

    def test_end_to_end_moment_pipeline(self):
        """Averaging k-th powers + counting reproduces moments exactly."""
        values = np.array([2.0, 4.0, 4.0, 6.0])
        m1 = moment_values(values, 1).mean()
        m2 = moment_values(values, 2).mean()
        n = estimate_network_size(1.0 / len(values))
        assert estimate_sum(m1, n) == pytest.approx(values.sum())
        assert estimate_variance_from_moments(m1, m2) == pytest.approx(
            values.var()
        )


class TestScalarVectorParity:
    """combine_array must be bitwise-identical to the scalar combine —
    the kernel's backend-equivalence contract rests on it — including
    NaN and signed-zero corners where np.maximum/np.minimum differ."""

    SPECIALS = [
        (float("nan"), 1.0),
        (1.0, float("nan")),
        (-0.0, 0.0),
        (0.0, -0.0),
        (2.5, 2.5),
        (-1.0, 3.0),
    ]

    @pytest.mark.parametrize(
        "aggregate", [MeanAggregate(), MaxAggregate(), MinAggregate()],
        ids=lambda a: a.name,
    )
    def test_specials_match_scalar_path(self, aggregate):
        x = np.array([pair[0] for pair in self.SPECIALS])
        y = np.array([pair[1] for pair in self.SPECIALS])
        vector = aggregate.combine_array(x, y)
        scalar = np.array(
            [aggregate.combine(a, b) for a, b in self.SPECIALS]
        )
        assert np.array_equal(vector, scalar, equal_nan=True)
        assert np.array_equal(np.signbit(vector), np.signbit(scalar))

    def test_random_values_match_scalar_path(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0.0, 10.0, 200)
        y = rng.normal(0.0, 10.0, 200)
        for aggregate in (MeanAggregate(), MaxAggregate(), MinAggregate()):
            vector = aggregate.combine_array(x, y)
            scalar = np.array(
                [aggregate.combine(a, b) for a, b in zip(x, y)]
            )
            assert np.array_equal(vector, scalar)
