"""Tests for core.robust — concurrent instances with median reporting."""

import numpy as np
import pytest

from repro.core import RobustAverager
from repro.errors import ConfigurationError
from repro.topology import CompleteTopology


@pytest.fixture
def values():
    return np.random.default_rng(1).normal(10.0, 4.0, 400)


class TestValidation:
    def test_value_count(self):
        with pytest.raises(ConfigurationError):
            RobustAverager(CompleteTopology(5), [1.0])

    def test_instances_positive(self, values):
        with pytest.raises(ConfigurationError):
            RobustAverager(CompleteTopology(400), values, instances=0)

    def test_loss_range(self, values):
        with pytest.raises(ConfigurationError):
            RobustAverager(CompleteTopology(400), values,
                           loss_probability=-0.1)

    def test_negative_cycles(self, values):
        averager = RobustAverager(CompleteTopology(400), values, seed=1)
        with pytest.raises(ConfigurationError):
            averager.run(-1)

    def test_crash_range(self, values):
        averager = RobustAverager(CompleteTopology(400), values, seed=1)
        with pytest.raises(ConfigurationError):
            averager.crash([400])


class TestCleanRun:
    def test_all_instances_converge_to_truth(self, values):
        averager = RobustAverager(
            CompleteTopology(400), values, instances=3, seed=2
        )
        result = averager.run(25)
        assert result.single_error < 1e-4
        assert result.median_error < 1e-4
        assert result.true_mean == pytest.approx(values.mean())

    def test_single_instance_degenerate(self, values):
        averager = RobustAverager(
            CompleteTopology(400), values, instances=1, seed=3
        )
        result = averager.run(20)
        assert np.array_equal(result.single_estimates, result.median_estimates)

    def test_deterministic(self, values):
        a = RobustAverager(CompleteTopology(400), values, instances=3, seed=4)
        b = RobustAverager(CompleteTopology(400), values, instances=3, seed=4)
        ra, rb = a.run(10), b.run(10)
        assert np.array_equal(ra.median_estimates, rb.median_estimates)

    def test_instances_evolve_independently(self, values):
        averager = RobustAverager(
            CompleteTopology(400), values, instances=2, seed=5
        )
        averager.run_cycle()
        first, second = averager._state
        assert first != second  # different pair sequences


class TestRobustnessGain:
    def test_median_beats_single_under_crashes(self, values):
        """Across seeds, the median-of-instances estimator has no larger
        error than the single-instance one when 20 % of nodes crash
        early (independent per-instance mixing noise gets voted out)."""
        single_errors, median_errors = [], []
        for seed in range(6):
            averager = RobustAverager(
                CompleteTopology(400), values, instances=7, seed=seed
            )
            averager.run(2)
            rng = np.random.default_rng(100 + seed)
            averager.crash(rng.choice(400, size=80, replace=False).tolist())
            result = averager.run(20)
            single_errors.append(result.single_error)
            median_errors.append(result.median_error)
        assert np.mean(median_errors) <= np.mean(single_errors)

    def test_crash_reduces_reporting_population(self, values):
        averager = RobustAverager(CompleteTopology(400), values, seed=7)
        averager.crash(list(range(100)))
        result = averager.run(10)
        assert averager.alive_count == 300
        assert len(result.median_estimates) == 300

    def test_loss_tolerated(self, values):
        averager = RobustAverager(
            CompleteTopology(400), values, instances=3,
            loss_probability=0.3, seed=8,
        )
        result = averager.run(30)
        assert result.median_error < 1e-4
