"""Tests for core.multi — concurrent tagged aggregation instances."""

import pytest

from repro.core import (
    MaxAggregate,
    MeanAggregate,
    MultiAggregateState,
    combine_multi,
)
from repro.errors import ConfigurationError


def state_with(instance_id, value, function=None, default=0.0):
    state = MultiAggregateState()
    state.add_instance(
        instance_id, function or MeanAggregate(), value, default=default
    )
    return state


class TestState:
    def test_add_and_get(self):
        state = state_with("a", 3.0)
        assert state.get("a") == 3.0
        assert "a" in state
        assert len(state) == 1

    def test_duplicate_rejected(self):
        state = state_with("a", 1.0)
        with pytest.raises(ConfigurationError):
            state.add_instance("a", MeanAggregate(), 2.0)

    def test_missing_instance_raises(self):
        with pytest.raises(ConfigurationError):
            MultiAggregateState().get("nope")


class TestCombine:
    def test_shared_instance_averaged(self):
        left = state_with("x", 2.0)
        right = state_with("x", 4.0)
        combine_multi(left, right)
        assert left.get("x") == 3.0
        assert right.get("x") == 3.0

    def test_one_sided_instance_adopted_with_default(self):
        """§4: a node reached by an unknown counting instance behaves as
        if it had started at 0."""
        left = state_with("count", 1.0)
        right = MultiAggregateState()
        combine_multi(left, right)
        assert left.get("count") == 0.5
        assert right.get("count") == 0.5

    def test_custom_default(self):
        left = state_with("m", 4.0, default=2.0)
        right = MultiAggregateState()
        combine_multi(left, right)
        assert right.get("m") == 3.0  # (4 + 2) / 2

    def test_independent_instances(self):
        left = MultiAggregateState()
        left.add_instance("avg", MeanAggregate(), 2.0)
        left.add_instance("max", MaxAggregate(), 5.0)
        right = MultiAggregateState()
        right.add_instance("avg", MeanAggregate(), 4.0)
        right.add_instance("max", MaxAggregate(), 1.0)
        combine_multi(left, right)
        assert left.get("avg") == 3.0
        assert left.get("max") == 5.0
        assert right.get("max") == 5.0

    def test_mass_conserved_per_instance(self):
        left = state_with("a", 7.0)
        right = state_with("a", 1.0)
        total = left.get("a") + right.get("a")
        combine_multi(left, right)
        assert left.get("a") + right.get("a") == pytest.approx(total)

    def test_adoption_symmetric(self):
        left = MultiAggregateState()
        right = state_with("only_right", 8.0)
        combine_multi(left, right)
        assert left.get("only_right") == 4.0
